"""Benchmark: adaptive execution (Figures 8a/8b, Section VII.B).

Regenerates the latency-over-time series of both adaptive experiments:

* 8a — a sudden selectivity flip renders the static plan unviable (it dies
  of memory overflow) while the adaptive plan re-orders probes and recovers
  after about one window;
* 8b — with one torrential input, shrinking the S⋈T⋈U intermediate makes
  the adaptive optimizer introduce an intermediate-result store, settling
  at a lower latency level.

Run with ``pytest benchmarks/bench_fig8_adaptive.py --benchmark-only -s``.
"""

from repro.experiments.fig8 import run_fig8a, run_fig8b
from repro.experiments.reporting import format_series


def _print_outcome(label, outcome):
    series = [(t, round(lat * 1000.0, 2)) for t, lat in outcome.latency_timeline]
    print(format_series(f"{label} latency[ms]", series))
    if outcome.failed:
        print(f"{label}: FAILED by memory overflow at ~{outcome.failure_time:.1f}s")
    if outcome.switches:
        print(f"{label}: reconfigured at {[round(t, 1) for t in outcome.switches]}")


def test_fig8a_selectivity_flip(benchmark):
    """Fig. 8a: static strategy cannot recover from the data shift."""
    outcomes = benchmark.pedantic(
        lambda: run_fig8a(
            rate=40.0, duration=24.0, shift_at=12.0, memory_limit=30_000.0
        ),
        rounds=1,
        iterations=1,
    )
    print("\n=== Fig 8a: sudden selectivity increase at t=15s ===")
    _print_outcome("static  ", outcomes["static"])
    _print_outcome("adaptive", outcomes["adaptive"])
    adaptive, static = outcomes["adaptive"], outcomes["static"]
    assert adaptive.switches, "adaptive must reconfigure after the shift"
    assert not adaptive.failed, "adaptive must survive the shift"
    assert static.failed or (
        static.mean_latency_after > 1.5 * adaptive.mean_latency_after
    ), "static must crash or degrade heavily (paper: memory overflow)"


def test_fig8b_intermediate_store(benchmark):
    """Fig. 8b: adaptive processing introduces an STU store, lowering latency."""
    outcomes = benchmark.pedantic(
        lambda: run_fig8b(
            fast_rate=150.0, slow_rate=3.0, duration=24.0, shift_at=12.0
        ),
        rounds=1,
        iterations=1,
    )
    print("\n=== Fig 8b: intermediate result shrinks at t=15s ===")
    _print_outcome("static  ", outcomes["static"])
    _print_outcome("adaptive", outcomes["adaptive"])
    adaptive = outcomes["adaptive"]
    assert adaptive.switches
    assert adaptive.mir_installed, "an intermediate (MIR) store must appear"
    print(
        f"adaptive mean latency: before {adaptive.mean_latency_before*1000:.1f}ms"
        f" -> after {adaptive.mean_latency_after*1000:.1f}ms"
        " (paper: ~56ms -> ~36ms)"
    )
    assert (
        adaptive.mean_latency_after
        <= outcomes["static"].mean_latency_after + 1e-9
    )
