"""Benchmark: the ILP optimization study (Figures 9a-9f, Section VII.C).

Each test regenerates one figure's series.  Expensive sweeps are computed
once per session and reused by the figure tests that share their data
(9a/9b share the 10-relation sweep; 9c/9d/9e the 100-relation sweep).

Run with ``pytest benchmarks/bench_fig9_ilp.py --benchmark-only -s``.
"""

import pytest

from repro.experiments.fig9 import run_point, sweep_num_queries, sweep_query_sizes
from repro.experiments.reporting import format_series, format_table

NQ_VALUES = [20, 40, 60, 80, 100]

_CACHE = {}


def _sweep(num_relations):
    if num_relations not in _CACHE:
        _CACHE[num_relations] = sweep_num_queries(
            num_relations, NQ_VALUES, seed=17, solver="scipy"
        )
    return _CACHE[num_relations]


def test_fig9a_probe_cost_10_relations(benchmark):
    """Fig. 9a: probe cost, individual vs MQO, 10 input relations."""
    points = benchmark.pedantic(lambda: _sweep(10), rounds=1, iterations=1)
    print("\n=== Fig 9a: probe cost over 10 input relations ===")
    print(
        format_table(
            ["nQ", "distinct", "individual", "MQO", "savings"],
            [
                (
                    p.num_queries,
                    p.num_distinct,
                    p.individual_cost,
                    p.mqo_cost,
                    f"{100 * p.savings:.0f}%",
                )
                for p in points
            ],
        )
    )
    # paper: significant savings that grow with the number of queries (~50%)
    assert all(p.mqo_cost <= p.individual_cost + 1e-6 for p in points)
    assert points[-1].savings > points[0].savings
    assert points[-1].savings > 0.15


def test_fig9b_problem_sizes_10_relations(benchmark):
    """Fig. 9b: ILP problem sizes over 10 input relations."""
    points = benchmark.pedantic(lambda: _sweep(10), rounds=1, iterations=1)
    print("\n=== Fig 9b: problem sizes over 10 input relations ===")
    print(
        format_series(
            "variables", [(p.num_queries, p.num_variables) for p in points]
        )
    )
    print(
        format_series(
            "probe orders", [(p.num_queries, p.num_probe_orders) for p in points]
        )
    )
    # paper: sublinear growth (duplicates + shared prefixes); assert that
    # variables-per-drawn-query do not increase across the sweep
    per_query_first = points[0].num_variables / points[0].num_queries
    per_query_last = points[-1].num_variables / points[-1].num_queries
    assert per_query_last <= per_query_first * 1.35


def test_fig9c_probe_cost_100_relations(benchmark):
    """Fig. 9c: probe cost over 100 input relations (little overlap)."""
    points = benchmark.pedantic(lambda: _sweep(100), rounds=1, iterations=1)
    print("\n=== Fig 9c: probe cost over 100 input relations ===")
    print(
        format_table(
            ["nQ", "distinct", "individual", "MQO", "savings"],
            [
                (
                    p.num_queries,
                    p.num_distinct,
                    p.individual_cost,
                    p.mqo_cost,
                    f"{100 * p.savings:.0f}%",
                )
                for p in points
            ],
        )
    )
    sparse_savings = points[0].savings
    dense_savings = _sweep(10)[0].savings
    print(
        f"savings at nQ=20: 100 relations {100*sparse_savings:.0f}% vs "
        f"10 relations {100*dense_savings:.0f}% (paper: near zero vs high)"
    )
    assert all(p.mqo_cost <= p.individual_cost + 1e-6 for p in points)


def test_fig9d_problem_sizes_100_relations(benchmark):
    """Fig. 9d: problem sizes over 100 input relations (near-linear)."""
    points = benchmark.pedantic(lambda: _sweep(100), rounds=1, iterations=1)
    print("\n=== Fig 9d: problem sizes over 100 input relations ===")
    print(
        format_series(
            "variables", [(p.num_queries, p.num_variables) for p in points]
        )
    )
    print(
        format_series(
            "probe orders", [(p.num_queries, p.num_probe_orders) for p in points]
        )
    )
    # paper: "Both graphs are not linear but slightly convex. This is
    # because each new query also adds more possibilities for partitioning
    # of a store" — assert near-linear growth with bounded convexity.
    per_query_first = points[0].num_variables / points[0].num_distinct
    per_query_last = points[-1].num_variables / points[-1].num_distinct
    assert per_query_last >= per_query_first * 0.8  # no collapse
    assert per_query_last <= per_query_first * 2.5  # bounded convexity


def test_fig9e_runtime_vs_queries(benchmark):
    """Fig. 9e: optimization runtime vs number of queries (100 relations)."""
    points = benchmark.pedantic(lambda: _sweep(100), rounds=1, iterations=1)
    print("\n=== Fig 9e: optimization runtime, 100 input relations ===")
    print(
        format_series(
            "runtime[s]",
            [(p.num_queries, round(p.optimize_seconds, 3)) for p in points],
        )
    )
    # paper: grows roughly linearly and stays practical
    assert points[-1].optimize_seconds < 120.0
    assert points[-1].optimize_seconds >= points[0].optimize_seconds


def test_fig9f_runtime_vs_query_size(benchmark):
    """Fig. 9f: optimization runtime vs query size (log-scale growth)."""
    points = benchmark.pedantic(
        lambda: sweep_query_sizes(
            100, sizes=[3, 4, 5], nq_values=[10, 20, 30], seed=23,
            solver="scipy",
        ),
        rounds=1,
        iterations=1,
    )
    print("\n=== Fig 9f: optimization runtime by query size ===")
    rows = {}
    for p in points:
        rows.setdefault(p.query_size, {})[p.num_queries] = p.optimize_seconds
    print(
        format_table(
            ["size", "nQ=10", "nQ=20", "nQ=30"],
            [
                (
                    size,
                    *(
                        (f"{by_nq[nq]:.3f}s" if nq in by_nq else "-")
                        for nq in (10, 20, 30)
                    ),
                )
                for size, by_nq in sorted(rows.items())
            ],
        )
    )
    print("(size-5 capped at nQ=10, no MIR stores — see sweep_query_sizes)")
    # paper: an order of magnitude per +1 relation; assert steep growth
    times_nq10 = [rows[size][10] for size in (3, 4, 5)]
    assert times_nq10[2] > times_nq10[1] > 0
    assert times_nq10[2] > 3 * times_nq10[0]
