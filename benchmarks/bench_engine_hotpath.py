"""Engine hot-path micro-benchmark: insert / probe / evict throughput.

Isolates the container-level hot path from the figure-level benchmarks so
engine regressions are measurable on their own:

* ``insert`` — tuples inserted into a container with two live key columns
  (hash indexes on the python backend),
* ``probe``  — indexed equi-probes against a populated sliding window,
* ``evict``  — a sliding-window workload interleaving inserts, probes, and
  periodic eviction passes (the pattern the runtime actually executes),
* ``wide-window`` — a probe-heavy sliding-window workload over a *wide*
  retention (tens of thousands of live tuples, two-predicate probes with
  rare matches): the regime where the columnar backend's vectorized
  candidate filtering dominates per-tuple evaluation,
* ``logical`` — an end-to-end logical-mode run of a 3-way join topology,
* ``adaptive`` — steady-state :class:`repro.JoinSession` push throughput
  with ``reoptimize_every`` on vs off on a drift-free feed: the plan never
  changes, so the on/off ratio isolates the unified adaptivity loop's
  bookkeeping (per-tuple epoch advancement + periodic re-optimization).
  Gate with ``--max-adaptive-overhead`` (CI holds it at 10%),
* ``sharded`` (opt-in via ``--workers N``) — an end-to-end run of a
  work-dominated two-predicate join through :class:`ShardedRuntime`:
  the feed is hash-partitioned over N worker processes, and the printed
  speedup is N-worker combined ops/s over 1-worker combined ops/s, both
  through the same sharded driver (so driver + IPC overhead is on both
  sides and the ratio isolates worker parallelism).  Gate with
  ``--min-shard-speedup``; needs >= N cores to show N-ish scaling.

``--backend`` selects the container implementation benchmarked as
"current": ``python`` (:class:`repro.engine.stores.Container`) or
``columnar`` (:class:`repro.engine.columnar.ColumnarContainer`).  The
classic scenarios compare it against ``NaiveContainer`` — a faithful copy
of the seed implementation (full-container scan per eviction pass, all
indexes discarded and rebuilt afterwards).  The wide-window scenario
instead compares against the *python backend* (the naive copy is
quadratically slow there), which is the number the CI gate holds: columnar
throughput must not fall below python-backend throughput
(``--min-backend-speedup``).

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py \
        [--backend columnar] [--tuples 60000]
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.core.predicates import JoinPredicate
from repro.engine.columnar import ColumnarContainer
from repro.engine.stores import (
    STORE_BACKENDS as BACKENDS,
    Container,
    orient_predicates,
    probe_batch,
)
from repro.engine.tuples import StreamTuple, input_tuple


class NaiveContainer:
    """Faithful copy of the seed implementation (commit d17190a).

    Semantics identical to the current container; costs replicated
    deliberately: ``latest_ts`` was a property recomputing
    ``max(timestamps.values())`` on every access, ``arrived_before`` ran a
    generator expression over all components, eviction re-scanned the whole
    container and threw away every hash index (rebuilt on the next probe),
    predicates were re-oriented per stored candidate, results were merged
    through the plain constructor, and the pairwise window check always ran
    the nested per-relation loop.
    """

    __slots__ = ("tuples", "indexes")

    def __init__(self, bucket_width: Optional[float] = None) -> None:
        self.tuples: List[StreamTuple] = []
        self.indexes: Dict[str, Dict[object, List[StreamTuple]]] = {}

    def __len__(self) -> int:
        return len(self.tuples)

    def insert(self, tup: StreamTuple) -> None:
        self.tuples.append(tup)
        for attr, index in self.indexes.items():
            index.setdefault(tup.get(attr), []).append(tup)

    def index_on(self, attr: str) -> Dict[object, List[StreamTuple]]:
        index = self.indexes.get(attr)
        if index is None:
            index = {}
            for tup in self.tuples:
                index.setdefault(tup.get(attr), []).append(tup)
            self.indexes[attr] = index
        return index

    @staticmethod
    def _latest_ts(tup: StreamTuple) -> float:
        return max(tup.timestamps.values())  # the seed's property, per access

    def evict_older_than(self, horizon: float) -> int:
        if not self.tuples:
            return 0
        keep = [t for t in self.tuples if self._latest_ts(t) >= horizon]
        evicted_width = sum(t.width for t in self.tuples) - sum(
            t.width for t in keep
        )
        if evicted_width:
            self.tuples = keep
            self.indexes = {}  # the seed's "rebuild lazily next time"
        return evicted_width

    @staticmethod
    def _orient(pred: JoinPredicate, probe: StreamTuple):
        left_rel = pred.left.relation
        if left_rel in probe.timestamps:
            return str(pred.left), str(pred.right)
        return str(pred.right), str(pred.left)

    def probe(self, probe: StreamTuple, predicates, windows):
        first = predicates[0]
        probe_attr, stored_attr = self._orient(first, probe)
        index = self.index_on(stored_attr)
        results = []
        checked = 0
        for stored in index.get(probe.get(probe_attr), []):
            checked += 1
            if not all(
                ts < probe.trigger_ts for ts in stored.timestamps.values()
            ):
                continue
            ok = True
            for pred in predicates:  # the seed re-oriented per candidate
                pa, sa = self._orient(pred, probe)
                if probe.get(pa) != stored.get(sa):
                    ok = False
                    break
            if not ok:
                continue
            if not probe.within_windows(stored, windows):
                continue
            results.append(
                _seed_merge(probe, stored)
            )
        return results, checked


def _seed_merge(a: StreamTuple, b: StreamTuple) -> StreamTuple:
    """The seed's merge: dict copies through the plain constructor."""
    values = dict(a.values)
    values.update(b.values)
    timestamps = dict(a.timestamps)
    timestamps.update(b.timestamps)
    return StreamTuple(
        values=values, timestamps=timestamps, trigger=a.trigger,
        trigger_ts=a.trigger_ts,
    )


def make_tuples(n: int, domain: int, rate: float, seed: int) -> List[StreamTuple]:
    rng = random.Random(seed)
    out = []
    t = 0.0
    for _ in range(n):
        t += rng.random() * (2.0 / rate)
        out.append(
            input_tuple("S", t, {"a": rng.randrange(domain), "b": rng.randrange(domain)})
        )
    return out


def warm_columns(cont, attrs):
    """Activate the per-attribute lookup structure of either backend."""
    for attr in attrs:
        if isinstance(cont, ColumnarContainer):
            cont.ensure_column(attr)
        else:
            cont.index_on(attr)


def bench_insert(container_cls, tuples, bucket_width):
    cont = container_cls(bucket_width=bucket_width)
    warm_columns(cont, ("S.a", "S.b"))
    start = time.perf_counter()
    for tup in tuples:
        cont.insert(tup)
    return len(tuples) / (time.perf_counter() - start)


def bench_probe(container_cls, tuples, probes, bucket_width, windows, preds, chunk=64):
    """Probes are driven the way the runtime drives them: in micro-batches
    whose results are consumed (not accumulated across the whole run)."""
    cont = container_cls(bucket_width=bucket_width)
    for tup in tuples:
        cont.insert(tup)
    oriented = orient_predicates(preds, {"R"})
    start = time.perf_counter()
    if isinstance(cont, NaiveContainer):
        for probe in probes:
            cont.probe(probe, preds, windows)
    else:
        uniform = windows["S"] if windows["S"] == windows["R"] else None
        for i in range(0, len(probes), chunk):
            probe_batch(cont, probes[i : i + chunk], oriented, windows, uniform)
    return len(probes) / (time.perf_counter() - start)


def bench_sliding_window(
    container_cls, tuples, bucket_width, windows, preds, retention, evict_every
):
    """The runtime's actual pattern: insert + probe + periodic eviction."""
    cont = container_cls(bucket_width=bucket_width)
    oriented = orient_predicates(preds, {"R"})
    ops = 0
    start = time.perf_counter()
    for i, tup in enumerate(tuples):
        cont.insert(tup)
        probe = input_tuple("R", tup.trigger_ts + 1e-9, {"a": tup.get("S.a")})
        if isinstance(cont, NaiveContainer):
            cont.probe(probe, preds, windows)
        else:
            probe_batch(cont, (probe,), oriented, windows, windows["S"])
        ops += 2
        if i % evict_every == evict_every - 1:
            cont.evict_older_than(tup.trigger_ts - retention)
            ops += 1
    return ops / (time.perf_counter() - start)


def bench_wide_window(
    container_cls,
    num_tuples,
    a_domain,
    b_domain,
    rate,
    retention,
    evict_every,
    probes_per_insert,
    seed,
):
    """Wide-retention, probe-heavy sliding window with rare matches.

    Tens of thousands of live tuples; every probe carries *two* equality
    predicates whose conjunction almost never matches, so the cost is pure
    candidate filtering — per-tuple dict lookups on the python backend,
    one ``np.flatnonzero`` pass plus gathered comparisons on the columnar
    backend.  This is the regime the columnar layout exists for.
    """
    rng = random.Random(seed)
    preds = (JoinPredicate.of("R.a", "S.a"), JoinPredicate.of("R.b", "S.b"))
    oriented = orient_predicates(preds, {"R"})
    windows = {"R": retention, "S": retention}
    cont = container_cls(bucket_width=retention / 16)
    t = 0.0
    ops = 0
    start = time.perf_counter()
    for i in range(num_tuples):
        t += rng.random() * (2.0 / rate)
        cont.insert(
            input_tuple(
                "S", t, {"a": rng.randrange(a_domain), "b": rng.randrange(b_domain)}
            )
        )
        ops += 1
        for _ in range(probes_per_insert):
            probe = input_tuple(
                "R",
                t + 1e-9,
                {"a": rng.randrange(a_domain), "b": rng.randrange(b_domain)},
            )
            probe_batch(cont, (probe,), oriented, windows, retention)
            ops += 1
        if i % evict_every == evict_every - 1:
            cont.evict_older_than(t - retention)
            ops += 1
    return ops / (time.perf_counter() - start)


def bench_logical_runtime(num_inputs: int, seed: int, backend: str = "python") -> float:
    """End-to-end logical-mode throughput of a 3-way join topology."""
    from repro.core import (
        ClusterConfig,
        OptimizerConfig,
        Query,
        StatisticsCatalog,
        build_topology,
    )
    from repro.core.optimizer import MultiQueryOptimizer
    from repro.engine import RuntimeConfig, TopologyRuntime

    query = Query.of("q", "R.a=S.a", "S.b=T.b")
    catalog = StatisticsCatalog(default_selectivity=0.02, default_window=8.0)
    for rel in "RST":
        catalog.with_rate(rel, 10.0)
    attrs = {"R": ["a"], "S": ["a", "b"], "T": ["b"]}
    rng = random.Random(seed)
    inputs = []
    t = 0.0
    for _ in range(num_inputs):
        t += rng.random() * 0.02
        rel = rng.choice("RST")
        inputs.append(
            input_tuple(rel, t, {a: rng.randrange(40) for a in attrs[rel]})
        )
    cfg = OptimizerConfig(cluster=ClusterConfig(default_parallelism=2))
    plan = MultiQueryOptimizer(catalog, cfg, solver="own").optimize([query])
    topology = build_topology(plan.plan, catalog, cfg.cluster)
    runtime = TopologyRuntime(
        topology,
        {r: 8.0 for r in "RST"},
        RuntimeConfig(mode="logical", store_backend=backend),
    )
    start = time.perf_counter()
    runtime.run(inputs)
    return num_inputs / (time.perf_counter() - start)


def bench_cascade(
    num_inputs: int,
    a_domain: int,
    c_domain: int,
    rate: float,
    window: float,
    payload: int,
    seed: int,
    vectorized: bool,
) -> float:
    """Cascade-dominated 4-way chain join, end-to-end through the runtime.

    ``R.a=S.a AND S.b=T.b AND T.c=U.c`` over wide uniform windows: the two
    interior predicates draw from a small domain (plentiful intermediate
    matches), the final one from a huge domain (rare results), and every
    tuple carries ``payload`` extra attributes so intermediate
    materialization means wide dict merges.  This is the regime the
    vectorized cascade exists for — the tuple-at-a-time path materializes
    every intermediate match that then dies at the last hop, while the
    VectorBatch carriage defers materialization to emission.  Both sides
    run the columnar backend; only ``vectorized_cascades`` differs.
    """
    from repro.core import (
        ClusterConfig,
        OptimizerConfig,
        Query,
        StatisticsCatalog,
        build_topology,
    )
    from repro.core.optimizer import MultiQueryOptimizer
    from repro.engine import RuntimeConfig, TopologyRuntime

    query = Query.of("q", "R.a=S.a", "S.b=T.b", "T.c=U.c")
    catalog = StatisticsCatalog(
        default_selectivity=1.0 / a_domain, default_window=window
    )
    catalog.with_selectivity(JoinPredicate.of("T.c", "U.c"), 1.0 / c_domain)
    for rel in "RSTU":
        catalog.with_rate(rel, rate / 4.0)
    join_attrs = {"R": ["a"], "S": ["a", "b"], "T": ["b", "c"], "U": ["c"]}
    domains = {"a": a_domain, "b": a_domain, "c": c_domain}
    rng = random.Random(seed)
    inputs = []
    t = 0.0
    for i in range(num_inputs):
        t += rng.random() * (2.0 / rate)
        rel = "RSTU"[i % 4]
        vals = {a: rng.randrange(domains[a]) for a in join_attrs[rel]}
        for p in range(payload):
            vals[f"p{p}"] = i
        inputs.append(input_tuple(rel, t, vals))
    # MIRs off: a materialized intermediate store would collapse the chain
    # into one-hop probes, and the point here is a true 3-hop cascade.
    cfg = OptimizerConfig(
        enable_mirs=False, cluster=ClusterConfig(default_parallelism=1)
    )
    plan = MultiQueryOptimizer(catalog, cfg, solver="own").optimize([query])
    topology = build_topology(plan.plan, catalog, cfg.cluster)
    runtime = TopologyRuntime(
        topology,
        {r: window for r in "RSTU"},
        RuntimeConfig(
            mode="logical",
            store_backend="columnar",
            vectorized_cascades=vectorized,
        ),
    )
    start = time.perf_counter()
    runtime.run(inputs)
    return num_inputs / (time.perf_counter() - start)


def bench_sharded_runtime(
    num_inputs: int,
    a_domain: int,
    b_domain: int,
    rate: float,
    retention: float,
    workers: int,
    seed: int,
) -> float:
    """End-to-end throughput of the sharded driver on a wide-window join.

    One two-predicate query, ``R.a=S.a AND R.b=S.b``: the router
    partitions *both* relations on the ``a`` equivalence class, so every
    tuple is routed to exactly one shard and no broadcast dilutes the
    scaling.  Parameters are chosen so per-tuple worker work (scanning
    ~``rate x retention / (2 x a_domain)`` live candidates per probe)
    dominates per-tuple driver work (validation, routing, pickling) —
    the regime where sharding pays.  The feed is pre-generated; only
    ``run()`` is timed.  Pool startup/teardown is excluded.
    """
    from repro.core import (
        ClusterConfig,
        OptimizerConfig,
        Query,
        StatisticsCatalog,
        build_topology,
    )
    from repro.core.optimizer import MultiQueryOptimizer
    from repro.engine import RuntimeConfig, ShardedRuntime

    query = Query.of("q", "R.a=S.a", "R.b=S.b")
    catalog = StatisticsCatalog(
        default_selectivity=1.0 / a_domain, default_window=retention
    )
    for rel in "RS":
        catalog.with_rate(rel, rate / 2.0)
    rng = random.Random(seed)
    inputs = []
    t = 0.0
    for i in range(num_inputs):
        t += rng.random() * (2.0 / rate)
        inputs.append(
            input_tuple(
                "R" if i % 2 == 0 else "S",
                t,
                {"a": rng.randrange(a_domain), "b": rng.randrange(b_domain)},
            )
        )
    cfg = OptimizerConfig(cluster=ClusterConfig(default_parallelism=1))
    plan = MultiQueryOptimizer(catalog, cfg, solver="own").optimize([query])
    topology = build_topology(plan.plan, catalog, cfg.cluster)
    runtime = ShardedRuntime(
        topology,
        {"R": retention, "S": retention},
        RuntimeConfig(mode="logical", workers=workers),
    )
    try:
        start = time.perf_counter()
        runtime.run(inputs)
        elapsed = time.perf_counter() - start
    finally:
        runtime.close()
    return num_inputs / elapsed


def bench_adaptive_session(
    num_inputs: int,
    a_domain: int,
    rate: float,
    window: float,
    epoch: float,
    seed: int,
):
    """Steady-state ``JoinSession`` push throughput, adaptivity on vs off.

    A 3-way chain join (``R.a=S.a AND S.b=T.b``) over a uniform feed with
    *declared* selectivities matching the feed's reality and deliberately
    asymmetric (``a`` is 8x more selective than ``b``), so the optimal
    plan is one-sided and immune to epoch-to-epoch measurement noise:
    with ``reoptimize_every=epoch`` every boundary runs the full
    observe → decide cycle (catalog fold, solve, signature compare) but
    the plan never changes and nothing installs.  The on/off throughput
    ratio therefore isolates the adaptivity loop's steady-state
    bookkeeping — per-tuple epoch advancement plus periodic
    re-optimization — rather than rewiring cost.

    Measurement discipline: the feed is pre-generated, a warm prefix
    (first plan build) is excluded from the timed region, and the two
    sides are *interleaved* best-of-3 fresh sessions with a GC collection
    before each timed region — one side always running second in a
    process whose heap has grown would otherwise eat a one-sided GC
    penalty several times the ~1ms-per-boundary signal the gate holds.
    Returns ``(off_inputs_per_s, on_inputs_per_s, num_decisions)``.
    """
    import gc

    from repro import JoinSession

    b_domain = max(1, a_domain // 8)
    domains = {"R": {"a": a_domain}, "S": {"a": a_domain, "b": b_domain},
               "T": {"b": b_domain}}
    rng = random.Random(seed)
    feed = []
    t = 0.0
    for i in range(num_inputs):
        t += rng.random() * (2.0 / rate)
        rel = "RST"[i % 3]
        feed.append(
            (rel, {a: rng.randrange(d) for a, d in domains[rel].items()}, t)
        )
    warm = max(1, num_inputs // 20)

    def run(reoptimize_every):
        session = (
            JoinSession(
                window=window,
                solver="greedy",
                default_rate=rate / 3.0,
                default_selectivity=1.0 / a_domain,
                reoptimize_every=reoptimize_every,
                record_streams=False,
            )
            .with_selectivity("R.a=S.a", 1.0 / a_domain)
            .with_selectivity("S.b=T.b", 1.0 / b_domain)
            .add_query("q", "R.a=S.a", "S.b=T.b")
        )
        for rel, values, ts in feed[:warm]:
            session.push(rel, values, ts=ts)
        gc.collect()
        start = time.perf_counter()
        for rel, values, ts in feed[warm:]:
            session.push(rel, values, ts=ts)
        return time.perf_counter() - start, len(session.decisions)

    best_off = best_on = float("inf")
    decisions = 0
    for _ in range(3):
        best_off = min(best_off, run(None)[0])
        elapsed, decisions = run(epoch)
        best_on = min(best_on, elapsed)
    timed = num_inputs - warm
    return timed / best_off, timed / best_on, decisions


def bench_service(
    num_inputs: int,
    a_domain: int,
    rate: float,
    window: float,
    queue_depth: int,
    seed: int,
):
    """Sustained push throughput through the bounded service ingress.

    A two-way join fed over loopback TCP through ``ServiceClient`` —
    fire-and-forget pushes gated only by the server's credit frames, so
    the measured rate is what the bounded ingress queue actually
    sustains.  Latency is sampled end-to-end through the drain: control
    operations ride the same ingress queue as pushes, so a ``stats``
    round trip at stream position *i* measures the time for everything
    enqueued before it to drain into the session plus the reply — the
    ingress latency a caller reading their own writes would observe.
    ~200 samples are taken across the run; the p99 of those is the SLO
    headline next to the ops/s number.

    Returns ``(ops_per_s, p50_latency_s, p99_latency_s, pauses,
    queue_high_water)``.
    """
    import asyncio

    from repro import JoinServer, JoinSession, ServiceClient

    rng = random.Random(seed)
    feed = []
    t = 0.0
    for i in range(num_inputs):
        t += rng.random() * (2.0 / rate)
        rel = "RS"[i % 2]
        feed.append((rel, {"a": rng.randrange(a_domain)}, t))
    sample_every = max(1, num_inputs // 200)

    async def run():
        session = JoinSession(window=window, record_streams=False).add_query(
            "q", "R.a=S.a"
        )
        latencies = []
        async with JoinServer(session, queue_depth=queue_depth) as server:
            client = await ServiceClient.connect(*server.address)
            async with client:
                # warm: the first plan build stays out of the timed region
                await client.push(*feed[0])
                await client.flush()
                start = time.perf_counter()
                for i, item in enumerate(feed[1:], 1):
                    await client.push(*item)
                    if i % sample_every == 0:
                        t0 = time.perf_counter()
                        await client.stats()
                        latencies.append(time.perf_counter() - t0)
                reply = await client.flush()
                elapsed = time.perf_counter() - start
            if reply["pushed"] != num_inputs:
                raise SystemExit(
                    f"service bench lost tuples: pushed {reply['pushed']} "
                    f"of {num_inputs}"
                )
        latencies.sort()
        ops = (num_inputs - 1) / elapsed
        p50 = latencies[len(latencies) // 2] if latencies else 0.0
        p99 = (
            latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
            if latencies
            else 0.0
        )
        return ops, p50, p99, server.pauses_sent, server.queue_high_water

    return asyncio.run(run())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tuples", type=int, default=60_000)
    parser.add_argument("--probes", type=int, default=20_000)
    parser.add_argument("--domain", type=int, default=500)
    parser.add_argument("--rate", type=float, default=1000.0)
    parser.add_argument("--retention", type=float, default=10.0)
    parser.add_argument("--evict-every", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--logical-inputs", type=int, default=30_000)
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="python",
        help="container implementation benchmarked as 'current' "
        "(python = dict/hash-index, columnar = numpy-vectorized)",
    )
    #: the combined scenario models a production window: more live state
    #: (rate × retention) and a finer join-attribute domain
    parser.add_argument("--sliding-retention", type=float, default=20.0)
    parser.add_argument("--sliding-domain", type=int, default=2000)
    #: wide-window scenario: ~rate×retention live tuples, two-predicate
    #: probes with rare matches (see bench_wide_window)
    parser.add_argument("--wide-tuples", type=int, default=30_000)
    parser.add_argument("--wide-retention", type=float, default=15.0)
    parser.add_argument("--wide-rate", type=float, default=1500.0)
    parser.add_argument("--wide-a-domain", type=int, default=40)
    parser.add_argument("--wide-b-domain", type=int, default=1500)
    parser.add_argument("--wide-probes-per-insert", type=int, default=2)
    #: cascade scenario: a 3-hop chain with plentiful interior matches and
    #: rare final matches, vectorized vs tuple-at-a-time (see bench_cascade)
    parser.add_argument("--cascade-inputs", type=int, default=2_000)
    parser.add_argument("--cascade-a-domain", type=int, default=6)
    parser.add_argument("--cascade-c-domain", type=int, default=1_000_000)
    parser.add_argument("--cascade-rate", type=float, default=400.0)
    parser.add_argument("--cascade-window", type=float, default=16.0)
    parser.add_argument("--cascade-payload", type=int, default=10)
    parser.add_argument(
        "--min-cascade-speedup",
        type=float,
        default=None,
        help="exit nonzero if the vectorized-cascade speedup over the "
        "tuple-at-a-time path (both on the columnar backend) falls below "
        "this factor (CI regression gate)",
    )
    #: sharded scenario (opt-in): a work-dominated two-predicate join run
    #: end-to-end through ShardedRuntime (see bench_sharded_runtime)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run the sharded scenario with this pool size and report its "
        "speedup over the same scenario at 1 worker (both through "
        "ShardedRuntime, process transport); omit to skip the scenario",
    )
    parser.add_argument("--shard-inputs", type=int, default=12_000)
    parser.add_argument("--shard-rate", type=float, default=2000.0)
    parser.add_argument("--shard-retention", type=float, default=15.0)
    parser.add_argument("--shard-a-domain", type=int, default=64)
    parser.add_argument("--shard-b-domain", type=int, default=1000)
    parser.add_argument(
        "--min-shard-speedup",
        type=float,
        default=None,
        help="exit nonzero if the sharded scenario's N-worker/1-worker "
        "speedup falls below this factor (CI scaling gate; requires "
        "--workers and a runner with >= N cores)",
    )
    #: adaptive scenario: steady-state JoinSession push throughput with
    #: reoptimize_every on vs off on a drift-free feed — the ratio isolates
    #: the unified adaptivity loop's bookkeeping (see bench_adaptive_session)
    parser.add_argument("--adaptive-inputs", type=int, default=9_000)
    parser.add_argument("--adaptive-a-domain", type=int, default=400)
    parser.add_argument("--adaptive-rate", type=float, default=600.0)
    parser.add_argument("--adaptive-window", type=float, default=3.0)
    parser.add_argument("--adaptive-epoch", type=float, default=2.0)
    parser.add_argument(
        "--max-adaptive-overhead",
        type=float,
        default=None,
        help="exit nonzero if enabling reoptimize_every costs more than "
        "this fraction of steady-state session throughput (CI gate that "
        "the adaptivity loop's bookkeeping stays cheap; 0.10 = 10%%)",
    )
    #: service scenario: sustained push throughput over loopback TCP through
    #: the bounded JoinServer ingress, with drain-latency sampling (see
    #: bench_service); opt-in via --service-only / --min-service-ops
    parser.add_argument("--service-tuples", type=int, default=8_000)
    parser.add_argument("--service-a-domain", type=int, default=200)
    parser.add_argument("--service-rate", type=float, default=1000.0)
    parser.add_argument("--service-window", type=float, default=4.0)
    parser.add_argument("--service-queue-depth", type=int, default=256)
    parser.add_argument(
        "--min-service-ops",
        type=float,
        default=None,
        help="exit nonzero if the service scenario's sustained push "
        "throughput (ops/s over TCP through the bounded ingress) falls "
        "below this rate (CI regression gate; implies running the "
        "service scenario)",
    )
    parser.add_argument(
        "--service-only",
        action="store_true",
        help="run only the service scenario (what the CI service-smoke "
        "job uses); --json-out then writes just the service block",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit nonzero if the combined insert/probe/evict speedup "
        "falls below this factor (CI regression gate)",
    )
    parser.add_argument(
        "--min-backend-speedup",
        type=float,
        default=None,
        help="exit nonzero if the selected backend's wide-window throughput "
        "falls below this factor of the python backend's (CI gate that the "
        "columnar speedup cannot silently regress)",
    )
    parser.add_argument(
        "--json-out",
        type=str,
        default=None,
        help="write per-scenario ops/s and speedups as JSON (CI uploads "
        "this as a workflow artifact for trend tracking)",
    )
    args = parser.parse_args()
    for name in (
        "tuples",
        "probes",
        "domain",
        "logical_inputs",
        "evict_every",
        "wide_tuples",
        "wide_a_domain",
        "wide_b_domain",
        "wide_probes_per_insert",
        "cascade_inputs",
        "cascade_a_domain",
        "cascade_c_domain",
        "adaptive_inputs",
        "adaptive_a_domain",
    ):
        if getattr(args, name) <= 0:
            parser.error(f"--{name.replace('_', '-')} must be positive")
    if args.adaptive_epoch <= 0:
        parser.error("--adaptive-epoch must be positive")
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.min_shard_speedup is not None and args.workers is None:
        parser.error("--min-shard-speedup requires --workers")
    if args.workers is not None:
        for name in ("shard_inputs", "shard_a_domain", "shard_b_domain"):
            if getattr(args, name) <= 0:
                parser.error(f"--{name.replace('_', '-')} must be positive")
    run_service = args.service_only or args.min_service_ops is not None
    if run_service:
        for name in ("service_tuples", "service_a_domain"):
            if getattr(args, name) <= 0:
                parser.error(f"--{name.replace('_', '-')} must be positive")
        if args.service_queue_depth < 1:
            parser.error("--service-queue-depth must be >= 1")

    def run_service_scenario():
        ops, p50, p99, pauses, high_water = bench_service(
            args.service_tuples,
            args.service_a_domain,
            args.service_rate,
            args.service_window,
            args.service_queue_depth,
            args.seed + 7,
        )
        print(
            f"service ingress:         {ops:,.0f} pushes/s over TCP "
            f"(drain latency p50 {p50 * 1e3:.1f}ms / p99 {p99 * 1e3:.1f}ms, "
            f"{pauses} pauses, queue high water {high_water}/"
            f"{args.service_queue_depth}, {args.service_tuples} tuples)"
        )
        return {
            "ops_per_s": ops,
            "p50_latency_s": p50,
            "p99_latency_s": p99,
            "pauses": pauses,
            "queue_high_water": high_water,
            "queue_depth": args.service_queue_depth,
            "tuples": args.service_tuples,
        }

    def check_service_gate(service):
        if args.min_service_ops is None:
            return
        if service["ops_per_s"] < args.min_service_ops:
            raise SystemExit(
                f"REGRESSION: service push throughput "
                f"{service['ops_per_s']:,.0f} ops/s below required "
                f"{args.min_service_ops:,.0f} ops/s"
            )
        print(
            f"service gate: {service['ops_per_s']:,.0f} ops/s >= "
            f"{args.min_service_ops:,.0f} ops/s OK "
            f"(p99 {service['p99_latency_s'] * 1e3:.1f}ms)"
        )

    if args.service_only:
        service = run_service_scenario()
        if args.json_out is not None:
            payload = {
                "schema_version": 6,
                "service": service,
                "python": sys.version.split()[0],
                "numpy": np.__version__,
                "platform": platform.platform(),
            }
            with open(args.json_out, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.json_out}")
        check_service_gate(service)
        return
    current_cls = BACKENDS[args.backend]

    tuples = make_tuples(args.tuples, args.domain, args.rate, args.seed)
    rng = random.Random(args.seed + 1)
    last_ts = tuples[-1].trigger_ts
    probes = [
        input_tuple("R", last_ts + 1.0, {"a": rng.randrange(args.domain)})
        for _ in range(args.probes)
    ]
    windows = {"R": args.retention, "S": args.retention}
    preds = (JoinPredicate.of("R.a", "S.a"),)
    bucket_width = args.retention / 16

    print(
        f"# engine hot path — {args.tuples} tuples, domain {args.domain}, "
        f"backend {args.backend}"
    )
    header = f"{'scenario':<20}{'naive (ops/s)':>16}{'current (ops/s)':>18}{'speedup':>10}"
    print(header)
    print("-" * len(header))
    rows = [
        (
            "insert",
            bench_insert(NaiveContainer, tuples, bucket_width),
            bench_insert(current_cls, tuples, bucket_width),
        ),
        (
            "probe",
            bench_probe(NaiveContainer, tuples, probes, bucket_width, windows, preds),
            bench_probe(current_cls, tuples, probes, bucket_width, windows, preds),
        ),
    ]
    sliding_tuples = make_tuples(
        args.tuples, args.sliding_domain, args.rate, args.seed + 2
    )
    sliding_windows = {"R": args.sliding_retention, "S": args.sliding_retention}
    sliding_args = (
        sliding_tuples,
        args.sliding_retention / 16,
        sliding_windows,
        preds,
        args.sliding_retention,
        args.evict_every,
    )
    rows.append(
        (
            "insert/probe/evict",
            bench_sliding_window(NaiveContainer, *sliding_args),
            bench_sliding_window(current_cls, *sliding_args),
        )
    )
    for name, naive, current in rows:
        print(f"{name:<20}{naive:>16,.0f}{current:>18,.0f}{current / naive:>9.1f}x")

    # Wide-window scenario: baseline is the *python backend*, not the naive
    # seed copy (whose full-rescan eviction is quadratically slow at this
    # state size) — the printed speedup is the columnar-vs-python number
    # the acceptance gate holds.
    wide_args = (
        args.wide_tuples,
        args.wide_a_domain,
        args.wide_b_domain,
        args.wide_rate,
        args.wide_retention,
        args.evict_every,
        args.wide_probes_per_insert,
        args.seed + 3,
    )
    wide_python = bench_wide_window(Container, *wide_args)
    wide_current = (
        wide_python
        if current_cls is Container
        else bench_wide_window(current_cls, *wide_args)
    )
    wide_speedup = wide_current / wide_python
    print(
        f"{'wide-window':<20}{wide_python:>16,.0f}{wide_current:>18,.0f}"
        f"{wide_speedup:>9.1f}x   (baseline: python backend)"
    )

    logical = bench_logical_runtime(args.logical_inputs, args.seed, args.backend)
    print(f"\nlogical-mode end-to-end: {logical:,.0f} inputs/s "
          f"({args.logical_inputs} inputs, 3-way join, parallelism 2)")

    cascade_args = (
        args.cascade_inputs,
        args.cascade_a_domain,
        args.cascade_c_domain,
        args.cascade_rate,
        args.cascade_window,
        args.cascade_payload,
        args.seed + 5,
    )
    cascade_tuple = bench_cascade(*cascade_args, vectorized=False)
    cascade_vec = bench_cascade(*cascade_args, vectorized=True)
    cascade_speedup = cascade_vec / cascade_tuple
    print(
        f"cascade end-to-end:      tuple-at-a-time {cascade_tuple:,.0f} "
        f"inputs/s, vectorized {cascade_vec:,.0f} inputs/s "
        f"({cascade_speedup:.1f}x, {args.cascade_inputs} inputs, 3-hop "
        f"chain, columnar backend)"
    )

    adaptive_off, adaptive_on, adaptive_decisions = bench_adaptive_session(
        args.adaptive_inputs,
        args.adaptive_a_domain,
        args.adaptive_rate,
        args.adaptive_window,
        args.adaptive_epoch,
        args.seed + 6,
    )
    adaptive_overhead = 1.0 - adaptive_on / adaptive_off
    print(
        f"adaptive session:        off {adaptive_off:,.0f} inputs/s, "
        f"reoptimize_every={args.adaptive_epoch:g} {adaptive_on:,.0f} "
        f"inputs/s ({adaptive_overhead:+.1%} overhead, "
        f"{adaptive_decisions} decisions, {args.adaptive_inputs} inputs, "
        f"3-way chain)"
    )

    service_result = None
    if run_service:
        service_result = run_service_scenario()

    shard_result = None
    if args.workers is not None:
        shard_args = (
            args.shard_inputs,
            args.shard_a_domain,
            args.shard_b_domain,
            args.shard_rate,
            args.shard_retention,
        )
        shard_base = bench_sharded_runtime(*shard_args, 1, args.seed + 4)
        shard_current = (
            shard_base
            if args.workers == 1
            else bench_sharded_runtime(*shard_args, args.workers, args.seed + 4)
        )
        shard_speedup = shard_current / shard_base
        shard_result = {
            "workers": args.workers,
            "one_worker_ops_per_s": shard_base,
            "n_worker_ops_per_s": shard_current,
            "speedup": shard_speedup,
        }
        print(
            f"sharded end-to-end:      1 worker {shard_base:,.0f} inputs/s, "
            f"{args.workers} workers {shard_current:,.0f} inputs/s "
            f"({shard_speedup:.1f}x, {args.shard_inputs} inputs, "
            f"2-predicate join)"
        )

    if args.json_out is not None:
        payload = {
            "schema_version": 6,
            "backend": args.backend,
            "scenarios": {
                name: {
                    "naive_ops_per_s": naive,
                    "current_ops_per_s": current,
                    "speedup": current / naive,
                }
                for name, naive, current in rows
            },
            "wide_window": {
                "python_ops_per_s": wide_python,
                "current_ops_per_s": wide_current,
                "speedup_vs_python": wide_speedup,
            },
            "logical_inputs_per_s": logical,
            "cascade": {
                "tuple_ops_per_s": cascade_tuple,
                "vectorized_ops_per_s": cascade_vec,
                "speedup": cascade_speedup,
            },
            "adaptive": {
                "off_ops_per_s": adaptive_off,
                "on_ops_per_s": adaptive_on,
                "overhead": adaptive_overhead,
                "decisions": adaptive_decisions,
            },
            "sharded": shard_result,
            "service": service_result,
            "params": {
                name: getattr(args, name)
                for name in (
                    "tuples", "probes", "domain", "rate", "retention",
                    "evict_every", "seed", "logical_inputs",
                    "sliding_retention", "sliding_domain",
                    "wide_tuples", "wide_retention", "wide_rate",
                    "wide_a_domain", "wide_b_domain", "wide_probes_per_insert",
                    "cascade_inputs", "cascade_a_domain", "cascade_c_domain",
                    "cascade_rate", "cascade_window", "cascade_payload",
                    "adaptive_inputs", "adaptive_a_domain", "adaptive_rate",
                    "adaptive_window", "adaptive_epoch",
                    "workers", "shard_inputs", "shard_rate",
                    "shard_retention", "shard_a_domain", "shard_b_domain",
                    "service_tuples", "service_a_domain", "service_rate",
                    "service_window", "service_queue_depth",
                )
            },
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        }
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")

    if args.min_speedup is not None:
        _, naive, current = rows[-1]  # the combined insert/probe/evict row
        speedup = current / naive
        if speedup < args.min_speedup:
            raise SystemExit(
                f"REGRESSION: insert/probe/evict speedup {speedup:.2f}x "
                f"below required {args.min_speedup:g}x"
            )
        print(f"speedup gate: {speedup:.1f}x >= {args.min_speedup:g}x OK")

    if args.min_backend_speedup is not None:
        if wide_speedup < args.min_backend_speedup:
            raise SystemExit(
                f"REGRESSION: wide-window {args.backend}-vs-python speedup "
                f"{wide_speedup:.2f}x below required "
                f"{args.min_backend_speedup:g}x"
            )
        print(
            f"backend gate: wide-window {wide_speedup:.1f}x >= "
            f"{args.min_backend_speedup:g}x OK"
        )

    if args.min_cascade_speedup is not None:
        if cascade_speedup < args.min_cascade_speedup:
            raise SystemExit(
                f"REGRESSION: vectorized-cascade speedup "
                f"{cascade_speedup:.2f}x below required "
                f"{args.min_cascade_speedup:g}x"
            )
        print(
            f"cascade gate: {cascade_speedup:.1f}x >= "
            f"{args.min_cascade_speedup:g}x OK"
        )

    if args.max_adaptive_overhead is not None:
        if adaptive_overhead > args.max_adaptive_overhead:
            raise SystemExit(
                f"REGRESSION: adaptive-session overhead "
                f"{adaptive_overhead:.1%} above allowed "
                f"{args.max_adaptive_overhead:.0%}"
            )
        print(
            f"adaptive gate: {adaptive_overhead:+.1%} <= "
            f"{args.max_adaptive_overhead:.0%} OK"
        )

    if service_result is not None:
        check_service_gate(service_result)

    if args.min_shard_speedup is not None:
        if shard_result["speedup"] < args.min_shard_speedup:
            raise SystemExit(
                f"REGRESSION: sharded {args.workers}-worker speedup "
                f"{shard_result['speedup']:.2f}x below required "
                f"{args.min_shard_speedup:g}x"
            )
        print(
            f"shard gate: {shard_result['speedup']:.1f}x >= "
            f"{args.min_shard_speedup:g}x OK"
        )


if __name__ == "__main__":
    main()
