"""Ablation benches for the design choices called out in DESIGN.md.

* constraint form — the paper's aggregate Equation-3 rows vs the tighter
  per-step indicator rows (same integer optimum, different solver effort);
* partitioning consistency — strict ``z``-layer vs the paper's printed
  relaxed formulation;
* solver — in-house branch-and-bound vs scipy/HiGHS vs the grouped greedy;
* MIR materialization on/off.

Run with ``pytest benchmarks/bench_ablation_ilp.py --benchmark-only -s``.
"""

import time

import pytest

from repro.core.ilp_builder import OptimizerConfig, build_mqo_ilp
from repro.core.optimizer import MultiQueryOptimizer
from repro.core.partitioning import ClusterConfig
from repro.experiments.reporting import format_table
from repro.ilp.greedy import solve_greedy
from repro.streams.workloads import make_environment, random_queries


def _workload(num_relations=10, num_queries=8, seed=11):
    env = make_environment(num_relations)
    queries = random_queries(env, num_queries, query_size=3, seed=seed)
    return env, queries


def test_ablation_constraint_form(benchmark):
    """Paper-form vs indicator-form cost linking: same optimum."""
    env, queries = _workload()

    def run():
        rows = []
        for form in ("paper", "indicator"):
            cfg = OptimizerConfig(
                constraint_form=form,
                strict_partitioning=False,
                mir_max_size=2,
                cluster=ClusterConfig(default_parallelism=4),
            )
            opt = MultiQueryOptimizer(
                env.catalog, cfg, solver="scipy", use_greedy_warm_start=False
            )
            start = time.perf_counter()
            res = opt.optimize(queries)
            rows.append(
                (
                    form,
                    res.plan.objective,
                    res.ilp.num_constraints,
                    time.perf_counter() - start,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== ablation: cost-linking constraint form ===")
    print(format_table(["form", "objective", "constraints", "seconds"], rows))
    assert rows[0][1] == pytest.approx(rows[1][1]), "optima must agree"


def test_ablation_partitioning_consistency(benchmark):
    """Strict z-layer vs the paper's relaxed ILP."""
    env, queries = _workload()

    def run():
        rows = []
        for strict in (False, True):
            cfg = OptimizerConfig(
                strict_partitioning=strict,
                mir_max_size=2,
                cluster=ClusterConfig(default_parallelism=4),
            )
            opt = MultiQueryOptimizer(
                env.catalog, cfg, solver="scipy", use_greedy_warm_start=False
            )
            res = opt.optimize(queries)
            rows.append(
                ("strict" if strict else "relaxed", res.plan.objective,
                 res.ilp.num_variables, res.ilp.num_constraints)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== ablation: partitioning consistency layer ===")
    print(format_table(["mode", "objective", "vars", "constraints"], rows))
    relaxed, strict = rows[0][1], rows[1][1]
    assert relaxed <= strict + 1e-9, "relaxation can only lower the optimum"


def test_ablation_solvers(benchmark):
    """Own branch-and-bound vs HiGHS vs greedy on a small instance."""
    env, queries = _workload(num_relations=8, num_queries=4, seed=5)
    cfg = OptimizerConfig(
        strict_partitioning=False,
        mir_max_size=2,
        cluster=ClusterConfig(default_parallelism=2),
    )

    def run():
        rows = []
        for solver in ("own", "scipy"):
            opt = MultiQueryOptimizer(env.catalog, cfg, solver=solver)
            start = time.perf_counter()
            res = opt.optimize(queries)
            rows.append((solver, res.plan.objective, time.perf_counter() - start))
        ilp = MultiQueryOptimizer(env.catalog, cfg).build(queries)
        start = time.perf_counter()
        greedy = solve_greedy(ilp.grouped)
        rows.append(("greedy", greedy.objective, time.perf_counter() - start))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== ablation: solver backends ===")
    print(format_table(["solver", "objective", "seconds"], rows))
    own, scipy_obj, greedy_obj = rows[0][1], rows[1][1], rows[2][1]
    assert own == pytest.approx(scipy_obj), "exact solvers must agree"
    assert greedy_obj >= own - 1e-9, "greedy is an upper bound"


def test_ablation_mir_materialization(benchmark):
    """MIR stores on/off: intermediates can only help the optimum."""
    env, queries = _workload()

    def run():
        rows = []
        for enabled in (True, False):
            cfg = OptimizerConfig(
                enable_mirs=enabled,
                mir_max_size=2,
                strict_partitioning=False,
                cluster=ClusterConfig(default_parallelism=4),
            )
            opt = MultiQueryOptimizer(
                env.catalog, cfg, solver="scipy", use_greedy_warm_start=False
            )
            res = opt.optimize(queries)
            rows.append(
                ("with MIRs" if enabled else "no MIRs", res.plan.objective,
                 res.ilp.num_probe_orders)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== ablation: MIR materialization ===")
    print(format_table(["mode", "objective", "probe orders"], rows))
    assert rows[0][1] <= rows[1][1] + 1e-9


def test_ablation_greedy_warm_start(benchmark):
    """Warm starts prune the in-house branch-and-bound."""
    env, queries = _workload(num_relations=8, num_queries=3, seed=9)
    cfg = OptimizerConfig(
        strict_partitioning=False,
        mir_max_size=2,
        cluster=ClusterConfig(default_parallelism=2),
    )

    def run():
        rows = []
        for warm in (True, False):
            opt = MultiQueryOptimizer(
                env.catalog, cfg, solver="own", use_greedy_warm_start=warm
            )
            res = opt.optimize(queries)
            rows.append(
                (
                    "warm" if warm else "cold",
                    res.plan.objective,
                    res.solution.info.get("nodes_explored", 0),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== ablation: greedy warm start for branch-and-bound ===")
    print(format_table(["start", "objective", "B&B nodes"], rows))
    assert rows[0][1] == pytest.approx(rows[1][1])
