"""Benchmark: multi-query performance on TPC-H streams (Figures 7b/7c/7d).

Regenerates the paper's strategy grid — FI / SI / FS / SS / CMQO over the
five- and ten-query workloads — and prints throughput, memory, and latency
rows.  Absolute values are simulator-scale; the reproduction targets are
the *relationships*: CMQO's throughput lead, the memory blow-up of
independent execution, and CMQO's modest latency overhead.

Run with ``pytest benchmarks/bench_fig7_multiquery.py --benchmark-only -s``.
"""

import pytest

from repro.experiments.fig7 import ratio_summary, run_fig7
from repro.experiments.reporting import format_table

_GRID_CACHE = {}


def _grid(num_queries: int):
    if num_queries not in _GRID_CACHE:
        # committed parameterization (matches bench_output.txt): 24-machine
        # pool, full history, workload-dependent overload rate
        _GRID_CACHE[num_queries] = run_fig7(
            num_queries=num_queries,
            total_rate=150.0,
            duration=12.0,
            parallelism=3,
            num_machines=24,
            solver="scipy",
        )
    return _GRID_CACHE[num_queries]


@pytest.mark.parametrize("num_queries", [5, 10])
def test_fig7b_throughput(benchmark, num_queries):
    """Fig. 7b: throughput of executing multiple queries."""
    rows = benchmark.pedantic(
        lambda: _grid_fresh_or_cached(num_queries), rounds=1, iterations=1
    )
    print(f"\n=== Fig 7b ({num_queries} queries): throughput [tuples/s] ===")
    print(
        format_table(
            ["strategy", "throughput t/s", "results", "failed"],
            [(r.strategy, r.throughput, r.results, r.failed) for r in rows],
        )
    )
    by = {r.strategy: r for r in rows}
    # paper: shared strategies beat independent; CMQO leads overall (≈2.6x)
    assert by["CMQO"].throughput >= 0.9 * max(
        by["FI"].throughput, by["SI"].throughput
    )


def _grid_fresh_or_cached(num_queries: int):
    return _grid(num_queries)


@pytest.mark.parametrize("num_queries", [5, 10])
def test_fig7c_memory(benchmark, num_queries):
    """Fig. 7c: memory requirements for different query plans."""
    rows = benchmark.pedantic(
        lambda: _grid_fresh_or_cached(num_queries), rounds=1, iterations=1
    )
    print(f"\n=== Fig 7c ({num_queries} queries): peak memory [tuple units] ===")
    print(
        format_table(
            ["strategy", "peak memory", "vs shared"],
            [
                (
                    r.strategy,
                    r.peak_memory_units,
                    r.peak_memory_units
                    / max(1e-9, _shared_memory(rows)),
                )
                for r in rows
            ],
        )
    )
    by = {r.strategy: r for r in rows}
    ratio = by["SI"].peak_memory_units / by["SS"].peak_memory_units
    print(
        f"independent/shared memory ratio: {ratio:.2f}x "
        f"(paper: 3.1x at 5 queries, 5.3x at 10 queries)"
    )
    assert ratio > 1.3


def _shared_memory(rows):
    return next(r.peak_memory_units for r in rows if r.strategy == "SS")


@pytest.mark.parametrize("num_queries", [5, 10])
def test_fig7d_latency(benchmark, num_queries):
    """Fig. 7d: end-to-end latencies of complete join results."""
    rows = benchmark.pedantic(
        lambda: _grid_fresh_or_cached(num_queries), rounds=1, iterations=1
    )
    print(f"\n=== Fig 7d ({num_queries} queries): mean latency [ms] ===")
    print(
        format_table(
            ["strategy", "latency ms", "probe cost"],
            [(r.strategy, r.mean_latency_ms, r.probe_cost) for r in rows],
        )
    )
    summary = ratio_summary(rows)
    for key, value in summary.items():
        print(f"{key}: {value:.2f}")
    by = {r.strategy: r for r in rows}
    assert by["CMQO"].mean_latency_ms > 0
