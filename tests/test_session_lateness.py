"""Lateness ladder: allowed-lateness admission and dead-letter side-output.

The ladder (docs/service.md): in watermark mode a push may lag its
stream's high water by ``disorder_bound`` D for free; ``allowed_lateness``
L grants a grace band (D, D+L] whose tuples are *admitted late* — the
engine's eviction watermark is held back by L so their join partners are
still stored — and everything beyond D+L hits the ``on_late`` policy,
including the new ``"dead_letter"`` routing.  Dead-lettered tuples are
invisible to results, statistics, and the history, so ``verify()``
checks the session against the oracle restricted to exactly the
admitted tuples.
"""

import pytest

from repro import JoinSession, LateTupleError
from repro.streams.adapters import replay
from repro.streams.generators import (
    StreamSpec,
    bounded_delay_feed,
    generate_streams,
    uniform_domain,
)


def ladder_session(on_late="dead_letter", **kwargs):
    kwargs.setdefault("window", 10.0)
    kwargs.setdefault("disorder_bound", 1.0)
    kwargs.setdefault("allowed_lateness", 2.0)
    session = JoinSession(on_late=on_late, **kwargs)
    return session.add_query("q1", "R.a=S.a")


class TestLadderClassification:
    def test_lag_within_disorder_bound_is_not_late(self):
        session = ladder_session()
        session.push("R", {"a": 1}, ts=2.0)
        session.push("R", {"a": 1}, ts=1.5)  # lag 0.5 <= D
        m = session.metrics
        assert m.late_admitted == 0 and m.dead_lettered == 0

    def test_lag_in_grace_band_is_admitted_and_joined(self):
        session = ladder_session()
        session.push("R", {"a": 1}, ts=5.0)
        session.push("S", {"a": 1}, ts=5.0)
        session.push("R", {"a": 1}, ts=3.0)  # lag 2.0 ∈ (D, D+L]
        m = session.metrics
        assert m.late_admitted == 1 and m.dead_lettered == 0
        # the admitted straggler still joined: an R@3.0 ⋈ S@5.0 result
        # exists only if the engine accepted it past the D bound
        results = session.results("q1")
        assert any(r.timestamps["R"] == 3.0 for r in results)
        assert session.verify().ok

    def test_lag_beyond_grace_is_dead_lettered(self):
        session = ladder_session()
        collected = []
        session.on_dead_letter(collected.append)
        session.push("R", {"a": 1}, ts=5.0)
        session.push("S", {"a": 1}, ts=5.0)
        session.push("R", {"a": 1}, ts=1.5)  # lag 3.5 > D+L
        m = session.metrics
        assert m.dead_lettered == 1 and m.late_admitted == 0
        assert [(t.trigger, t.trigger_ts) for t in session.dead_letters()] == [
            ("R", 1.5)
        ]
        assert [(t.trigger, t.trigger_ts) for t in collected] == [("R", 1.5)]
        # invisible to results and the oracle (the on-time join remains)
        assert all(
            r.timestamps["R"] != 1.5 for r in session.results("q1")
        )
        assert session.verify().ok

    def test_policy_ladder_raise_and_drop_still_apply_beyond_grace(self):
        session = ladder_session(on_late="raise")
        session.push("R", {"a": 1}, ts=5.0)
        with pytest.raises(LateTupleError):
            session.push("R", {"a": 1}, ts=1.5)
        # per-push override onto the dead-letter branch
        session.push("R", {"a": 1}, ts=1.5, on_late="dead_letter")
        assert session.metrics.dead_lettered == 1
        session.push("R", {"a": 1}, ts=1.5, on_late="drop")
        assert session.metrics.late_dropped == 1

    def test_dead_letter_during_warmup_folds_into_metrics(self):
        session = JoinSession(
            window=10.0,
            disorder_bound=0.5,
            allowed_lateness=0.5,
            on_late="dead_letter",
            warmup=10,
        ).add_query("q1", "R.a=S.a")
        session.push("R", {"a": 1}, ts=5.0)
        session.push("R", {"a": 1}, ts=1.0)  # lag 4.0 > D+L, mid-warmup
        assert session.metrics is None  # still buffering
        assert len(session.dead_letters()) == 1
        for i in range(10):
            session.push("S", {"a": 1}, ts=5.0 + i * 0.1)
        assert session.metrics.dead_lettered == 1
        assert session.verify().ok


class TestLadderValidation:
    def test_allowed_lateness_requires_watermark_mode(self):
        with pytest.raises(ValueError, match="watermark mode"):
            JoinSession(allowed_lateness=1.0)

    def test_allowed_lateness_must_be_non_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            JoinSession(disorder_bound=1.0, allowed_lateness=-0.5)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="dead_letter"):
            JoinSession(on_late="sidechannel")
        session = ladder_session()
        session.push("R", {"a": 1}, ts=1.0)
        with pytest.raises(ValueError, match="dead_letter"):
            session.push("R", {"a": 1}, ts=1.0, on_late="quarantine")


class TestDeadLetterParity:
    """Randomized end-to-end check of the acceptance criterion: the
    session verifies against the oracle restricted to admitted tuples,
    and the side-output contains exactly the beyond-lateness tuples."""

    @pytest.mark.parametrize("backend", ["python", "columnar"])
    def test_bounded_delay_feed_with_dead_letters(self, backend):
        bound, lateness = 0.6, 0.6
        specs = [
            StreamSpec("R", rate=8.0, attributes={"a": uniform_domain(4)}),
            StreamSpec(
                "S",
                rate=8.0,
                attributes={"a": uniform_domain(4), "b": uniform_domain(3)},
            ),
            StreamSpec("T", rate=8.0, attributes={"b": uniform_domain(3)}),
        ]
        streams, _ = generate_streams(specs, duration=12.0, seed=7)
        # shuffle harder than the ladder tolerates so some arrivals fall
        # beyond D+L and must be dead-lettered
        feed = list(bounded_delay_feed(streams, 2.5, seed=11))

        # simulate the ladder in feed order to derive the expected split
        high = {}
        expected_dead = []
        for tup in feed:
            prev = high.get(tup.trigger)
            if prev is not None and prev - tup.trigger_ts > bound + lateness:
                expected_dead.append(tup)
            else:
                high[tup.trigger] = max(prev, tup.trigger_ts) if prev else tup.trigger_ts
        assert expected_dead, "fixture must actually exercise the ladder"

        session = JoinSession(
            window=4.0,
            disorder_bound=bound,
            allowed_lateness=lateness,
            on_late="dead_letter",
            store_backend=backend,
        )
        session.add_query("q1", "R.a=S.a", "S.b=T.b")
        replay(session, feed, chunk=64)
        # exactly the beyond-lateness tuples, in arrival order
        assert [
            (t.trigger, t.trigger_ts) for t in session.dead_letters()
        ] == [(t.trigger, t.trigger_ts) for t in expected_dead]
        m = session.metrics
        assert m.dead_lettered == len(expected_dead)
        assert m.late_admitted > 0  # the grace band was used too
        # oracle restricted to admitted tuples: verify() sees only the
        # recorded history, which excludes every dead-lettered tuple
        assert session.verify().ok
