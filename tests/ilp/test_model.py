"""Unit tests for the ILP modeling layer."""

import numpy as np
import pytest

from repro.ilp.model import LinExpr, Model, Sense, VarType


@pytest.fixture()
def model():
    return Model("test")


class TestVariables:
    def test_add_var_assigns_sequential_indices(self, model):
        x = model.add_var("x")
        y = model.add_var("y")
        assert (x.index, y.index) == (0, 1)

    def test_duplicate_names_rejected(self, model):
        model.add_var("x")
        with pytest.raises(ValueError):
            model.add_var("x")

    def test_invalid_bounds_rejected(self, model):
        with pytest.raises(ValueError):
            model.add_var("x", lb=2.0, ub=1.0)

    def test_get_and_has_var(self, model):
        x = model.add_var("x")
        assert model.get_var("x") is x
        assert model.has_var("x")
        assert not model.has_var("y")

    def test_binary_default_bounds(self, model):
        x = model.add_var("x")
        assert (x.lb, x.ub) == (0.0, 1.0)
        assert x.vtype is VarType.BINARY

    def test_integer_variables_excludes_continuous(self, model):
        x = model.add_var("x")
        model.add_var("c", vtype=VarType.CONTINUOUS, ub=10)
        z = model.add_var("z", vtype=VarType.INTEGER, ub=5)
        assert model.integer_variables() == [x, z]


class TestLinExpr:
    def test_scalar_multiplication(self, model):
        x = model.add_var("x")
        expr = 3 * x
        assert expr.terms[x] == 3.0

    def test_addition_merges_terms(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        expr = 2 * x + 3 * y + x
        assert expr.terms[x] == 3.0
        assert expr.terms[y] == 3.0

    def test_subtraction_cancels_to_zero_terms(self, model):
        x = model.add_var("x")
        expr = 2 * x - 2 * x
        assert x not in expr.terms

    def test_constant_arithmetic(self, model):
        x = model.add_var("x")
        expr = x + 5 - 2
        assert expr.constant == 3.0

    def test_sum_helper(self, model):
        xs = [model.add_var(f"x{i}") for i in range(4)]
        expr = LinExpr.sum(xs)
        assert all(expr.terms[x] == 1.0 for x in xs)

    def test_negation(self, model):
        x = model.add_var("x")
        expr = -(2 * x + 1)
        assert expr.terms[x] == -2.0
        assert expr.constant == -1.0

    def test_value_evaluation(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        expr = 2 * x + 3 * y + 1
        assert expr.value({x: 1.0, y: 2.0}) == 9.0

    def test_value_missing_vars_default_zero(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        expr = 2 * x + 3 * y
        assert expr.value({x: 1.0}) == 2.0


class TestConstraints:
    def test_constant_folded_into_rhs(self, model):
        x = model.add_var("x")
        con = model.add_le(x + 5, 6)
        assert con.rhs == 1.0
        assert con.expr.constant == 0.0

    def test_satisfied_le(self, model):
        x = model.add_var("x")
        con = model.add_le(2 * x, 1)
        assert con.satisfied({x: 0.0})
        assert not con.satisfied({x: 1.0})

    def test_satisfied_ge(self, model):
        x = model.add_var("x")
        con = model.add_ge(x, 1)
        assert con.satisfied({x: 1.0})
        assert not con.satisfied({x: 0.0})

    def test_satisfied_eq_with_tolerance(self, model):
        x = model.add_var("x")
        con = model.add_eq(x, 1)
        assert con.satisfied({x: 1.0 + 1e-9})
        assert not con.satisfied({x: 0.5})

    def test_variable_accepted_as_expr(self, model):
        x = model.add_var("x")
        con = model.add_constraint(x, Sense.LE, 1)
        assert con.expr.terms[x] == 1.0


class TestFeasibilityAndObjective:
    def test_is_feasible_checks_bounds(self, model):
        x = model.add_var("x")
        assert not model.is_feasible({x: 2.0})

    def test_is_feasible_checks_integrality(self, model):
        x = model.add_var("x")
        assert not model.is_feasible({x: 0.5})
        c = model.add_var("c", vtype=VarType.CONTINUOUS)
        assert model.is_feasible({x: 1.0, c: 0.5})

    def test_is_feasible_checks_constraints(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        model.add_le(x + y, 1)
        assert model.is_feasible({x: 1.0, y: 0.0})
        assert not model.is_feasible({x: 1.0, y: 1.0})

    def test_objective_value_includes_constant(self, model):
        x = model.add_var("x")
        model.set_objective(2 * x + 7)
        assert model.objective_value({x: 1.0}) == 9.0


class TestMatrixExport:
    def test_ge_rows_negated_into_le(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        model.add_ge(x + 2 * y, 3)
        model.set_objective(x + y)
        c, a_ub, b_ub, a_eq, b_eq, lb, ub = model.to_matrices()
        np.testing.assert_allclose(a_ub, [[-1.0, -2.0]])
        np.testing.assert_allclose(b_ub, [-3.0])

    def test_eq_rows_separate(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        model.add_eq(x + y, 1)
        c, a_ub, b_ub, a_eq, b_eq, lb, ub = model.to_matrices()
        assert a_ub.shape == (0, 2)
        np.testing.assert_allclose(a_eq, [[1.0, 1.0]])
        np.testing.assert_allclose(b_eq, [1.0])

    def test_bounds_exported(self, model):
        model.add_var("x", lb=0.5, ub=2.0, vtype=VarType.CONTINUOUS)
        *_, lb, ub = model.to_matrices()
        np.testing.assert_allclose(lb, [0.5])
        np.testing.assert_allclose(ub, [2.0])

    def test_solution_from_vector(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        model.set_objective(3 * x + y + 1)
        from repro.ilp.model import SolveStatus

        sol = model.solution_from_vector(np.array([1.0, 0.0]), SolveStatus.OPTIMAL)
        assert sol.objective == 4.0
        assert sol.value(x) == 1.0
        assert sol.selected() == [x]
