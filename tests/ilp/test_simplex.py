"""Tests for the in-house two-phase simplex, cross-checked against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.ilp.simplex import solve_lp

_INF = np.inf


def _solve(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None, lb=None, ub=None):
    n = len(c)
    lb = np.zeros(n) if lb is None else np.asarray(lb, float)
    ub = np.full(n, _INF) if ub is None else np.asarray(ub, float)
    return solve_lp(
        np.asarray(c, float),
        np.asarray(a_ub, float) if a_ub is not None else None,
        np.asarray(b_ub, float) if b_ub is not None else None,
        np.asarray(a_eq, float) if a_eq is not None else None,
        np.asarray(b_eq, float) if b_eq is not None else None,
        lb,
        ub,
    )


class TestBasicLPs:
    def test_simple_maximization_as_min(self):
        # max x + y s.t. x + 2y <= 4, 3x + y <= 6 -> x=1.6, y=1.2, sum 2.8
        res = _solve([-1, -1], a_ub=[[1, 2], [3, 1]], b_ub=[4, 6])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-2.8)

    def test_equality_constraints(self):
        res = _solve([1, 2], a_eq=[[1, 1]], b_eq=[1])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(1.0)
        np.testing.assert_allclose(res.x, [1.0, 0.0], atol=1e-8)

    def test_upper_bounds_respected(self):
        res = _solve([-1, -1], ub=[1, 2], a_ub=[[1, 1]], b_ub=[10])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-3.0)

    def test_lower_bound_shift(self):
        # min x with x >= 2.5
        res = _solve([1], lb=[2.5], ub=[10])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(2.5)

    def test_negative_rhs_requires_artificials(self):
        # x - y <= -1 means y >= x + 1; min y -> x=0, y=1
        res = _solve([0, 1], a_ub=[[1, -1]], b_ub=[-1], ub=[5, 5])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(1.0)

    def test_degenerate_lp(self):
        res = _solve(
            [-1, -1, -1],
            a_ub=[[1, 1, 0], [0, 1, 1], [1, 0, 1], [1, 1, 1]],
            b_ub=[1, 1, 1, 1.5],
        )
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-1.5)


class TestEdgeCases:
    def test_infeasible_by_bounds(self):
        res = _solve([1], lb=[2], ub=[1])
        assert res.status == "infeasible"

    def test_infeasible_constraints(self):
        res = _solve([1, 1], a_ub=[[1, 1]], b_ub=[1], a_eq=[[1, 1]], b_eq=[3], ub=[5, 5])
        assert res.status == "infeasible"

    def test_unbounded(self):
        res = _solve([-1], a_ub=[[0]], b_ub=[1])
        assert res.status == "unbounded"

    def test_zero_variables_edge(self):
        res = _solve([0, 0], a_ub=[[1, 1]], b_ub=[1])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(0.0)

    def test_redundant_equalities(self):
        res = _solve([1, 1], a_eq=[[1, 1], [2, 2]], b_eq=[1, 2])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(1.0)

    def test_binary_relaxation_box(self):
        # LP relaxation of a covering problem: min x+y, x+y >= 1, 0<=x,y<=1.
        res = _solve([1, 1], a_ub=[[-1, -1]], b_ub=[-1], ub=[1, 1])
        assert res.status == "optimal"
        assert res.objective == pytest.approx(1.0)


def _well_scaled(lo: float, hi: float):
    """Floats in [lo, hi] with near-zero values snapped to exactly 0.

    Coefficients spanning many orders of magnitude (e.g. 1e-12 next to
    1e-8) put the LP outside both solvers' conditioning guarantees: HiGHS
    presolve may drop a tiny coefficient our exact pivoting keeps, and the
    two defensible answers differ by more than any fixed tolerance.
    """
    return st.floats(lo, hi, allow_nan=False, width=32).map(
        lambda v: 0.0 if abs(v) < 1e-3 else v
    )


@st.composite
def random_lp(draw):
    """Bounded-feasible random LP: box [0, ub] with <= constraints, b >= 0.

    x = 0 is always feasible, so the instance is never infeasible, and the
    box keeps it bounded — scipy and our simplex must agree exactly.
    """
    n = draw(st.integers(2, 6))
    m = draw(st.integers(1, 6))
    c = draw(st.lists(_well_scaled(-5, 5), min_size=n, max_size=n))
    a = [
        draw(st.lists(_well_scaled(-3, 3), min_size=n, max_size=n))
        for _ in range(m)
    ]
    b = draw(
        st.lists(st.floats(0, 10, allow_nan=False, width=32), min_size=m, max_size=m)
    )
    ub = draw(
        st.lists(st.floats(0.5, 4, allow_nan=False, width=32), min_size=n, max_size=n)
    )
    return c, a, b, ub


class TestAgainstScipy:
    @settings(max_examples=60, deadline=None)
    @given(random_lp())
    def test_matches_scipy_on_random_bounded_lps(self, lp):
        c, a, b, ub = lp
        ours = _solve(c, a_ub=a, b_ub=b, ub=ub)
        ref = linprog(c, A_ub=a, b_ub=b, bounds=[(0, u) for u in ub], method="highs")
        assert ours.status == "optimal"
        assert ref.status == 0
        assert ours.objective == pytest.approx(ref.fun, abs=1e-6)

    def test_matches_scipy_with_equalities(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            n = 5
            c = rng.uniform(-2, 2, n)
            a_eq = rng.uniform(-1, 1, (2, n))
            x_feas = rng.uniform(0, 1, n)
            b_eq = a_eq @ x_feas  # guarantees feasibility inside the box
            ours = _solve(c, a_eq=a_eq, b_eq=b_eq, ub=np.ones(n) * 2)
            ref = linprog(
                c, A_eq=a_eq, b_eq=b_eq, bounds=[(0, 2)] * n, method="highs"
            )
            assert ours.status == "optimal"
            assert ours.objective == pytest.approx(ref.fun, abs=1e-6)

    def test_solution_vector_is_feasible(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            n, m = 6, 4
            c = rng.uniform(-1, 1, n)
            a = rng.uniform(-1, 1, (m, n))
            b = rng.uniform(0.5, 3, m)
            res = _solve(c, a_ub=a, b_ub=b, ub=np.ones(n))
            assert res.status == "optimal"
            assert np.all(a @ res.x <= b + 1e-7)
            assert np.all(res.x >= -1e-9)
            assert np.all(res.x <= 1 + 1e-9)
