"""Tests for the grouped-selection greedy heuristic."""

import pytest

from repro.ilp.greedy import (
    GroupedCandidate,
    GroupedProblem,
    selection_objective,
    solve_greedy,
)


def _problem(step_costs, candidates, mandatory):
    groups = {}
    cand_map = {}
    for cand in candidates:
        cand_map[cand.name] = cand
        groups.setdefault(cand.group, []).append(cand.name)
    for group in mandatory:
        groups.setdefault(group, [])
    problem = GroupedProblem(
        step_costs=dict(step_costs),
        candidates=cand_map,
        groups=groups,
        mandatory=tuple(mandatory),
    )
    problem.validate()
    return problem


class TestValidation:
    def test_dangling_step_rejected(self):
        with pytest.raises(ValueError):
            _problem({}, [GroupedCandidate("c", "g", ("missing",))], ["g"])

    def test_dangling_activation_rejected(self):
        cand = GroupedCandidate("c", "g", (), activates=("nowhere",))
        with pytest.raises(ValueError):
            _problem({}, [cand], ["g"])


class TestGreedySelection:
    def test_single_group_picks_cheapest(self):
        problem = _problem(
            {"s1": 10.0, "s2": 3.0},
            [
                GroupedCandidate("a", "g", ("s1",)),
                GroupedCandidate("b", "g", ("s2",)),
            ],
            ["g"],
        )
        sol = solve_greedy(problem)
        assert sol is not None
        assert sol.chosen == {"b"}
        assert sol.objective == 3.0

    def test_shared_steps_priced_once(self):
        """The paper's Sec. V.2 effect: sharing a prefix flips the choice.

        Group g2 is forced onto step "ST"; g1 can use {"SR", "SRT"} (cost
        100 + 50 = 150) or {"ST", "STR"} (marginal 75 once "ST" is shared).
        """
        problem = _problem(
            {"SR": 100.0, "SRT": 50.0, "ST": 100.0, "STR": 75.0, "STU": 75.0},
            [
                GroupedCandidate("q1_via_R", "g1", ("SR", "SRT")),
                GroupedCandidate("q1_via_T", "g1", ("ST", "STR")),
                GroupedCandidate("q2_only", "g2", ("ST", "STU")),
            ],
            ["g1", "g2"],
        )
        sol = solve_greedy(problem)
        assert sol is not None
        assert "q2_only" in sol.chosen
        assert "q1_via_T" in sol.chosen  # locally suboptimal, globally cheaper
        assert sol.objective == pytest.approx(100 + 75 + 75)

    def test_partition_commitments_respected(self):
        problem = _problem(
            {"s1": 1.0, "s2": 2.0, "s3": 1.0},
            [
                GroupedCandidate("a", "g1", ("s1",), commitments=(("S", "x"),)),
                GroupedCandidate("b", "g2", ("s2",), commitments=(("S", "x"),)),
                GroupedCandidate("c", "g2", ("s3",), commitments=(("S", "y"),)),
            ],
            ["g1", "g2"],
        )
        sol = solve_greedy(problem)
        assert sol is not None
        # "c" is cheaper but commits S to y, conflicting with mandatory "a".
        assert sol.chosen == {"a", "b"}
        assert sol.partitioning == {"S": "x"}

    def test_activation_pulls_in_maintenance_groups(self):
        problem = _problem(
            {"use_mir": 1.0, "maint1": 2.0, "maint2": 3.0, "direct": 5.0},
            [
                GroupedCandidate("via_mir", "g", ("use_mir",), activates=("m",)),
                GroupedCandidate("direct", "g", ("direct",)),
                GroupedCandidate("maintain_a", "m", ("maint1",)),
                GroupedCandidate("maintain_b", "m", ("maint2",)),
            ],
            ["g"],
        )
        sol = solve_greedy(problem)
        assert sol is not None
        assert "via_mir" in sol.chosen
        assert "maintain_a" in sol.chosen  # cheapest maintenance
        assert sol.objective == pytest.approx(3.0)

    def test_greedy_is_not_always_optimal_but_feasible(self):
        # Greedy takes the 1.0 candidate, then must pay 10; optimum is 2+2.
        problem = _problem(
            {"cheap": 1.0, "trap": 10.0, "fair1": 2.0, "fair2": 2.0},
            [
                GroupedCandidate("g1_cheap", "g1", ("cheap",), commitments=(("S", "x"),)),
                GroupedCandidate("g1_fair", "g1", ("fair1",), commitments=(("S", "y"),)),
                GroupedCandidate("g2_trap", "g2", ("trap",), commitments=(("S", "x"),)),
                GroupedCandidate("g2_fair", "g2", ("fair2",), commitments=(("S", "y"),)),
            ],
            ["g1", "g2"],
        )
        sol = solve_greedy(problem)
        assert sol is not None
        assert sol.satisfied_groups == {"g1", "g2"}
        # both committed to one attribute for S
        assert len(sol.partitioning) == 1

    def test_incompatible_corner_returns_none(self):
        problem = _problem(
            {"s": 1.0, "t": 1.0},
            [
                GroupedCandidate("only_g1", "g1", ("s",), commitments=(("S", "x"),)),
                GroupedCandidate("only_g2", "g2", ("t",), commitments=(("S", "y"),)),
            ],
            ["g1", "g2"],
        )
        assert solve_greedy(problem) is None

    def test_selection_objective_unions_steps(self):
        problem = _problem(
            {"a": 2.0, "b": 3.0},
            [
                GroupedCandidate("c1", "g1", ("a", "b")),
                GroupedCandidate("c2", "g2", ("a",)),
            ],
            ["g1", "g2"],
        )
        assert selection_objective(problem, ["c1", "c2"]) == 5.0
