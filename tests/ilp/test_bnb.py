"""Branch-and-bound tests, cross-checked against scipy's HiGHS MILP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp.bnb import BranchAndBoundSolver
from repro.ilp.model import LinExpr, Model, SolveStatus, VarType
from repro.ilp.scipy_backend import ScipyMilpSolver
from repro.ilp.solvers import SolverMethod, solve_model


def _knapsack_model(values, weights, capacity):
    """min -value selection under a weight cap (knapsack as minimization)."""
    m = Model("knapsack")
    xs = [m.add_var(f"x{i}") for i in range(len(values))]
    m.add_le(LinExpr.sum(w * x for w, x in zip(weights, xs)), capacity)
    m.set_objective(LinExpr.sum(-v * x for v, x in zip(values, xs)))
    return m, xs


class TestSmallILPs:
    def test_knapsack_optimum(self):
        m, xs = _knapsack_model([10, 13, 7], [3, 4, 2], 5)
        sol = BranchAndBoundSolver().solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        # best: items 0+2 (weight 5, value 17) over item 1 (value 13)
        assert sol.objective == pytest.approx(-17)
        assert sol.value(xs[0]) == 1 and sol.value(xs[2]) == 1

    def test_set_cover(self):
        m = Model("cover")
        a, b, c = (m.add_var(n) for n in "abc")
        # elements 1..3; sets a={1,2}, b={2,3}, c={1,3}; unit costs
        m.add_ge(a + c, 1)
        m.add_ge(a + b, 1)
        m.add_ge(b + c, 1)
        m.set_objective(a + b + c)
        sol = BranchAndBoundSolver().solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(2)

    def test_assignment_problem(self):
        cost = [[4, 2, 8], [4, 3, 7], [3, 1, 6]]
        m = Model("assign")
        x = [[m.add_var(f"x{i}{j}") for j in range(3)] for i in range(3)]
        for i in range(3):
            m.add_eq(LinExpr.sum(x[i]), 1)
        for j in range(3):
            m.add_eq(LinExpr.sum(x[i][j] for i in range(3)), 1)
        m.set_objective(
            LinExpr.sum(cost[i][j] * x[i][j] for i in range(3) for j in range(3))
        )
        sol = BranchAndBoundSolver().solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(12)  # (0,1)+(1,2)? -> 2+7+3 = 12

    def test_infeasible_model(self):
        m = Model("infeasible")
        x = m.add_var("x")
        m.add_ge(x, 1)
        m.add_le(x, 0)
        sol = BranchAndBoundSolver().solve(m)
        assert sol.status is SolveStatus.INFEASIBLE

    def test_integer_variable_with_wider_bounds(self):
        m = Model("intvar")
        x = m.add_var("x", vtype=VarType.INTEGER, ub=10)
        y = m.add_var("y", vtype=VarType.INTEGER, ub=10)
        m.add_le(2 * x + 3 * y, 12)
        m.set_objective(-3 * x - 4 * y)
        sol = BranchAndBoundSolver().solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        ref = ScipyMilpSolver().solve(m)
        assert sol.objective == pytest.approx(ref.objective)

    def test_mixed_integer_continuous(self):
        m = Model("mixed")
        x = m.add_var("x")  # binary
        y = m.add_var("y", vtype=VarType.CONTINUOUS, ub=2.5)
        m.add_ge(x + y, 2)
        m.set_objective(5 * x + y)
        sol = BranchAndBoundSolver().solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        # cheapest: y at 2.0 with x=0 (cost 2.0) vs x=1,y=1 (cost 6)
        assert sol.objective == pytest.approx(2.0)

    def test_warm_start_prunes_and_is_respected(self):
        m, xs = _knapsack_model([10, 13, 7], [3, 4, 2], 5)
        warm = {xs[0]: 1.0, xs[1]: 0.0, xs[2]: 1.0}
        sol = BranchAndBoundSolver().solve(m, warm_start=warm)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(-17)

    def test_infeasible_warm_start_ignored(self):
        m, xs = _knapsack_model([10, 13, 7], [3, 4, 2], 5)
        warm = {xs[0]: 1.0, xs[1]: 1.0, xs[2]: 1.0}  # violates capacity
        sol = BranchAndBoundSolver().solve(m, warm_start=warm)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(-17)

    def test_node_limit_returns_incumbent_or_error(self):
        m, xs = _knapsack_model(list(range(1, 9)), [2] * 8, 7)
        sol = BranchAndBoundSolver(node_limit=1).solve(m)
        assert sol.status in (SolveStatus.FEASIBLE, SolveStatus.ERROR, SolveStatus.OPTIMAL)


class TestFacade:
    def test_auto_uses_own_for_small(self):
        m, _ = _knapsack_model([1, 2, 3], [1, 1, 1], 2)
        sol = solve_model(m, method="auto")
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(-5)

    def test_explicit_scipy(self):
        m, _ = _knapsack_model([1, 2, 3], [1, 1, 1], 2)
        sol = solve_model(m, method=SolverMethod.SCIPY)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(-5)


@st.composite
def random_binary_ilp(draw):
    """Random bounded 0/1 ILP where x = 0 is feasible (b >= 0)."""
    n = draw(st.integers(2, 7))
    m_rows = draw(st.integers(1, 5))
    c = draw(st.lists(st.integers(-8, 8), min_size=n, max_size=n))
    rows = [
        draw(st.lists(st.integers(-4, 4), min_size=n, max_size=n))
        for _ in range(m_rows)
    ]
    b = draw(st.lists(st.integers(0, 10), min_size=m_rows, max_size=m_rows))
    return c, rows, b


class TestAgainstScipyMilp:
    @settings(max_examples=40, deadline=None)
    @given(random_binary_ilp())
    def test_optimum_matches_scipy(self, ilp):
        c, rows, b = ilp
        m = Model("rand")
        xs = [m.add_var(f"x{i}") for i in range(len(c))]
        for row, rhs in zip(rows, b):
            m.add_le(LinExpr.sum(a * x for a, x in zip(row, xs)), rhs)
        m.set_objective(LinExpr.sum(ci * x for ci, x in zip(c, xs)))

        ours = BranchAndBoundSolver().solve(m)
        ref = ScipyMilpSolver().solve(m)
        assert ours.status is SolveStatus.OPTIMAL
        assert ref.status is SolveStatus.OPTIMAL
        assert ours.objective == pytest.approx(ref.objective, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(random_binary_ilp())
    def test_solution_satisfies_model(self, ilp):
        c, rows, b = ilp
        m = Model("rand")
        xs = [m.add_var(f"x{i}") for i in range(len(c))]
        for row, rhs in zip(rows, b):
            m.add_le(LinExpr.sum(a * x for a, x in zip(row, xs)), rhs)
        m.set_objective(LinExpr.sum(ci * x for ci, x in zip(c, xs)))
        sol = BranchAndBoundSolver().solve(m)
        assert m.is_feasible(sol.values)
