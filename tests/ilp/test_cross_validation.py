"""Cross-validation of the ILP solver stack on random 0/1 models.

Random small binary programs (feasible by construction) are solved by

* the in-house branch-and-bound (exact),
* the ``scipy.optimize.milp`` / HiGHS backend (exact; skipped if scipy is
  unavailable),
* the dense two-phase simplex on the LP relaxation (a lower bound for
  minimization), and
* — for randomly generated grouped selection problems, the structure the
  MQO ILP actually has — the greedy heuristic, which must be feasible but
  never better than the proven optimum.
"""

import random

import pytest

from repro.ilp.bnb import BranchAndBoundSolver
from repro.ilp.greedy import GroupedCandidate, GroupedProblem, solve_greedy
from repro.ilp.model import Model, Sense, SolveStatus, VarType
from repro.ilp.simplex import solve_lp

try:  # scipy is normally a hard dependency, but keep CI portable
    from repro.ilp.scipy_backend import ScipyMilpSolver

    HAVE_SCIPY = True
except Exception:  # pragma: no cover - exercised only without scipy
    HAVE_SCIPY = False

TOL = 1e-6


def random_binary_model(seed: int) -> Model:
    """A feasible random 0/1 model: constraints are anchored to a random
    feasible point so every instance has at least one solution."""
    rng = random.Random(seed)
    model = Model(name=f"rand{seed}")
    n = rng.randint(3, 8)
    variables = [model.add_var(f"x{i}", VarType.BINARY) for i in range(n)]
    feasible_point = {v: float(rng.randint(0, 1)) for v in variables}

    objective = sum(
        (rng.uniform(-10.0, 10.0) * v for v in variables),
        start=0.0 * variables[0],
    )
    model.set_objective(objective)

    for _ in range(rng.randint(1, 6)):
        support = rng.sample(variables, rng.randint(1, n))
        expr = sum(
            (rng.uniform(-5.0, 5.0) * v for v in support),
            start=0.0 * support[0],
        )
        anchor = expr.value(feasible_point)
        sense = rng.choice([Sense.LE, Sense.GE, Sense.EQ])
        if sense is Sense.LE:
            model.add_le(expr, anchor + rng.uniform(0.0, 3.0))
        elif sense is Sense.GE:
            model.add_ge(expr, anchor - rng.uniform(0.0, 3.0))
        else:
            model.add_eq(expr, anchor)
    return model


class TestRandomBinaryModels:
    @pytest.mark.parametrize("seed", range(25))
    def test_bnb_matches_scipy_optimum(self, seed):
        if not HAVE_SCIPY:
            pytest.skip("scipy unavailable")
        model = random_binary_model(seed)
        own = BranchAndBoundSolver().solve(model)
        ref = ScipyMilpSolver().solve(model)
        assert own.status is SolveStatus.OPTIMAL
        assert ref.status is SolveStatus.OPTIMAL
        assert own.objective == pytest.approx(ref.objective, abs=1e-5)
        assert model.is_feasible(own.values)
        assert model.is_feasible(ref.values)

    @pytest.mark.parametrize("seed", range(25))
    def test_simplex_relaxation_lower_bounds_optimum(self, seed):
        model = random_binary_model(seed)
        own = BranchAndBoundSolver().solve(model)
        c, a_ub, b_ub, a_eq, b_eq, lb, ub = model.to_matrices()
        relaxed = solve_lp(c, a_ub, b_ub, a_eq, b_eq, lb, ub)
        assert relaxed.status == "optimal"
        assert (
            relaxed.objective + model.objective_constant
            <= own.objective + TOL
        )


# ----------------------------------------------------------------------
# grouped selection problems: greedy vs. exact solvers
# ----------------------------------------------------------------------
def random_grouped_problem(seed: int) -> GroupedProblem:
    rng = random.Random(seed)
    num_steps = rng.randint(4, 10)
    step_costs = {f"s{i}": rng.uniform(0.5, 10.0) for i in range(num_steps)}
    step_names = list(step_costs)

    groups = {}
    candidates = {}
    num_groups = rng.randint(2, 4)
    for g in range(num_groups):
        group_key = f"g{g}"
        names = []
        for c in range(rng.randint(1, 3)):
            name = f"g{g}c{c}"
            steps = tuple(
                rng.sample(step_names, rng.randint(1, min(3, num_steps)))
            )
            # occasional activation edges to *later* groups (acyclic, as in
            # the MQO ILP where probing a MIR activates its maintenance)
            activates = ()
            if g + 1 < num_groups and rng.random() < 0.3:
                activates = (f"g{g + 1}",)
            candidates[name] = GroupedCandidate(
                name=name, group=group_key, steps=steps, activates=activates
            )
            names.append(name)
        groups[group_key] = names
    mandatory = tuple(f"g{g}" for g in range(rng.randint(1, num_groups)))
    problem = GroupedProblem(
        step_costs=step_costs,
        candidates=candidates,
        groups=groups,
        mandatory=mandatory,
    )
    problem.validate()
    return problem


def grouped_to_model(problem: GroupedProblem) -> Model:
    """Exact 0/1 formulation of a grouped selection problem.

    ``x`` selects candidates, ``y`` pays steps; activation makes a group
    mandatory whenever any activating candidate is chosen.
    """
    model = Model(name="grouped")
    x = {name: model.add_var(f"x_{name}") for name in problem.candidates}
    y = {step: model.add_var(f"y_{step}") for step in problem.step_costs}

    for name, cand in problem.candidates.items():
        for step in cand.steps:
            model.add_le(x[name] - y[step], 0.0)

    for group in problem.mandatory:
        members = [x[name] for name in problem.groups[group]]
        model.add_ge(sum(members, start=0.0 * members[0]), 1.0)

    for name, cand in problem.candidates.items():
        for activated in cand.activates:
            members = [x[m] for m in problem.groups[activated]]
            model.add_ge(
                sum(members, start=0.0 * members[0]) - x[name], 0.0
            )

    model.set_objective(
        sum(
            (cost * y[step] for step, cost in problem.step_costs.items()),
            start=0.0 * next(iter(y.values())),
        )
    )
    return model


class TestGroupedProblems:
    @pytest.mark.parametrize("seed", range(20))
    def test_greedy_never_better_than_bnb_optimum(self, seed):
        problem = random_grouped_problem(seed)
        greedy = solve_greedy(problem)
        assert greedy is not None, "every generated instance is satisfiable"

        model = grouped_to_model(problem)
        exact = BranchAndBoundSolver().solve(model)
        assert exact.status is SolveStatus.OPTIMAL
        assert greedy.objective >= exact.objective - TOL

    @pytest.mark.parametrize("seed", range(20))
    def test_bnb_matches_scipy_on_grouped(self, seed):
        if not HAVE_SCIPY:
            pytest.skip("scipy unavailable")
        model = grouped_to_model(random_grouped_problem(seed))
        own = BranchAndBoundSolver().solve(model)
        ref = ScipyMilpSolver().solve(model)
        assert own.objective == pytest.approx(ref.objective, abs=1e-5)
