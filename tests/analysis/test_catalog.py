"""Catalog sync checks: registry ↔ fixtures ↔ docs stay in agreement,
and the analyzer passes on the repo's own live tree."""

from pathlib import Path

from repro.analysis import all_rules, analyze, rule_catalog

from conftest import FIXTURES
from test_rules import CASES

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_catalog_ids_unique_and_sorted():
    catalog = rule_catalog()
    file_rules, program_rules = all_rules()
    registered = [r.rule_id for r in (*file_rules, *program_rules)]
    assert len(registered) == len(set(registered))
    assert set(registered) | {"SUP001", "ERR001"} == set(catalog)
    assert list(catalog) == sorted(catalog)


def test_every_rule_has_a_fixture_case():
    covered = {rule for case in CASES for rule in case.rules}
    assert covered == set(rule_catalog()), (
        "every catalog rule needs a fire/clean fixture case in "
        "tests/analysis/test_rules.py (and vice versa)"
    )


def test_every_case_fixture_exists():
    for case in CASES:
        assert (FIXTURES / case.fire).is_file(), case.fire
        assert (FIXTURES / case.clean).is_file(), case.clean


def test_every_rule_documented_in_analysis_md():
    doc = (REPO_ROOT / "docs" / "analysis.md").read_text(encoding="utf-8")
    missing = [rule for rule in rule_catalog() if rule not in doc]
    assert not missing, f"docs/analysis.md does not mention: {missing}"


def test_catalog_entries_have_title_and_rationale():
    for rule, (title, rationale) in rule_catalog().items():
        assert title.strip(), rule
        assert rationale.strip(), rule


def test_live_tree_is_clean():
    """The merged tree must satisfy its own analyzer (CI's exact check)."""
    report = analyze([REPO_ROOT / "src"], root=REPO_ROOT)
    assert report.ok, "\n" + report.render()
    assert report.files_scanned > 50
    # every live suppression carries a justification by construction
    # (SUP001 would have fired otherwise); just confirm they surface
    for finding in report.suppressed:
        assert finding.rule in rule_catalog()
