"""SHARD001 non-firing fixture: only picklable data crosses the pipe."""


def ship(conn: object) -> None:
    conn.send(("work", 41))  # type: ignore[attr-defined]
