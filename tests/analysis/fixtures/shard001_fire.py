"""SHARD001 firing fixture: a closure shipped through a transport call."""


def ship(conn: object) -> None:
    conn.send(("work", lambda x: x + 1))  # type: ignore[attr-defined]
