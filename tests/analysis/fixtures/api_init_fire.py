"""API001 + API002 firing fixture, planted at ``src/repro/__init__.py``.

``undocumented`` is exported but missing from docs/api.md (API001);
``dangling`` is exported but bound nowhere in the module (API002).
"""

documented = 1
undocumented = 2

__all__ = ["documented", "undocumented", "dangling"]
