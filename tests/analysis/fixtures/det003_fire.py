"""DET003 firing fixture: set iteration feeding an ordered sink."""

from typing import List, Set


def collect(items: Set[str]) -> List[str]:
    out: List[str] = []
    for item in items:
        out.append(item)
    return out
