"""MET002 firing fixture: an EngineMetrics field absent from the docs.

Planted at ``src/repro/engine/metrics.py`` in a synthetic tree whose
``docs/engine.md`` does not mention ``mystery_counter``.
"""

from dataclasses import dataclass


@dataclass
class EngineMetrics:
    inputs_ingested: int = 0
    mystery_counter: int = 0
