"""DET003 non-firing fixture: sorted() pins the iteration order."""

from typing import List, Set


def collect(items: Set[str]) -> List[str]:
    out: List[str] = []
    for item in sorted(items):
        out.append(item)
    return out
