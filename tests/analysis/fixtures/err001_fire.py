"""ERR001 firing fixture: the file does not parse."""

def broken(:
    pass
