"""MET001 firing fixture: counter write outside src/repro/engine/."""


def ingest(metrics: object) -> None:
    metrics.inputs_ingested += 1  # type: ignore[attr-defined]
