"""SUP001 firing fixture: suppressions without justification."""

import time


def deadline() -> float:
    return time.time() + 5.0  # repro: allow[DET001]
