"""SHARD002 non-firing fixture: state lives on an instance."""


class Counter:
    def __init__(self) -> None:
        self.value = 0

    def bump(self) -> int:
        self.value += 1
        return self.value
