"""MET002 non-firing fixture: every field is documented (underscore
fields are exempt)."""

from dataclasses import dataclass


@dataclass
class EngineMetrics:
    inputs_ingested: int = 0
    _scratch: int = 0
