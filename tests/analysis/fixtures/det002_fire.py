"""DET002 firing fixture: module-level RNG and seedless constructors."""

import random

from numpy.random import default_rng


def draw() -> int:
    rng = default_rng()
    return random.randrange(10) + int(rng.integers(10))
