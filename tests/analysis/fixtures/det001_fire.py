"""DET001 firing fixture: wall-clock read in a deterministic-core file."""

import time


def deadline() -> float:
    return time.time() + 5.0
