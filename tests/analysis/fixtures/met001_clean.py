"""MET001 non-firing fixture: mutation goes through the on_* method."""


def ingest(metrics: object) -> None:
    metrics.on_input()  # type: ignore[attr-defined]
