"""DET001 non-firing fixture: perf_counter durations are allowed."""

import time


def elapsed(start: float) -> float:
    return time.perf_counter() - start
