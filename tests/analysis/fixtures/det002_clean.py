"""DET002 non-firing fixture: every RNG takes an explicit seed."""

import random

from numpy.random import default_rng


def draw(seed: int) -> int:
    rng = random.Random(seed)
    np_rng = default_rng(seed)
    return rng.randrange(10) + int(np_rng.integers(10))
