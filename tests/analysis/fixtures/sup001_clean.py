"""SUP001 non-firing fixture: a justified suppression (also silences
the DET001 finding on the same line)."""

import time


def deadline() -> float:
    return time.time() + 5.0  # repro: allow[DET001] fixture: bounded retry loop, never feeds results
