"""SHARD002 firing fixture: per-process global mutation."""

_COUNTER = 0


def bump() -> int:
    global _COUNTER
    _COUNTER += 1
    return _COUNTER
