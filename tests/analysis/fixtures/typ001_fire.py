"""TYP001 firing fixture: incomplete signatures in a ratcheted module."""


def untyped(value):
    return value
