"""TYP002 non-firing fixture: generics fully parameterized."""

from typing import List, Sequence


def heads(rows: Sequence[Sequence[int]]) -> List[int]:
    return [row[0] for row in rows]
