"""TYP001 non-firing fixture: complete signatures (self is exempt)."""


class Box:
    def __init__(self, value: int) -> None:
        self.value = value

    def get(self) -> int:
        return self.value
