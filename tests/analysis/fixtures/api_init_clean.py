"""API001/API002 non-firing fixture: exports documented and bound."""

documented = 1

__all__ = ["documented"]
