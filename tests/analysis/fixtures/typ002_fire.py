"""TYP002 firing fixture: bare generics in a ratcheted module."""

from typing import List


def heads(rows: List) -> list:
    return [row[0] for row in rows]
