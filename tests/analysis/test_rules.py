"""Golden-fixture tests: every rule has a firing and a non-firing case.

``CASES`` is the single source of truth mapping rules to their fixture
files and to the scoped destination each fixture is planted at;
``test_catalog.py`` cross-checks it against the registered rule catalog.
"""

from dataclasses import dataclass, field
from typing import Dict, Tuple

import pytest

from repro.analysis import analyze

from conftest import MYPY_INI, build_tree, fixture_text

#: docs planted alongside MET002/API001 trees
_ENGINE_DOC_BASE = "# Engine\n\nCounts `inputs_ingested` tuples.\n"
_API_DOC_BASE = "# API\n\nExports `documented`.\n"


@dataclass(frozen=True)
class Case:
    """One rule's fixture pair and where the fixtures get planted."""

    rules: Tuple[str, ...]
    fire: str
    clean: str
    dest: str
    extra: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)


CASES = [
    Case(("DET001",), "det001_fire.py", "det001_clean.py",
         "src/repro/engine/fx_clock.py"),
    Case(("DET002",), "det002_fire.py", "det002_clean.py",
         "src/repro/engine/fx_rng.py"),
    Case(("DET003",), "det003_fire.py", "det003_clean.py",
         "src/repro/engine/fx_order.py"),
    Case(("SHARD001",), "shard001_fire.py", "shard001_clean.py",
         "src/repro/engine/fx_ship.py"),
    Case(("SHARD002",), "shard002_fire.py", "shard002_clean.py",
         "src/repro/engine/fx_state.py"),
    Case(
        ("MET001",), "met001_fire.py", "met001_clean.py",
        "src/repro/fx_outside.py",
        extra=(
            ("src/repro/engine/metrics.py",
             fixture_text("met002_metrics_clean.py")),
            ("docs/engine.md", _ENGINE_DOC_BASE),
        ),
    ),
    Case(
        ("MET002",), "met002_metrics_fire.py", "met002_metrics_clean.py",
        "src/repro/engine/metrics.py",
        extra=(("docs/engine.md", _ENGINE_DOC_BASE),),
    ),
    Case(
        ("API001", "API002"), "api_init_fire.py", "api_init_clean.py",
        "src/repro/__init__.py",
        extra=(("docs/api.md", _API_DOC_BASE),),
    ),
    Case(
        ("TYP001",), "typ001_fire.py", "typ001_clean.py",
        "src/repro/engine/fx_typed.py",
        extra=(("mypy.ini", MYPY_INI),),
    ),
    Case(
        ("TYP002",), "typ002_fire.py", "typ002_clean.py",
        "src/repro/engine/fx_generics.py",
        extra=(("mypy.ini", MYPY_INI),),
    ),
    Case(("SUP001",), "sup001_fire.py", "sup001_clean.py",
         "src/repro/engine/fx_suppressed.py"),
    Case(("ERR001",), "err001_fire.py", "det001_clean.py",
         "src/repro/engine/fx_parse.py"),
]


def _run(tmp_path, case: Case, fixture_name: str) -> Dict[str, int]:
    build_tree(tmp_path, {case.dest: fixture_text(fixture_name), **dict(case.extra)})
    report = analyze([tmp_path / "src"], root=tmp_path)
    return report.counts_by_rule()


@pytest.mark.parametrize("case", CASES, ids=lambda c: "+".join(c.rules))
class TestGoldenFixtures:
    def test_firing_fixture_fires(self, tmp_path, case):
        counts = _run(tmp_path, case, case.fire)
        for rule in case.rules:
            assert counts.get(rule), (
                f"{case.fire} planted at {case.dest} should trigger {rule}; "
                f"got {counts}"
            )

    def test_clean_fixture_is_silent(self, tmp_path, case):
        counts = _run(tmp_path, case, case.clean)
        for rule in case.rules:
            assert not counts.get(rule), (
                f"{case.clean} planted at {case.dest} should not trigger "
                f"{rule}; got {counts}"
            )


class TestFindingShape:
    def test_findings_carry_rule_and_location(self, tmp_path):
        case = CASES[0]
        build_tree(tmp_path, {case.dest: fixture_text(case.fire)})
        report = analyze([tmp_path / "src"], root=tmp_path)
        finding = next(f for f in report.findings if f.rule == "DET001")
        assert finding.path == case.dest
        assert finding.line > 0
        rendered = finding.render()
        assert f"{case.dest}:{finding.line}:" in rendered
        assert "DET001" in rendered


class TestSuppressions:
    def test_justified_suppression_moves_finding(self, tmp_path):
        dest = "src/repro/engine/fx_suppressed.py"
        build_tree(tmp_path, {dest: fixture_text("sup001_clean.py")})
        report = analyze([tmp_path / "src"], root=tmp_path)
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["DET001"]

    def test_unjustified_suppression_is_sup001_and_does_not_silence(
        self, tmp_path
    ):
        dest = "src/repro/engine/fx_suppressed.py"
        build_tree(tmp_path, {dest: fixture_text("sup001_fire.py")})
        report = analyze([tmp_path / "src"], root=tmp_path)
        rules = sorted(f.rule for f in report.findings)
        # the DET001 finding survives AND the bad comment is flagged
        assert rules == ["DET001", "SUP001"]
        assert not report.suppressed

    def test_marker_in_docstring_is_prose(self, tmp_path):
        dest = "src/repro/engine/fx_doc.py"
        source = (
            '"""Mentions # repro: allow[DET001] as prose only."""\n'
            "\n"
            "VALUE = 1\n"
        )
        build_tree(tmp_path, {dest: source})
        report = analyze([tmp_path / "src"], root=tmp_path)
        assert report.ok, report.render()


class TestRuleSelection:
    def test_rules_filter_runs_only_named_rules(self, tmp_path):
        build_tree(
            tmp_path,
            {
                "src/repro/engine/fx_clock.py": fixture_text("det001_fire.py"),
                "src/repro/engine/fx_rng.py": fixture_text("det002_fire.py"),
            },
        )
        report = analyze(
            [tmp_path / "src"], root=tmp_path, rule_ids=["DET002"]
        )
        assert set(report.counts_by_rule()) == {"DET002"}

    def test_unknown_rule_id_rejected(self, tmp_path):
        build_tree(tmp_path, {"src/repro/engine/fx.py": "VALUE = 1\n"})
        with pytest.raises(ValueError, match="NOPE999"):
            analyze([tmp_path / "src"], root=tmp_path, rule_ids=["NOPE999"])
