"""Shared helpers for the analyzer's golden-fixture suite.

Fixtures under ``fixtures/`` are real, syntax-highlighted source files;
each test plants them at the *scoped* location a rule watches (e.g.
``src/repro/engine/``) inside a synthetic project tree, then runs
:func:`repro.analysis.analyze` rooted at that tree.
"""

from pathlib import Path
from typing import Mapping

FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: minimal ratchet config activating the TYP rules for repro.engine.*
MYPY_INI = """\
[mypy]
python_version = 3.10

[mypy-repro.engine.*]
disallow_untyped_defs = True
"""


def fixture_text(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


def build_tree(root: Path, files: Mapping[str, str]) -> None:
    """Materialize ``{relative path: content}`` under ``root``."""
    for rel, content in files.items():
        dest = root / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(content, encoding="utf-8")
