"""CLI contract: exit codes, human rendering, and the ``--json`` schema."""

import json

import pytest

from repro.analysis.__main__ import main

from conftest import build_tree, fixture_text


@pytest.fixture()
def dirty_tree(tmp_path):
    build_tree(
        tmp_path,
        {"src/repro/engine/fx_clock.py": fixture_text("det001_fire.py")},
    )
    return tmp_path


@pytest.fixture()
def clean_tree(tmp_path):
    build_tree(
        tmp_path,
        {"src/repro/engine/fx_clock.py": fixture_text("det001_clean.py")},
    )
    return tmp_path


def test_findings_exit_1_with_rule_and_location(dirty_tree, capsys):
    code = main([str(dirty_tree / "src"), "--root", str(dirty_tree)])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET001" in out
    assert "src/repro/engine/fx_clock.py:" in out
    assert "finding(s)" in out


def test_clean_tree_exits_0(clean_tree, capsys):
    code = main([str(clean_tree / "src"), "--root", str(clean_tree)])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s)" in out


def test_json_schema(dirty_tree, capsys):
    code = main(
        [str(dirty_tree / "src"), "--root", str(dirty_tree), "--json"]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {
        "schema_version",
        "ok",
        "files_scanned",
        "counts",
        "findings",
        "suppressed",
    }
    assert payload["schema_version"] == 1
    assert payload["ok"] is False
    assert payload["counts"].get("DET001") == 1
    finding = payload["findings"][0]
    assert set(finding) == {"rule", "path", "line", "col", "message"}
    assert finding["path"] == "src/repro/engine/fx_clock.py"


def test_rules_filter(dirty_tree, capsys):
    code = main(
        [
            str(dirty_tree / "src"),
            "--root",
            str(dirty_tree),
            "--rules",
            "DET002",
        ]
    )
    capsys.readouterr()
    assert code == 0  # DET001 site ignored when only DET002 runs


def test_unknown_rule_is_usage_error(dirty_tree, capsys):
    code = main(
        [
            str(dirty_tree / "src"),
            "--root",
            str(dirty_tree),
            "--rules",
            "NOPE999",
        ]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "NOPE999" in err


def test_missing_path_is_usage_error(tmp_path, capsys):
    code = main([str(tmp_path / "does-not-exist"), "--root", str(tmp_path)])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_list_rules(capsys):
    code = main(["--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule in ("DET001", "SHARD001", "MET001", "API001", "TYP001", "SUP001"):
        assert rule in out
