"""Tests for binary join pipelines and the FI/SI/FS/SS/CMQO strategies."""

import pytest

from repro.baselines.binary_plan import binary_plan, greedy_join_order
from repro.baselines.strategies import (
    STRATEGIES,
    build_strategy,
    combine_topologies,
)
from repro.core import (
    ClusterConfig,
    JoinPredicate,
    OptimizerConfig,
    Query,
    StatisticsCatalog,
    build_topology,
)
from repro.engine import (
    RuntimeConfig,
    TopologyRuntime,
    reference_join,
    result_keys,
)
from tests.engine.test_runtime import make_streams


@pytest.fixture()
def catalog():
    cat = StatisticsCatalog(default_selectivity=0.01, default_window=8.0)
    for rel in "RSTU":
        cat.with_rate(rel, 10.0)
    return cat


@pytest.fixture()
def queries():
    return [
        Query.of("q1", "R.a=S.a", "S.b=T.b"),
        Query.of("q2", "S.b=T.b", "T.c=U.c"),
    ]


class TestGreedyJoinOrder:
    def test_order_is_permutation(self, catalog):
        q = Query.of("q", "R.a=S.a", "S.b=T.b", "T.c=U.c")
        order = greedy_join_order(q, catalog)
        assert sorted(order) == list(q.relations)

    def test_order_prefixes_connected(self, catalog):
        q = Query.of("q", "R.a=S.a", "S.b=T.b", "T.c=U.c")
        order = greedy_join_order(q, catalog)
        for k in range(2, len(order) + 1):
            assert q.is_subquery_connected(order[:k])

    def test_cheapest_pair_first(self, catalog):
        q = Query.of("q", "R.a=S.a", "S.b=T.b")
        catalog.with_selectivity(JoinPredicate.of("S.b", "T.b"), 0.001)
        order = greedy_join_order(q, catalog)
        assert set(order[:2]) == {"S", "T"}


class TestBinaryPlan:
    def test_plan_covers_all_starts(self, catalog):
        q = Query.of("q", "R.a=S.a", "S.b=T.b", "T.c=U.c")
        plan = binary_plan(q, catalog, ClusterConfig(default_parallelism=2))
        user_groups = [g for g in plan.chosen if g.startswith("q:")]
        assert len(user_groups) == 4

    def test_prefix_stores_materialized(self, catalog):
        q = Query.of("q", "R.a=S.a", "S.b=T.b", "T.c=U.c")
        plan = binary_plan(q, catalog, ClusterConfig(default_parallelism=2))
        mir_sizes = sorted(m.size for m in plan.mir_stores)
        assert mir_sizes == [2, 3]  # every strict prefix of the pipeline

    def test_maintenance_for_every_prefix_input(self, catalog):
        q = Query.of("q", "R.a=S.a", "S.b=T.b", "T.c=U.c")
        plan = binary_plan(q, catalog, ClusterConfig(default_parallelism=2))
        for mir in plan.mir_stores:
            starts = {
                info.decorated.order.start_relation
                for info in plan.maintenance_orders()
                if info.decorated.target == mir
            }
            assert starts == set(mir.relations)

    def test_binary_plan_executes_exactly(self, catalog):
        """The pipeline topology must produce the exact windowed join."""
        q = Query.of("q", "R.a=S.a", "S.b=T.b")
        cluster = ClusterConfig(default_parallelism=2)
        plan = binary_plan(q, catalog, cluster)
        topo = build_topology(plan, catalog, cluster)
        streams, inputs = make_streams(11, 250, rels="RST")
        windows = {r: 8.0 for r in "RST"}
        rt = TopologyRuntime(topo, windows, RuntimeConfig(mode="logical"))
        rt.run(inputs)
        assert result_keys(rt.results("q")) == result_keys(
            reference_join(q, streams, windows)
        )

    def test_four_way_binary_plan_executes_exactly(self, catalog):
        q = Query.of("q", "R.a=S.a", "S.b=T.b", "T.c=U.c")
        cluster = ClusterConfig(default_parallelism=2)
        plan = binary_plan(q, catalog, cluster)
        topo = build_topology(plan, catalog, cluster)
        streams, inputs = make_streams(12, 250)
        windows = {r: 8.0 for r in "RSTU"}
        rt = TopologyRuntime(topo, windows, RuntimeConfig(mode="logical"))
        rt.run(inputs)
        assert result_keys(rt.results("q")) == result_keys(
            reference_join(q, streams, windows)
        )


class TestStrategies:
    def test_unknown_strategy_rejected(self, queries, catalog):
        with pytest.raises(ValueError):
            build_strategy("BOGUS", queries, catalog)

    def test_profiles_assigned(self, queries, catalog):
        names = {
            s: build_strategy(s, queries, catalog, solver="own").profile.name
            for s in STRATEGIES
        }
        assert names["FI"] == "flink" and names["FS"] == "flink"
        assert names["SI"] == "storm" and names["SS"] == "storm"
        assert names["CMQO"] == "clash"

    def test_independent_duplicates_stores(self, queries, catalog):
        fi = build_strategy("FI", queries, catalog, solver="own")
        fs = build_strategy("FS", queries, catalog, solver="own")
        assert fi.num_stores > fs.num_stores

    def test_cmqo_probe_cost_not_worse_than_shared(self, queries, catalog):
        cluster = ClusterConfig(default_parallelism=1)
        ss = build_strategy("SS", queries, catalog, cluster, solver="own")
        cfg = OptimizerConfig(
            cluster=cluster, strict_partitioning=False
        )
        cmqo = build_strategy(
            "CMQO", queries, catalog, cluster, optimizer_config=cfg, solver="own"
        )
        assert cmqo.probe_cost <= ss.probe_cost + 1e-9

    def test_every_strategy_is_exact(self, queries, catalog):
        """All five strategies compute identical (correct) result sets."""
        streams, inputs = make_streams(13, 250)
        windows = {r: 8.0 for r in "RSTU"}
        expected = {
            q.name: result_keys(reference_join(q, streams, windows))
            for q in queries
        }
        for strategy in STRATEGIES:
            compiled = build_strategy(
                strategy,
                queries,
                catalog,
                ClusterConfig(default_parallelism=2),
                solver="own",
            )
            rt = TopologyRuntime(
                compiled.topology, windows, RuntimeConfig(mode="logical")
            )
            rt.run(inputs)
            for q in queries:
                assert result_keys(rt.results(q.name)) == expected[q.name], (
                    f"strategy {strategy} wrong for {q.name}"
                )


class TestCombineTopologies:
    def test_disjoint_union_namespaces(self, queries, catalog):
        cluster = ClusterConfig(default_parallelism=2)
        plans = [binary_plan(q, catalog, cluster) for q in queries]
        topos = [build_topology(p, catalog, cluster) for p in plans]
        combined = combine_topologies(topos, prefixes=["q1", "q2"])
        assert len(combined.stores) == sum(len(t.stores) for t in topos)
        assert len(combined.edges) == sum(len(t.edges) for t in topos)
        # ingest keyed by raw relation names, fanning out to both queries
        assert any(label.startswith("q1::") for label in combined.ingest["S"])
        assert any(label.startswith("q2::") for label in combined.ingest["S"])
