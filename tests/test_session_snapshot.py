"""Crash-recovery differential tests for session checkpoint/restore.

The contract under test (docs/service.md): checkpoint a session
mid-stream, throw the process away, restore from the file, finish the
feed — the results, their order, the verification oracle, and the
headline metrics must be *exactly* those of an uninterrupted run, across
both store backends and ``workers`` 1/2.  Plus the close/context-manager
unification and the snapshot file format's error surface.
"""

import pickle

import pytest

from repro import JoinSession, RuntimeConfig, TopologyRuntime
from repro.service.snapshot import (
    SNAPSHOT_MAGIC,
    SnapshotError,
    read_snapshot,
    write_snapshot,
)

#: every additive counter that must match the uninterrupted run exactly
#: (``restored_tuples`` is deliberately excluded: it is the one counter
#: that *proves* a restore happened)
PARITY_COUNTERS = [
    "inputs_ingested",
    "messages_sent",
    "tuples_sent",
    "probes_executed",
    "comparisons",
    "results_emitted",
    "stored_units",
    "peak_stored_units",
    "migrated_tuples",
    "rewires",
    "preserved_tuples",
    "backfilled_tuples",
    "late_dropped",
    "dead_lettered",
    "late_admitted",
]


def feed(session, lo, hi):
    for i in range(lo, hi):
        session.push("R", {"a": i % 5}, ts=i * 0.1)
        session.push("S", {"a": i % 5, "b": i % 3}, ts=i * 0.1 + 0.01)
        session.push("T", {"b": i % 3}, ts=i * 0.1 + 0.02)


def assert_parity(restored, baseline):
    assert restored.pushed == baseline.pushed
    for name in sorted(baseline.queries):
        got = [r.key() for r in restored.results(name)]
        want = [r.key() for r in baseline.results(name)]
        assert got == want, f"results (or their order) diverged for {name}"
    a, b = restored.metrics, baseline.metrics
    assert a.summary() == b.summary()
    for counter in PARITY_COUNTERS:
        assert getattr(a, counter) == getattr(b, counter), counter
    assert a.results_per_query == b.results_per_query
    assert a.restored_tuples > 0
    assert restored.verify().ok


class TestCrashRecoveryDifferential:
    @pytest.mark.parametrize("backend", ["python", "columnar"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_checkpoint_mid_stream_then_restore_finishes_identically(
        self, tmp_path, backend, workers
    ):
        def build():
            kwargs = {"window": 3.0, "store_backend": backend}
            if workers > 1:
                kwargs.update(workers=2, worker_transport="inline")
            return JoinSession(**kwargs).add_query("q1", "R.a=S.a", "S.b=T.b")

        baseline = build()
        feed(baseline, 0, 100)
        baseline.flush()

        interrupted = build()
        feed(interrupted, 0, 50)
        path = tmp_path / "mid.snap"
        interrupted.checkpoint(path)
        interrupted.close()
        del interrupted  # the "crash": only the file survives

        restored = JoinSession.restore(path)
        feed(restored, 50, 100)
        restored.flush()
        assert_parity(restored, baseline)
        restored.close()
        baseline.close()

    def test_restore_preserves_churn_lifecycle_and_drops(self, tmp_path):
        def build():
            return JoinSession(window=4.0).add_query("q1", "R.a=S.a", "S.b=T.b")

        def feed_st(session, lo, hi):
            # after q1's removal only q2 = S⋈T remains; R is unregistered
            for i in range(lo, hi):
                session.push("S", {"a": i % 5, "b": i % 3}, ts=i * 0.1 + 0.01)
                session.push("T", {"b": i % 3}, ts=i * 0.1 + 0.02)

        def churn(session):
            feed(session, 0, 30)
            session.add_query("q2", "S.b=T.b")
            feed(session, 30, 60)
            session.remove_query("q1")
            feed_st(session, 60, 80)

        baseline = build()
        churn(baseline)
        feed_st(baseline, 80, 110)

        interrupted = build()
        churn(interrupted)
        path = tmp_path / "churn.snap"
        interrupted.checkpoint(path)
        restored = JoinSession.restore(path)
        feed_st(restored, 80, 110)
        # q1 was removed pre-checkpoint: its activation interval, results,
        # and released-store drop points must all survive the restore
        assert_parity(restored, baseline)
        record = restored.reoptimize()
        assert record is not None  # the adaptivity loop is live post-restore

    def test_restore_during_warmup_resumes_buffering(self, tmp_path):
        def build():
            return JoinSession(window=5.0, warmup=50).add_query(
                "q1", "R.a=S.a", "S.b=T.b"
            )

        baseline = build()
        feed(baseline, 0, 40)

        interrupted = build()
        feed(interrupted, 0, 10)  # 20 tuples buffered, below warmup=50
        path = tmp_path / "warm.snap"
        interrupted.checkpoint(path)
        restored = JoinSession.restore(path)
        assert restored.metrics is None  # still buffering, no plan yet
        feed(restored, 10, 40)
        assert restored.pushed == baseline.pushed
        assert [r.key() for r in restored.results("q1")] == [
            r.key() for r in baseline.results("q1")
        ]
        assert restored.verify().ok

    def test_restore_resumes_adaptive_epoch_schedule(self, tmp_path):
        def build():
            return JoinSession(
                window=3.0, reoptimize_every=2.0, stats_window=2
            ).add_query("q1", "R.a=S.a", "S.b=T.b")

        baseline = build()
        feed(baseline, 0, 120)
        baseline.flush()

        interrupted = build()
        feed(interrupted, 0, 60)
        path = tmp_path / "epochs.snap"
        interrupted.checkpoint(path)
        restored = JoinSession.restore(path)
        feed(restored, 60, 120)
        restored.flush()
        assert_parity(restored, baseline)
        # identical decision log: same epochs, same objectives
        assert [
            (d.epoch, d.changed) for d in restored.metrics.decisions
        ] == [(d.epoch, d.changed) for d in baseline.metrics.decisions]

    def test_dead_letters_survive_restore(self, tmp_path):
        session = JoinSession(
            window=10.0,
            disorder_bound=0.5,
            allowed_lateness=0.5,
            on_late="dead_letter",
        ).add_query("q1", "R.a=S.a")
        session.push("R", {"a": 1}, ts=1.0)
        session.push("S", {"a": 1}, ts=5.0)
        session.push("S", {"a": 1}, ts=1.0)  # lag 4.0 > 1.0: dead letter
        path = tmp_path / "dead.snap"
        session.checkpoint(path)
        restored = JoinSession.restore(path)
        assert [(t.trigger, t.trigger_ts) for t in restored.dead_letters()] == [
            ("S", 1.0)
        ]
        assert restored.metrics.dead_lettered == 1
        assert restored.verify().ok


class TestSnapshotFileFormat:
    def test_rejects_non_snapshot_files(self, tmp_path):
        path = tmp_path / "garbage.snap"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(SnapshotError, match="cannot read snapshot"):
            read_snapshot(path)
        pickled = tmp_path / "pickled.snap"
        pickled.write_bytes(pickle.dumps({"magic": "something-else"}))
        with pytest.raises(SnapshotError, match="not a join-session snapshot"):
            read_snapshot(pickled)

    def test_rejects_other_payload_versions(self, tmp_path):
        path = tmp_path / "future.snap"
        path.write_bytes(
            pickle.dumps(
                {"magic": SNAPSHOT_MAGIC, "version": 999, "payload": {}}
            )
        )
        with pytest.raises(SnapshotError, match="payload version 999"):
            read_snapshot(path)

    def test_missing_file_raises_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError):
            JoinSession.restore(tmp_path / "nope.snap")

    def test_write_is_atomic_roundtrip(self, tmp_path):
        path = tmp_path / "atomic.snap"
        write_snapshot(path, {"hello": "world"})
        write_snapshot(path, {"hello": "again"})  # overwrite in place
        assert read_snapshot(path) == {"hello": "again"}
        assert [p.name for p in tmp_path.iterdir()] == ["atomic.snap"]


class TestCloseUnification:
    def test_with_joinsession_workers_1(self):
        with JoinSession(window=5.0) as session:
            session.add_query("q1", "R.a=S.a")
            session.push("R", {"a": 1}, ts=0.0)
            session.push("S", {"a": 1}, ts=0.1)
        # closed: results stay readable, close is idempotent
        assert len(session.results("q1")) == 1
        session.close().close()

    def test_with_joinsession_workers_2(self):
        with JoinSession(
            window=5.0, workers=2, worker_transport="inline"
        ) as session:
            session.add_query("q1", "R.a=S.a")
            session.push("R", {"a": 1}, ts=0.0)
            session.push("S", {"a": 1}, ts=0.1)
        assert len(session.results("q1")) == 1
        session.close().close()

    def test_topology_runtime_context_manager(self):
        # the engine-level close contract the session builds on
        scout = JoinSession(window=5.0).add_query("q1", "R.a=S.a")
        scout.start()
        topology = scout.topology
        with TopologyRuntime(
            topology, {"R": 5.0, "S": 5.0}, RuntimeConfig(mode="logical")
        ) as runtime:
            pass
        runtime.close()  # idempotent after __exit__
