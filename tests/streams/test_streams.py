"""Tests for stream generators, TPC-H workload, and the ILP environments."""

import pytest

from repro.core.predicates import JoinPredicate
from repro.streams.generators import (
    StreamSpec,
    bounded_delay_feed,
    generate_streams,
    merge_streams,
    partnered_streams,
    uniform_domain,
    zipf_domain,
)
from repro.streams.tpch import (
    KEY_DOMAINS,
    RATE_WEIGHTS,
    TPCH_RELATIONS,
    five_query_workload,
    ten_query_workload,
    tpch_catalog,
    tpch_specs,
)
from repro.streams.workloads import make_environment, random_queries


class TestGenerators:
    def test_rate_controls_tuple_count(self):
        specs = [StreamSpec("R", 10.0, {"a": uniform_domain(5)})]
        streams, merged = generate_streams(specs, duration=20.0, seed=1)
        assert 150 <= len(streams["R"]) <= 250  # ~200 expected

    def test_merged_feed_is_sorted(self):
        specs = [
            StreamSpec("R", 10.0, {"a": uniform_domain(5)}),
            StreamSpec("S", 5.0, {"a": uniform_domain(5)}),
        ]
        _, merged = generate_streams(specs, duration=10.0, seed=2)
        timestamps = [t.trigger_ts for t in merged]
        assert timestamps == sorted(timestamps)

    def test_deterministic_given_seed(self):
        specs = [StreamSpec("R", 10.0, {"a": uniform_domain(5)})]
        _, a = generate_streams(specs, duration=5.0, seed=3)
        _, b = generate_streams(specs, duration=5.0, seed=3)
        assert [t.key() for t in a] == [t.key() for t in b]

    def test_values_within_domain(self):
        specs = [StreamSpec("R", 20.0, {"a": uniform_domain(4)})]
        streams, _ = generate_streams(specs, duration=10.0, seed=4)
        assert all(0 <= t.get("R.a") < 4 for t in streams["R"])

    def test_merge_streams_unions(self):
        specs = [
            StreamSpec("R", 10.0, {"a": uniform_domain(5)}),
            StreamSpec("S", 10.0, {"a": uniform_domain(5)}),
        ]
        streams, merged = generate_streams(specs, duration=5.0, seed=5)
        assert len(merged) == len(streams["R"]) + len(streams["S"])
        assert merge_streams(streams)[0].trigger_ts == merged[0].trigger_ts

    def test_partnered_streams_shift_changes_domain(self):
        relations = [("S", ["b"]), ("T", ["b"])]
        rates = {"S": 20.0, "T": 20.0}
        streams, _ = partnered_streams(
            relations,
            rates,
            duration=20.0,
            partner_window=5.0,
            seed=6,
            shift_at=10.0,
            shifted_domain_scale=0.02,
            shifted_attrs=["S.b", "T.b"],
        )
        early = {t.get("S.b") for t in streams["S"] if t.trigger_ts < 10.0}
        late = {t.get("S.b") for t in streams["S"] if t.trigger_ts >= 10.0}
        assert len(late) < len(early)


class TestSkewAndDisorder:
    def test_zipf_domain_is_deterministic_and_in_range(self):
        import random as _random

        gen = zipf_domain(16, alpha=1.0)
        a = [gen(_random.Random(1), 0.0) for _ in range(200)]
        b = [gen(_random.Random(1), 0.0) for _ in range(200)]
        assert a == b
        assert all(0 <= v < 16 for v in a)

    def test_zipf_domain_is_skewed(self):
        import random as _random

        gen = zipf_domain(32, alpha=1.2)
        rng = _random.Random(7)
        draws = [gen(rng, 0.0) for _ in range(4000)]
        head = sum(1 for v in draws if v == 0) / len(draws)
        tail = sum(1 for v in draws if v >= 16) / len(draws)
        assert head > 0.15  # heavy hitter dominates...
        assert tail < head  # ...and the tail is thin

    def test_zipf_alpha_zero_is_uniform(self):
        import random as _random

        gen = zipf_domain(8, alpha=0.0)
        rng = _random.Random(3)
        draws = [gen(rng, 0.0) for _ in range(8000)]
        for v in range(8):
            frequency = draws.count(v) / len(draws)
            assert 0.09 < frequency < 0.16

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_domain(0)
        with pytest.raises(ValueError):
            zipf_domain(4, alpha=-1.0)

    def test_bounded_delay_feed_is_permutation_within_bound(self):
        specs = [
            StreamSpec("R", 10.0, {"a": uniform_domain(5)}),
            StreamSpec("S", 8.0, {"a": uniform_domain(5)}),
        ]
        streams, inputs = generate_streams(specs, 10.0, seed=2)
        feed = bounded_delay_feed(streams, 1.5, seed=4)
        assert sorted(id(t) for t in feed) == sorted(id(t) for t in inputs)
        # within every stream the event-time disorder stays <= the bound
        high = {}
        for tup in feed:
            seen = high.get(tup.trigger, float("-inf"))
            assert tup.trigger_ts >= seen - 1.5
            high[tup.trigger] = max(seen, tup.trigger_ts)
        # and some genuine disorder actually occurred
        timestamps = [t.trigger_ts for t in feed]
        assert timestamps != sorted(timestamps)

    def test_bounded_delay_feed_zero_delay_is_sorted(self):
        specs = [StreamSpec("R", 12.0, {"a": uniform_domain(3)})]
        streams, inputs = generate_streams(specs, 5.0, seed=0)
        feed = bounded_delay_feed(streams, 0.0, seed=9)
        assert [t.trigger_ts for t in feed] == [t.trigger_ts for t in inputs]

    def test_bounded_delay_feed_validation_and_determinism(self):
        specs = [StreamSpec("R", 10.0, {"a": uniform_domain(3)})]
        streams, _ = generate_streams(specs, 5.0, seed=1)
        with pytest.raises(ValueError):
            bounded_delay_feed(streams, -1.0)
        a = bounded_delay_feed(streams, 2.0, seed=5)
        b = bounded_delay_feed(streams, 2.0, seed=5)
        assert [t.trigger_ts for t in a] == [t.trigger_ts for t in b]


class TestTpch:
    def test_all_eight_relations_defined(self):
        assert set(TPCH_RELATIONS) == {"R", "N", "S", "C", "P", "PS", "O", "L"}

    def test_rate_ratios_follow_weights(self):
        catalog = tpch_catalog(total_rate=100.0)
        assert catalog.rate("L") > catalog.rate("O") > catalog.rate("S")
        ratio = catalog.rate("L") / catalog.rate("R")
        assert ratio == pytest.approx(RATE_WEIGHTS["L"] / RATE_WEIGHTS["R"])

    def test_five_query_workload_shapes(self):
        queries = five_query_workload()
        assert len(queries) == 5
        assert all(q.size == 4 for q in queries)

    def test_ten_query_workload_extends_five(self):
        ten = ten_query_workload()
        assert len(ten) == 10
        assert [q.name for q in ten[:5]] == [q.name for q in five_query_workload()]

    def test_status_join_is_high_selectivity(self):
        catalog = tpch_catalog()
        status = JoinPredicate.of("L.linestatus", "O.orderstatus")
        pk_fk = JoinPredicate.of("L.orderkey", "O.orderkey")
        assert catalog.selectivity(status) == pytest.approx(1 / 3)
        assert catalog.selectivity(status) > catalog.selectivity(pk_fk)

    def test_partial_overlap_join_is_low_selectivity(self):
        catalog = tpch_catalog()
        overlap = JoinPredicate.of("C.custkey", "N.nationkey")
        assert catalog.selectivity(overlap) == pytest.approx(
            1.0 / KEY_DOMAINS["custkey"]
        )

    def test_specs_cover_all_relations(self):
        specs = tpch_specs(total_rate=80.0)
        assert {s.relation for s in specs} == set(TPCH_RELATIONS)
        assert sum(s.rate for s in specs) == pytest.approx(80.0)


class TestIlpWorkloads:
    def test_environment_relations_and_catalog(self):
        env = make_environment(10, num_attributes=3, rate=100.0)
        assert len(env.relations) == 10
        assert env.catalog.rate("S0") == 100.0
        assert env.catalog.default_selectivity == pytest.approx(0.01)

    def test_random_queries_are_connected_and_sized(self):
        env = make_environment(10)
        queries = random_queries(env, 20, query_size=3, seed=1)
        assert len(queries) == 20
        assert all(q.size == 3 for q in queries)

    def test_redraw_mode_yields_distinct(self):
        env = make_environment(4, num_attributes=1)
        queries = random_queries(env, 10, query_size=3, seed=2)
        signatures = {
            (q.relations, tuple(sorted(str(p) for p in q.predicates)))
            for q in queries
        }
        assert len(signatures) == len(queries)

    def test_drop_mode_can_return_fewer(self):
        env = make_environment(3, num_attributes=1)
        queries = random_queries(
            env, 50, query_size=3, seed=3, duplicates="drop"
        )
        assert len(queries) < 50  # tiny pool saturates quickly

    def test_same_index_matching_restricts_predicates(self):
        env = make_environment(6)
        queries = random_queries(
            env, 10, seed=4, attribute_matching="same_index"
        )
        for q in queries:
            for pred in q.predicates:
                assert pred.left.name == pred.right.name

    def test_invalid_modes_rejected(self):
        env = make_environment(5)
        with pytest.raises(ValueError):
            random_queries(env, 5, attribute_matching="bogus")
        with pytest.raises(ValueError):
            random_queries(env, 5, duplicates="bogus")

    def test_impossible_request_raises(self):
        env = make_environment(2, num_attributes=1)
        with pytest.raises(RuntimeError):
            random_queries(env, 50, query_size=2, seed=5)


class TestShapedWorkloads:
    def test_tree_default_is_acyclic(self):
        env = make_environment(8)
        for q in random_queries(env, 8, query_size=4, seed=11):
            assert len(q.predicates) == 3
            assert not q.is_cyclic

    def test_star_shape_has_a_hub(self):
        env = make_environment(8)
        for q in random_queries(env, 8, query_size=4, seed=12, shape="star"):
            assert not q.is_cyclic
            hubs = [
                rel
                for rel in q.relations
                if all(p.involves(rel) for p in q.predicates)
            ]
            assert hubs, f"star query {q} has no hub"

    def test_cycle_shape_closes_the_ring(self):
        env = make_environment(8)
        for q in random_queries(env, 8, query_size=4, seed=13, shape="cycle"):
            assert q.is_cyclic
            assert len({p.relations for p in q.predicates}) == len(q.relations)

    def test_shape_validation(self):
        env = make_environment(6)
        with pytest.raises(ValueError):
            random_queries(env, 4, shape="mesh")
        with pytest.raises(ValueError):
            random_queries(env, 4, query_size=2, shape="cycle")
