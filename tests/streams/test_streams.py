"""Tests for stream generators, TPC-H workload, and the ILP environments."""

import pytest

from repro.core.predicates import JoinPredicate
from repro.streams.generators import (
    StreamSpec,
    generate_streams,
    merge_streams,
    partnered_streams,
    uniform_domain,
)
from repro.streams.tpch import (
    KEY_DOMAINS,
    RATE_WEIGHTS,
    TPCH_RELATIONS,
    five_query_workload,
    ten_query_workload,
    tpch_catalog,
    tpch_specs,
)
from repro.streams.workloads import make_environment, random_queries


class TestGenerators:
    def test_rate_controls_tuple_count(self):
        specs = [StreamSpec("R", 10.0, {"a": uniform_domain(5)})]
        streams, merged = generate_streams(specs, duration=20.0, seed=1)
        assert 150 <= len(streams["R"]) <= 250  # ~200 expected

    def test_merged_feed_is_sorted(self):
        specs = [
            StreamSpec("R", 10.0, {"a": uniform_domain(5)}),
            StreamSpec("S", 5.0, {"a": uniform_domain(5)}),
        ]
        _, merged = generate_streams(specs, duration=10.0, seed=2)
        timestamps = [t.trigger_ts for t in merged]
        assert timestamps == sorted(timestamps)

    def test_deterministic_given_seed(self):
        specs = [StreamSpec("R", 10.0, {"a": uniform_domain(5)})]
        _, a = generate_streams(specs, duration=5.0, seed=3)
        _, b = generate_streams(specs, duration=5.0, seed=3)
        assert [t.key() for t in a] == [t.key() for t in b]

    def test_values_within_domain(self):
        specs = [StreamSpec("R", 20.0, {"a": uniform_domain(4)})]
        streams, _ = generate_streams(specs, duration=10.0, seed=4)
        assert all(0 <= t.get("R.a") < 4 for t in streams["R"])

    def test_merge_streams_unions(self):
        specs = [
            StreamSpec("R", 10.0, {"a": uniform_domain(5)}),
            StreamSpec("S", 10.0, {"a": uniform_domain(5)}),
        ]
        streams, merged = generate_streams(specs, duration=5.0, seed=5)
        assert len(merged) == len(streams["R"]) + len(streams["S"])
        assert merge_streams(streams)[0].trigger_ts == merged[0].trigger_ts

    def test_partnered_streams_shift_changes_domain(self):
        relations = [("S", ["b"]), ("T", ["b"])]
        rates = {"S": 20.0, "T": 20.0}
        streams, _ = partnered_streams(
            relations,
            rates,
            duration=20.0,
            partner_window=5.0,
            seed=6,
            shift_at=10.0,
            shifted_domain_scale=0.02,
            shifted_attrs=["S.b", "T.b"],
        )
        early = {t.get("S.b") for t in streams["S"] if t.trigger_ts < 10.0}
        late = {t.get("S.b") for t in streams["S"] if t.trigger_ts >= 10.0}
        assert len(late) < len(early)


class TestTpch:
    def test_all_eight_relations_defined(self):
        assert set(TPCH_RELATIONS) == {"R", "N", "S", "C", "P", "PS", "O", "L"}

    def test_rate_ratios_follow_weights(self):
        catalog = tpch_catalog(total_rate=100.0)
        assert catalog.rate("L") > catalog.rate("O") > catalog.rate("S")
        ratio = catalog.rate("L") / catalog.rate("R")
        assert ratio == pytest.approx(RATE_WEIGHTS["L"] / RATE_WEIGHTS["R"])

    def test_five_query_workload_shapes(self):
        queries = five_query_workload()
        assert len(queries) == 5
        assert all(q.size == 4 for q in queries)

    def test_ten_query_workload_extends_five(self):
        ten = ten_query_workload()
        assert len(ten) == 10
        assert [q.name for q in ten[:5]] == [q.name for q in five_query_workload()]

    def test_status_join_is_high_selectivity(self):
        catalog = tpch_catalog()
        status = JoinPredicate.of("L.linestatus", "O.orderstatus")
        pk_fk = JoinPredicate.of("L.orderkey", "O.orderkey")
        assert catalog.selectivity(status) == pytest.approx(1 / 3)
        assert catalog.selectivity(status) > catalog.selectivity(pk_fk)

    def test_partial_overlap_join_is_low_selectivity(self):
        catalog = tpch_catalog()
        overlap = JoinPredicate.of("C.custkey", "N.nationkey")
        assert catalog.selectivity(overlap) == pytest.approx(
            1.0 / KEY_DOMAINS["custkey"]
        )

    def test_specs_cover_all_relations(self):
        specs = tpch_specs(total_rate=80.0)
        assert {s.relation for s in specs} == set(TPCH_RELATIONS)
        assert sum(s.rate for s in specs) == pytest.approx(80.0)


class TestIlpWorkloads:
    def test_environment_relations_and_catalog(self):
        env = make_environment(10, num_attributes=3, rate=100.0)
        assert len(env.relations) == 10
        assert env.catalog.rate("S0") == 100.0
        assert env.catalog.default_selectivity == pytest.approx(0.01)

    def test_random_queries_are_connected_and_sized(self):
        env = make_environment(10)
        queries = random_queries(env, 20, query_size=3, seed=1)
        assert len(queries) == 20
        assert all(q.size == 3 for q in queries)

    def test_redraw_mode_yields_distinct(self):
        env = make_environment(4, num_attributes=1)
        queries = random_queries(env, 10, query_size=3, seed=2)
        signatures = {
            (q.relations, tuple(sorted(str(p) for p in q.predicates)))
            for q in queries
        }
        assert len(signatures) == len(queries)

    def test_drop_mode_can_return_fewer(self):
        env = make_environment(3, num_attributes=1)
        queries = random_queries(
            env, 50, query_size=3, seed=3, duplicates="drop"
        )
        assert len(queries) < 50  # tiny pool saturates quickly

    def test_same_index_matching_restricts_predicates(self):
        env = make_environment(6)
        queries = random_queries(
            env, 10, seed=4, attribute_matching="same_index"
        )
        for q in queries:
            for pred in q.predicates:
                assert pred.left.name == pred.right.name

    def test_invalid_modes_rejected(self):
        env = make_environment(5)
        with pytest.raises(ValueError):
            random_queries(env, 5, attribute_matching="bogus")
        with pytest.raises(ValueError):
            random_queries(env, 5, duplicates="bogus")

    def test_impossible_request_raises(self):
        env = make_environment(2, num_attributes=1)
        with pytest.raises(RuntimeError):
            random_queries(env, 50, query_size=2, seed=5)
