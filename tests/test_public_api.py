"""Public API surface contract.

``repro.__all__`` is the documented surface: every exported name must be
importable, must resolve to a real object, and must appear in
``docs/api.md`` — a new export without documentation fails the build (the
CI smoke job runs this file explicitly, and it is part of tier-1).
"""

import re
from pathlib import Path

import pytest

import repro

API_DOC = Path(__file__).resolve().parent.parent / "docs" / "api.md"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"


def test_no_undocumented_exports():
    """Every name in repro.__all__ appears in docs/api.md (word match)."""
    assert API_DOC.exists(), "docs/api.md is the documented public surface"
    text = API_DOC.read_text(encoding="utf-8")
    undocumented = [
        name
        for name in repro.__all__
        if not re.search(rf"(?<![A-Za-z0-9_]){re.escape(name)}(?![A-Za-z0-9_])", text)
    ]
    assert not undocumented, (
        f"exports missing from docs/api.md: {undocumented}; document them "
        f"(or drop them from repro.__all__)"
    )


def test_analyzer_api_rules_pass_on_live_surface():
    """The API drift rules (``repro.analysis``) agree the surface is clean.

    Same contract as :func:`test_no_undocumented_exports`, but enforced
    through the analyzer CI runs (`python -m repro.analysis src/`): API001
    flags ``repro.__all__`` entries absent from docs/api.md, API002 flags
    ``__all__`` entries that are never bound.  Consuming the checker here
    keeps the regex test and the analyzer from drifting apart.
    """
    from repro.analysis import analyze

    repo_root = API_DOC.parent.parent
    report = analyze(
        [repo_root / "src" / "repro" / "__init__.py"],
        root=repo_root,
        rule_ids=["API001", "API002"],
    )
    assert report.files_scanned == 1
    assert report.ok, "\n" + report.render()


def test_analyzer_api_rules_have_teeth(tmp_path):
    """Planting an undocumented export makes API001 fire — the clean
    result above is not a vacuous pass."""
    from repro.analysis import analyze

    init = tmp_path / "src" / "repro" / "__init__.py"
    init.parent.mkdir(parents=True)
    init.write_text(
        "documented = 1\nsurprise = 2\n"
        '__all__ = ["documented", "surprise"]\n',
        encoding="utf-8",
    )
    doc = tmp_path / "docs" / "api.md"
    doc.parent.mkdir()
    doc.write_text("Only `documented` is described here.\n", encoding="utf-8")
    report = analyze([init], root=tmp_path, rule_ids=["API001", "API002"])
    assert [f.rule for f in report.findings] == ["API001"]
    assert "surprise" in report.findings[0].message


def test_facade_is_exported_first_class():
    from repro import JoinSession  # noqa: F401 — the documented entry point

    assert repro.__all__[0] == "JoinSession"


def test_session_exceptions_are_catchable_as_session_error():
    from repro import (
        DuplicateQueryError,
        LateTupleError,
        SessionError,
        UnknownQueryError,
        UnknownRelationError,
    )

    for exc in (
        UnknownRelationError,
        UnknownQueryError,
        DuplicateQueryError,
        LateTupleError,
    ):
        assert issubclass(exc, SessionError)
    # lookup-style errors double as KeyError, order errors as ValueError
    assert issubclass(UnknownRelationError, KeyError)
    assert issubclass(UnknownQueryError, KeyError)
    assert issubclass(DuplicateQueryError, ValueError)
    assert issubclass(LateTupleError, ValueError)
    # ...without inheriting KeyError's repr-quoting __str__, which would
    # mangle the documented human-readable messages
    assert str(UnknownRelationError("plain message")) == "plain message"
    assert str(UnknownQueryError("plain message")) == "plain message"


def test_old_wiring_path_still_importable():
    """The pre-facade five-step pipeline remains public (docs/api.md table)."""
    from repro import (  # noqa: F401
        MultiQueryOptimizer,
        Query,
        StatisticsCatalog,
        TopologyRuntime,
        build_topology,
        reference_join,
    )
