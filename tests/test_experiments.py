"""Smoke tests for the experiment drivers (tiny parameterizations).

The benchmarks run the paper-scale versions; these tests assert the
*claims* each figure makes on miniature instances so regressions in the
experiment code are caught by ``pytest tests/``.
"""

import pytest

from repro.experiments.fig7 import ratio_summary, run_fig7, workload_for
from repro.experiments.fig8 import run_fig8a, run_fig8b
from repro.experiments.fig9 import run_point, sweep_num_queries
from repro.experiments.live import run_live_session
from repro.experiments.reporting import format_series, format_table
from repro.experiments.shapes import REGIMES, SHAPES, run_shapes, shape_query


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), (10, 0.001)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_series(self):
        text = format_series("s", [(1, 2.0), (2, 3.0)])
        assert text.startswith("s:")
        assert "1: 2" in text


class TestShapesDriver:
    def test_shape_queries_have_expected_topologies(self):
        assert not shape_query("chain", 4).is_cyclic
        assert not shape_query("star", 4).is_cyclic
        assert shape_query("cycle", 4).is_cyclic
        with pytest.raises(ValueError):
            shape_query("mesh", 4)

    def test_full_grid_runs_exactly_on_miniature_instance(self):
        """All shape x regime cells execute, verify against the reference
        (run_shapes raises on any divergence), and report sane metrics."""
        rows = run_shapes(
            num_relations=3,
            rate=8.0,
            duration=4.0,
            domain=12,
            disorder_bound=0.8,
            parallelism=2,
            seed=1,
        )
        assert len(rows) == len(SHAPES) * len(REGIMES)
        assert {(r.shape, r.regime) for r in rows} == {
            (s, g) for s in SHAPES for g in REGIMES
        }
        for row in rows:
            assert row.exact
            assert row.inputs > 0
            assert row.probe_cost > 0
            assert row.throughput > 0

    def test_regimes_share_the_reference_oracle(self):
        """Per shape, the uniform and out-of-order cells must report the
        same result count: disorder only permutes consumption order."""
        rows = run_shapes(
            num_relations=3,
            rate=8.0,
            duration=4.0,
            domain=10,
            disorder_bound=1.0,
            parallelism=1,
            seed=2,
            regimes=("uniform", "ooo"),
        )
        by_shape = {}
        for row in rows:
            by_shape.setdefault(row.shape, {})[row.regime] = row.results
        for shape, counts in by_shape.items():
            assert counts["uniform"] == counts["ooo"], shape


class TestLiveSessionDriver:
    def test_churn_phases_verified_and_state_preserved(self):
        phases = run_live_session(
            rate=8.0, duration=9.0, domain=6, window=2.0, seed=1
        )
        assert [p.phase for p in phases] == [
            "base: q1+q2", "+q3 (shares T,U)", "-q1 (R released)"
        ]
        assert all(p.verified for p in phases)
        assert phases[0].preserved == 0  # no rewire yet
        assert phases[1].preserved > 0  # q3's arrival migrated shared state
        assert phases[1].queries == 3 and phases[2].queries == 2
        assert phases[-1].results > phases[0].results

    def test_churn_under_watermark_mode(self):
        phases = run_live_session(
            rate=8.0, duration=9.0, domain=6, window=2.0, seed=2,
            disorder_bound=0.75,
        )
        assert all(p.verified for p in phases)


class TestFig9Driver:
    def test_point_fields_consistent(self):
        point = run_point(8, 6, seed=1)
        assert point.num_distinct <= point.num_queries
        assert point.num_variables > 0
        assert point.num_probe_orders > 0
        assert point.optimize_seconds > 0

    def test_mqo_never_worse_than_individual(self):
        for seed in (1, 2, 3):
            point = run_point(8, 8, seed=seed)
            assert point.mqo_cost <= point.individual_cost + 1e-6

    def test_savings_grow_with_queries_on_small_universe(self):
        few = run_point(8, 5, seed=7)
        many = run_point(8, 40, seed=7)
        assert many.savings >= few.savings - 0.02

    def test_large_universe_has_smaller_savings(self):
        small = run_point(8, 20, seed=9)
        large = run_point(60, 20, seed=9)
        assert large.savings <= small.savings + 0.05

    def test_sweep_returns_requested_points(self):
        points = sweep_num_queries(8, [4, 8], seed=1)
        assert [p.num_queries for p in points] == [4, 8]

    def test_own_solver_matches_scipy(self):
        own = run_point(8, 4, seed=5, solver="own")
        ref = run_point(8, 4, seed=5, solver="scipy")
        assert own.mqo_cost == pytest.approx(ref.mqo_cost)


class TestFig7Driver:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig7(
            num_queries=5,
            total_rate=80.0,
            duration=8.0,
            overload_rate=400.0,
            overload_duration=2.0,
            solver="scipy",
        )

    def test_all_strategies_reported(self, rows):
        assert [r.strategy for r in rows] == ["FI", "SI", "FS", "SS", "CMQO"]

    def test_no_strategy_failed(self, rows):
        assert not any(r.failed for r in rows)

    def test_independent_needs_more_memory_than_shared(self, rows):
        by = {r.strategy: r for r in rows}
        assert by["SI"].peak_memory_units > by["SS"].peak_memory_units
        assert by["FI"].peak_memory_units > by["FS"].peak_memory_units

    def test_cmqo_probe_cost_lowest(self, rows):
        by = {r.strategy: r for r in rows}
        assert by["CMQO"].probe_cost <= by["SS"].probe_cost + 1e-6

    def test_ratio_summary_keys(self, rows):
        ratios = ratio_summary(rows)
        assert "memory_ratio_si_vs_ss" in ratios
        assert ratios["memory_ratio_si_vs_ss"] > 1.0

    def test_workload_for_validates(self):
        assert len(workload_for(5)) == 5
        assert len(workload_for(10)) == 10
        with pytest.raises(ValueError):
            workload_for(7)


class TestFig8Driver:
    """Miniature Fig. 8 scenarios; the bench runs the paper-scale versions.

    The post-shift workload of 8a produces quadratically many intermediate
    results, so these tests use deliberately small rates/durations — they
    assert the qualitative events, not the magnitudes.  Tier-1 runs the
    scipy-backed variants (per-epoch re-optimization through HiGHS is ~100×
    faster than the in-house branch-and-bound); the ``slow`` tier repeats
    both scenarios with the default ``auto`` solver selection.
    """

    def test_fig8a_adaptive_recovers_static_fails(self):
        outcomes = run_fig8a(
            rate=20.0, duration=14.0, shift_at=7.0, window=3.0,
            memory_limit=6_000.0, profile_scale=8.0, seed=3, solver="scipy",
        )
        static, adaptive = outcomes["static"], outcomes["adaptive"]
        assert adaptive.switches, "adaptive run must reconfigure"
        # static either dies of memory overflow or ends up far slower
        assert static.failed or (
            static.mean_latency_after > adaptive.mean_latency_after
        )

    def test_fig8b_adaptive_lowers_latency(self):
        outcomes = run_fig8b(
            fast_rate=80.0, slow_rate=2.5, duration=14.0, shift_at=7.0,
            window=3.0, profile_scale=8.0, seed=3, solver="scipy",
        )
        adaptive = outcomes["adaptive"]
        assert adaptive.switches
        assert (
            adaptive.mean_latency_after
            <= outcomes["static"].mean_latency_after + 1e-9
        )

    @pytest.mark.slow
    def test_fig8a_with_auto_solver(self):
        outcomes = run_fig8a(
            rate=20.0, duration=14.0, shift_at=7.0, window=3.0,
            memory_limit=6_000.0, profile_scale=8.0, seed=3,
        )
        static, adaptive = outcomes["static"], outcomes["adaptive"]
        assert adaptive.switches
        assert static.failed or (
            static.mean_latency_after > adaptive.mean_latency_after
        )

    @pytest.mark.slow
    def test_fig8b_with_auto_solver(self):
        outcomes = run_fig8b(
            fast_rate=80.0, slow_rate=2.5, duration=14.0, shift_at=7.0,
            window=3.0, profile_scale=8.0, seed=3,
        )
        adaptive = outcomes["adaptive"]
        assert adaptive.switches
        assert (
            adaptive.mean_latency_after
            <= outcomes["static"].mean_latency_after + 1e-9
        )
