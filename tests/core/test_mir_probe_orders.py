"""Tests for MIR enumeration and probe-order construction (Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mir import Mir, enumerate_mirs, input_mir, merge_mirs
from repro.core.predicates import JoinPredicate
from repro.core.probe_order import (
    construct_probe_orders,
    maintenance_probe_orders,
    maintenance_query,
)
from repro.core.query import Query


@pytest.fixture()
def linear3():
    # the paper's running example R(a), S(a,b), T(b)
    return Query.of("q", "R.a=S.a", "S.b=T.b")


@pytest.fixture()
def linear4():
    return Query.of("q4", "R.a=S.a", "S.b=T.b", "T.c=U.c")


class TestMirEnumeration:
    def test_linear3_mirs_match_paper(self, linear3):
        """Sec V: for R(a),S(a,b),T(b) the MIRs are (R,S) and (S,T), not (R,T)."""
        mirs = enumerate_mirs(linear3)
        pairs = {tuple(sorted(m.relations)) for m in mirs if m.size == 2}
        assert pairs == {("R", "S"), ("S", "T")}

    def test_inputs_included(self, linear3):
        mirs = enumerate_mirs(linear3)
        singles = {tuple(m.relations)[0] for m in mirs if m.is_input}
        assert singles == {"R", "S", "T"}

    def test_full_query_excluded(self, linear4):
        mirs = enumerate_mirs(linear4)
        assert all(m.size < linear4.size for m in mirs)

    def test_max_size_cap(self, linear4):
        mirs = enumerate_mirs(linear4, max_size=2)
        assert max(m.size for m in mirs) == 2

    def test_linear_count_quadratic(self):
        """A linear query's MIRs are its consecutive subsequences."""
        q = Query.of("q", "A.x=B.x", "B.y=C.y", "C.z=D.z", "D.w=E.w")
        mirs = [m for m in enumerate_mirs(q) if m.size >= 2]
        # consecutive runs of length 2..4 in a 5-chain: 4 + 3 + 2 = 9
        assert len(mirs) == 9

    def test_star_query_mirs(self):
        q = Query.of("q", "Hub.a=A.a", "Hub.b=B.b", "Hub.c=C.c")
        mirs = [m for m in enumerate_mirs(q) if m.size >= 2]
        # every size>=2 connected subset must contain the hub
        assert all("Hub" in m.relations for m in mirs)
        # {Hub+1 leaf} x3, {Hub+2 leaves} x3 (size-4 = full query excluded)
        assert len(mirs) == 6

    def test_mir_predicates_are_induced(self, linear3):
        mirs = enumerate_mirs(linear3)
        rs = next(m for m in mirs if m.relations == frozenset({"R", "S"}))
        assert rs.predicates == frozenset({JoinPredicate.of("R.a", "S.a")})

    def test_foreign_predicate_rejected(self):
        with pytest.raises(ValueError):
            Mir(
                relations=frozenset({"R"}),
                predicates=frozenset({JoinPredicate.of("R.a", "S.a")}),
            )

    def test_merge_deduplicates_structurally(self, linear3):
        q2 = Query.of("q2", "R.a=S.a", "S.c=U.c")  # shares the RS sub-join
        merged = merge_mirs([enumerate_mirs(linear3), enumerate_mirs(q2)])
        rs_mirs = [m for m in merged if m.relations == frozenset({"R", "S"})]
        assert len(rs_mirs) == 1

    def test_merge_keeps_distinct_predicates_apart(self, linear3):
        q2 = Query.of("q2", "R.z=S.z", "S.b=T.b")  # different RS predicate
        merged = merge_mirs([enumerate_mirs(linear3), enumerate_mirs(q2)])
        rs_mirs = [m for m in merged if m.relations == frozenset({"R", "S"})]
        assert len(rs_mirs) == 2

    def test_display_and_canonical_names(self):
        mir = input_mir("R")
        assert mir.display_name == "R"
        assert mir.canonical_id == "R"


class TestProbeOrderConstruction:
    def test_fig3_candidates_for_q1(self):
        """Fig. 3: q1 = R(b),S(b,c),T(c) has R:2, S:2, T:2 candidates."""
        q1 = Query.of("q1", "R.b=S.b", "S.c=T.c")
        mirs = enumerate_mirs(q1)
        orders = construct_probe_orders(q1, mirs)
        as_strs = {
            rel: sorted(str(o) for o in orders[rel]) for rel in q1.relations
        }
        assert as_strs["R"] == ["<R, S+T>", "<R, S, T>"]
        assert sorted(as_strs["S"]) == ["<S, R, T>", "<S, T, R>"]
        assert as_strs["T"] == ["<T, R+S>", "<T, S, R>"]

    def test_orders_cover_query(self, linear4):
        mirs = enumerate_mirs(linear4)
        orders = construct_probe_orders(linear4, mirs)
        for rel in linear4.relations:
            for order in orders[rel]:
                assert order.covered_relations() == linear4.relation_set

    def test_orders_avoid_cross_products(self, linear4):
        """Every prefix of every probe order must be connected."""
        mirs = enumerate_mirs(linear4)
        orders = construct_probe_orders(linear4, mirs)
        for rel in linear4.relations:
            for order in orders[rel]:
                covered = set(order.start.relations)
                for store in order.sequence:
                    assert linear4.predicates_between(covered, store.relations)
                    covered |= store.relations

    def test_stores_are_disjoint(self, linear4):
        mirs = enumerate_mirs(linear4)
        orders = construct_probe_orders(linear4, mirs)
        for rel in linear4.relations:
            for order in orders[rel]:
                seen = set(order.start.relations)
                for store in order.sequence:
                    assert not (seen & store.relations)
                    seen |= store.relations

    def test_without_mirs_orders_are_permutations(self, linear3):
        singles = [input_mir(r) for r in linear3.relations]
        orders = construct_probe_orders(linear3, singles)
        assert sorted(str(o) for o in orders["S"]) == ["<S, R, T>", "<S, T, R>"]
        assert [str(o) for o in orders["R"]] == ["<R, S, T>"]

    def test_inconsistent_mir_excluded(self, linear3):
        """An MIR with alien predicates must not be probed."""
        alien = Mir(
            relations=frozenset({"R", "S"}),
            predicates=frozenset({JoinPredicate.of("R.zzz", "S.zzz")}),
        )
        orders = construct_probe_orders(
            linear3, [input_mir(r) for r in linear3.relations] + [alien]
        )
        for rel_orders in orders.values():
            for order in rel_orders:
                assert all(m.is_input for m in order.stores)


class TestMaintenanceOrders:
    def test_maintenance_query_is_connected_subquery(self, linear3):
        mirs = enumerate_mirs(linear3)
        rs = next(m for m in mirs if m.relations == frozenset({"R", "S"}))
        sub = maintenance_query(rs)
        assert sub.relation_set == frozenset({"R", "S"})
        assert sub.predicates == rs.predicates

    def test_pairwise_maintenance(self, linear3):
        mirs = enumerate_mirs(linear3)
        rs = next(m for m in mirs if m.relations == frozenset({"R", "S"}))
        orders = maintenance_probe_orders(rs, mirs)
        assert [str(o) for o in orders["R"]] == ["<R, S> -> R+S"]
        assert [str(o) for o in orders["S"]] == ["<S, R> -> R+S"]

    def test_large_mir_maintainable_via_smaller(self, linear4):
        mirs = enumerate_mirs(linear4)
        rst = next(
            m for m in mirs if m.relations == frozenset({"R", "S", "T"})
        )
        orders = maintenance_probe_orders(rst, mirs)
        r_orders = {str(o) for o in orders["R"]}
        assert "<R, S, T> -> R+S+T" in r_orders
        assert "<R, S+T> -> R+S+T" in r_orders

    def test_maintenance_orders_target_set(self, linear3):
        mirs = enumerate_mirs(linear3)
        st = next(m for m in mirs if m.relations == frozenset({"S", "T"}))
        orders = maintenance_probe_orders(st, mirs)
        for rel_orders in orders.values():
            for order in rel_orders:
                assert order.is_maintenance
                assert order.target == st


@st.composite
def random_connected_query(draw):
    """A random connected query over 3-6 relations (tree-shaped graph)."""
    n = draw(st.integers(3, 6))
    rels = [f"S{i}" for i in range(n)]
    preds = []
    for i in range(1, n):
        j = draw(st.integers(0, i - 1))
        preds.append(f"{rels[j]}.a{i}={rels[i]}.a{i}")
    extra = draw(st.integers(0, 2))
    for k in range(extra):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a != b:
            preds.append(f"{rels[a]}.x{k}={rels[b]}.x{k}")
    return Query.of("rand", *preds)


class TestProbeOrderProperties:
    @settings(max_examples=30, deadline=None)
    @given(random_connected_query())
    def test_probe_orders_partition_relations(self, query):
        mirs = enumerate_mirs(query, max_size=2)
        orders = construct_probe_orders(query, mirs)
        for rel in query.relations:
            assert orders[rel], f"no probe order for start {rel}"
            for order in orders[rel]:
                rel_lists = [set(order.start.relations)] + [
                    set(m.relations) for m in order.sequence
                ]
                union = set().union(*rel_lists)
                assert union == set(query.relations)
                assert sum(len(s) for s in rel_lists) == len(union)

    @settings(max_examples=30, deadline=None)
    @given(random_connected_query())
    def test_singles_only_orders_are_permutations(self, query):
        singles = [input_mir(r) for r in query.relations]
        orders = construct_probe_orders(query, singles)
        for rel in query.relations:
            for order in orders[rel]:
                names = [rel] + [m.display_name for m in order.sequence]
                assert sorted(names) == sorted(query.relations)
