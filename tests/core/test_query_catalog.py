"""Tests for the query model and statistics catalog."""

import pytest

from repro.core.catalog import StatisticsCatalog
from repro.core.predicates import JoinPredicate
from repro.core.query import CrossProductError, Query, validate_workload
from repro.core.schema import Attribute, StreamRelation


@pytest.fixture()
def linear_query():
    return Query.of("q", "R.a=S.a", "S.b=T.b", "T.c=U.c")


class TestQueryConstruction:
    def test_of_builds_relations_from_predicates(self, linear_query):
        assert linear_query.relations == ("R", "S", "T", "U")

    def test_cross_product_rejected(self):
        with pytest.raises(CrossProductError):
            Query.of("bad", "R.a=S.a", "T.b=U.b")

    def test_single_relation_rejected(self):
        with pytest.raises(ValueError):
            Query(name="q", relations=("R",), predicates=frozenset())

    def test_foreign_predicate_rejected(self):
        with pytest.raises(ValueError):
            Query(
                name="q",
                relations=("R", "S"),
                predicates=frozenset({JoinPredicate.of("R.a", "T.a")}),
            )

    def test_window_override_validation(self):
        q = Query.of("q", "R.a=S.a", windows={"R": 5.0})
        assert q.window_of("R") == 5.0
        assert q.window_of("S", default=7.0) == 7.0
        with pytest.raises(ValueError):
            Query.of("q", "R.a=S.a", windows={"T": 5.0})

    def test_duplicate_names_rejected_in_workload(self, linear_query):
        with pytest.raises(ValueError):
            validate_workload([linear_query, linear_query])


class TestQueryStructure:
    def test_predicates_within(self, linear_query):
        inner = linear_query.predicates_within({"R", "S"})
        assert inner == frozenset({JoinPredicate.of("R.a", "S.a")})

    def test_predicates_between(self, linear_query):
        between = linear_query.predicates_between({"R", "S"}, {"T"})
        assert between == frozenset({JoinPredicate.of("S.b", "T.b")})

    def test_neighbors(self, linear_query):
        assert linear_query.neighbors({"S"}) == frozenset({"R", "T"})
        assert linear_query.neighbors({"R", "S"}) == frozenset({"T"})
        assert linear_query.neighbors({"R", "T"}) == frozenset({"S", "U"})

    def test_join_attributes(self, linear_query):
        attrs = linear_query.join_attributes("S")
        assert attrs == [Attribute("S", "a"), Attribute("S", "b")]

    def test_is_subquery_connected(self, linear_query):
        assert linear_query.is_subquery_connected({"R", "S"})
        assert linear_query.is_subquery_connected({"S", "T", "U"})
        assert not linear_query.is_subquery_connected({"R", "T"})
        assert not linear_query.is_subquery_connected([])


class TestQueryShapes:
    def test_chain_constructor(self):
        q = Query.chain("q", ["R", "S", "T"])
        assert q.predicates == frozenset(
            {JoinPredicate.of("R.a0", "S.a0"), JoinPredicate.of("S.a1", "T.a1")}
        )
        assert not q.is_cyclic and q.num_cycles == 0

    def test_star_constructor(self):
        q = Query.star("q", "H", ["A", "B", "C"])
        assert len(q.predicates) == 3
        assert all(p.involves("H") for p in q.predicates)
        assert not q.is_cyclic

    def test_cycle_constructor_closes_ring(self):
        q = Query.cycle("q", ["R", "S", "T", "U"])
        assert len(q.predicates) == 4
        assert q.is_cyclic and q.num_cycles == 1
        # every relation has exactly two ring neighbours
        for rel in q.relations:
            assert len(q.neighbors({rel})) == 2

    def test_shape_constructor_validation(self):
        with pytest.raises(ValueError):
            Query.chain("q", ["R"])
        with pytest.raises(ValueError):
            Query.star("q", "H", [])
        with pytest.raises(ValueError):
            Query.cycle("q", ["R", "S"])

    def test_shape_constructors_reject_repeated_relations(self):
        """A repeated relation would silently collapse the shape (e.g. a
        'cycle' that is actually two relations with parallel predicates)."""
        with pytest.raises(ValueError, match="repeats"):
            Query.cycle("q", ["R", "S", "R", "S"])
        with pytest.raises(ValueError, match="repeats"):
            Query.chain("q", ["R", "S", "R"])
        with pytest.raises(ValueError, match="repeats"):
            Query.star("q", "H", ["A", "A"])
        with pytest.raises(ValueError, match="repeats"):
            Query.star("q", "H", ["A", "H"])

    def test_parallel_predicates_are_not_a_cycle(self):
        q = Query.of("q", "R.a=S.a", "R.b=S.b")
        assert q.num_cycles == 0 and not q.is_cyclic

    def test_spanning_plus_closing_partition_the_predicates(self):
        q = Query.cycle("q", ["R", "S", "T", "U"])
        spanning = q.spanning_predicates()
        closing = q.cycle_closing_predicates()
        assert spanning | closing == q.predicates
        assert not spanning & closing
        assert len(spanning) == len(q.relations) - 1
        assert len(closing) == q.num_cycles == 1
        # deterministic across calls
        assert q.spanning_predicates() == spanning

    def test_spanning_tree_of_acyclic_query_is_everything(self):
        q = Query.chain("q", ["R", "S", "T"])
        assert q.spanning_predicates() == q.predicates
        assert q.cycle_closing_predicates() == frozenset()

    def test_parallel_predicate_lands_in_closing_set(self):
        q = Query.of("q", "R.a=S.a", "R.b=S.b")
        assert q.cycle_closing_predicates() == frozenset(
            {JoinPredicate.of("R.b", "S.b")}
        )


class TestCatalog:
    def test_rate_registration_and_lookup(self):
        cat = StatisticsCatalog().with_rate("R", 100.0)
        assert cat.rate("R") == 100.0
        with pytest.raises(KeyError):
            cat.rate("S")

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            StatisticsCatalog().with_rate("R", 0.0)

    def test_relation_registration_carries_window(self):
        rel = StreamRelation("R", ("a",), window=9.0)
        cat = StatisticsCatalog().with_relation(rel, rate=10.0)
        assert cat.window("R") == 9.0
        assert cat.relation("R") is rel

    def test_selectivity_default_and_override(self):
        pred = JoinPredicate.of("R.a", "S.a")
        cat = StatisticsCatalog(default_selectivity=0.02)
        assert cat.selectivity(pred) == 0.02
        cat.with_selectivity(pred, 0.5)
        assert cat.selectivity(pred) == 0.5

    def test_selectivity_orientation_invariant(self):
        cat = StatisticsCatalog().with_selectivity(
            JoinPredicate.of("S.a", "R.a"), 0.25
        )
        assert cat.selectivity(JoinPredicate.of("R.a", "S.a")) == 0.25

    def test_selectivity_bounds(self):
        pred = JoinPredicate.of("R.a", "S.a")
        with pytest.raises(ValueError):
            StatisticsCatalog().with_selectivity(pred, 0.0)
        with pytest.raises(ValueError):
            StatisticsCatalog().with_selectivity(pred, 1.5)

    def test_join_cardinality_paper_example(self):
        """Sec V.2: rates 100, |S join T| = 150 via selectivity 0.015."""
        cat = StatisticsCatalog().with_rate("S", 100).with_rate("T", 100)
        pred = JoinPredicate.of("S.b", "T.b")
        cat.with_selectivity(pred, 0.015)
        assert cat.join_cardinality({"S", "T"}, {pred}) == pytest.approx(150.0)

    def test_join_cardinality_ignores_external_predicates(self):
        cat = StatisticsCatalog().with_rate("S", 10).with_rate("T", 10)
        external = JoinPredicate.of("T.c", "U.c")
        inner = JoinPredicate.of("S.b", "T.b")
        cat.with_selectivity(inner, 0.1)
        card = cat.join_cardinality({"S", "T"}, {inner, external})
        assert card == pytest.approx(10.0)

    def test_join_cardinality_empty_set(self):
        assert StatisticsCatalog().join_cardinality(set(), set()) == 0.0

    def test_stored_tuples(self):
        cat = StatisticsCatalog().with_rate("R", 100.0).with_window("R", 5.0)
        assert cat.stored_tuples("R") == 500.0

    def test_stored_tuples_unbounded_window_raises(self):
        cat = StatisticsCatalog().with_rate("R", 100.0)
        with pytest.raises(ValueError):
            cat.stored_tuples("R")

    def test_stored_tuples_query_override(self):
        cat = StatisticsCatalog().with_rate("R", 100.0).with_window("R", 5.0)
        q = Query.of("q", "R.a=S.a", windows={"R": 2.0})
        assert cat.stored_tuples("R", query=q) == 200.0

    def test_copy_is_independent(self):
        cat = StatisticsCatalog().with_rate("R", 1.0)
        clone = cat.copy()
        clone.with_rate("R", 2.0)
        assert cat.rate("R") == 1.0
        assert clone.rate("R") == 2.0

    def test_every_with_builder_returns_self(self):
        """All with_* builders chain fluently (return the same instance)."""
        cat = StatisticsCatalog()
        relation = StreamRelation("R", ("a",), 5.0)
        assert cat.with_relation(relation, rate=1.0) is cat
        assert cat.with_rate("S", 2.0) is cat
        assert cat.with_window("S", 3.0) is cat
        assert cat.with_selectivity(JoinPredicate.of("R.a", "S.a"), 0.1) is cat

    def test_with_selectivity_accepts_equality_string(self):
        cat = StatisticsCatalog().with_selectivity("S.b=T.b", 0.015)
        assert cat.selectivity(JoinPredicate.of("S.b", "T.b")) == 0.015
        # orientation-invariant, like the JoinPredicate form
        assert cat.selectivity(JoinPredicate.of("T.b", "S.b")) == 0.015

    def test_with_selectivity_rejects_malformed_string(self):
        with pytest.raises(ValueError, match="equality"):
            StatisticsCatalog().with_selectivity("S.b~T.b", 0.1)
