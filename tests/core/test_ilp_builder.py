"""Tests for ILP construction (Algorithm 2), solving, and plan extraction.

Includes the paper's two worked examples:
* Sec V.1 / Fig. 3 — structure of candidates and constraints,
* Sec V.2 — the 475-vs-shared multi-query optimization outcome.
"""

import pytest

from repro.core.catalog import StatisticsCatalog
from repro.core.ilp_builder import (
    OptimizerConfig,
    build_mqo_ilp,
    maintenance_group,
    user_group,
)
from repro.core.optimizer import MultiQueryOptimizer
from repro.core.partitioning import ClusterConfig
from repro.core.plan import PlanExtractionError, estimate_memory, extract_plan
from repro.core.predicates import JoinPredicate
from repro.core.query import Query
from repro.ilp.greedy import solve_greedy
from repro.ilp.model import SolveStatus
from repro.ilp.solvers import solve_model


@pytest.fixture()
def paper_queries():
    """Sec V.2: q1 = R(a),S(a,b),T(b); q2 = S(b),T(b,c),U(c)."""
    q1 = Query.of("q1", "R.a=S.a", "S.b=T.b")
    q2 = Query.of("q2", "S.b=T.b", "T.c=U.c")
    return q1, q2


@pytest.fixture()
def paper_catalog():
    cat = StatisticsCatalog(default_selectivity=0.01)
    for rel in "RSTU":
        cat.with_rate(rel, 100.0)
    cat.with_selectivity(JoinPredicate.of("S.b", "T.b"), 0.015)
    return cat


def _flat_config(**kwargs):
    defaults = dict(
        enable_mirs=False, cluster=ClusterConfig(default_parallelism=1)
    )
    defaults.update(kwargs)
    return OptimizerConfig(**defaults)


class TestIlpStructure:
    def test_one_group_per_query_start(self, paper_queries, paper_catalog):
        ilp = build_mqo_ilp(paper_queries, paper_catalog, _flat_config())
        assert set(ilp.mandatory_groups) == {
            user_group("q1", r) for r in "RST"
        } | {user_group("q2", r) for r in "STU"}

    def test_candidate_counts_without_mirs(self, paper_queries, paper_catalog):
        ilp = build_mqo_ilp(paper_queries, paper_catalog, _flat_config())
        # linear 3-way: end starts have 1 order, middle has 2 -> 4 per query
        assert ilp.num_probe_orders == 8

    def test_mirs_add_maintenance_groups(self, paper_queries, paper_catalog):
        config = OptimizerConfig(cluster=ClusterConfig(default_parallelism=1))
        ilp = build_mqo_ilp(paper_queries, paper_catalog, config)
        st_mir = next(
            m
            for m in ilp.stores.values()
            if m.relations == frozenset({"S", "T"})
        )
        assert maintenance_group(st_mir, "S") in ilp.groups
        assert maintenance_group(st_mir, "T") in ilp.groups

    def test_shared_step_variables(self, paper_queries, paper_catalog):
        """q1's <S,T,R> and q2's <S,T,U> share the S->T step variable."""
        ilp = build_mqo_ilp(paper_queries, paper_catalog, _flat_config())
        q1_s = [ilp.candidates[n] for n in ilp.groups[user_group("q1", "S")]]
        q2_s = [ilp.candidates[n] for n in ilp.groups[user_group("q2", "S")]]
        q1_via_t = next(c for c in q1_s if "T" in str(c.decorated).split(",")[1])
        q2_only = q2_s[0]
        assert q1_via_t.step_keys[0] == q2_only.step_keys[0]

    def test_paper_constraint_form_counts(self, paper_queries, paper_catalog):
        ind = build_mqo_ilp(paper_queries, paper_catalog, _flat_config())
        pap = build_mqo_ilp(
            paper_queries, paper_catalog, _flat_config(constraint_form="paper")
        )
        # paper form: one cost row per candidate; indicator: one per used step
        assert pap.num_constraints < ind.num_constraints
        assert pap.num_variables == ind.num_variables

    def test_strict_partitioning_adds_z_vars(self, paper_queries, paper_catalog):
        strict = build_mqo_ilp(
            paper_queries,
            paper_catalog,
            OptimizerConfig(cluster=ClusterConfig(default_parallelism=4)),
        )
        relaxed = build_mqo_ilp(
            paper_queries,
            paper_catalog,
            OptimizerConfig(
                cluster=ClusterConfig(default_parallelism=4),
                strict_partitioning=False,
            ),
        )
        assert strict.z_vars and not relaxed.z_vars
        assert strict.num_variables > relaxed.num_variables

    def test_unknown_constraint_form_rejected(self):
        with pytest.raises(ValueError):
            OptimizerConfig(constraint_form="bogus")

    def test_grouped_problem_validates(self, paper_queries, paper_catalog):
        ilp = build_mqo_ilp(paper_queries, paper_catalog, _flat_config())
        ilp.grouped.validate()

    def test_empty_workload_rejected(self, paper_catalog):
        with pytest.raises(ValueError):
            build_mqo_ilp([], paper_catalog, _flat_config())


class TestPaperSecV2Outcome:
    def test_individual_costs_475(self, paper_queries, paper_catalog):
        opt = MultiQueryOptimizer(paper_catalog, _flat_config(), solver="own")
        ind = opt.optimize_individual(list(paper_queries))
        assert ind.results["q1"].plan.objective == pytest.approx(475.0)
        assert ind.results["q2"].plan.objective == pytest.approx(475.0)
        assert ind.total_cost == pytest.approx(950.0)

    def test_mqo_beats_individual(self, paper_queries, paper_catalog):
        opt = MultiQueryOptimizer(paper_catalog, _flat_config(), solver="own")
        res = opt.optimize(list(paper_queries))
        assert res.plan.objective == pytest.approx(800.0)

    def test_mqo_selects_locally_suboptimal_order(
        self, paper_queries, paper_catalog
    ):
        """q1's S-start must pick <S, T, R> (cost 175 alone, 75 marginal)."""
        opt = MultiQueryOptimizer(paper_catalog, _flat_config(), solver="own")
        res = opt.optimize(list(paper_queries))
        s_choice = res.plan.chosen[user_group("q1", "S")]
        stores = [m.display_name for m in s_choice.decorated.order.sequence]
        assert stores == ["T", "R"]

    def test_solvers_agree(self, paper_queries, paper_catalog):
        cfg = _flat_config()
        own = MultiQueryOptimizer(paper_catalog, cfg, solver="own")
        ref = MultiQueryOptimizer(paper_catalog, cfg, solver="scipy")
        assert own.optimize(list(paper_queries)).plan.objective == pytest.approx(
            ref.optimize(list(paper_queries)).plan.objective
        )

    def test_greedy_warm_start_is_feasible(self, paper_queries, paper_catalog):
        ilp = build_mqo_ilp(paper_queries, paper_catalog, _flat_config())
        greedy = solve_greedy(ilp.grouped)
        assert greedy is not None
        assignment = ilp.warm_start_assignment(greedy)
        assert ilp.model.is_feasible(assignment)
        assert ilp.model.objective_value(assignment) == pytest.approx(
            greedy.objective
        )


class TestMirPlans:
    def test_mir_plan_includes_maintenance(self, paper_queries, paper_catalog):
        cfg = OptimizerConfig(cluster=ClusterConfig(default_parallelism=4))
        opt = MultiQueryOptimizer(paper_catalog, cfg, solver="own")
        res = opt.optimize(list(paper_queries))
        if res.plan.mir_stores:
            maint = res.plan.maintenance_orders()
            for mir in res.plan.mir_stores:
                starts = {
                    o.decorated.order.start_relation
                    for o in maint
                    if o.decorated.target == mir
                }
                assert starts == set(mir.relations)

    def test_constraint_forms_same_optimum(self, paper_queries, paper_catalog):
        base = dict(cluster=ClusterConfig(default_parallelism=4))
        obj = {}
        for form in ("indicator", "paper"):
            cfg = OptimizerConfig(constraint_form=form, **base)
            opt = MultiQueryOptimizer(paper_catalog, cfg, solver="scipy")
            obj[form] = opt.optimize(list(paper_queries)).plan.objective
        assert obj["indicator"] == pytest.approx(obj["paper"])

    def test_relaxed_partitioning_never_costlier(self, paper_queries, paper_catalog):
        base = dict(cluster=ClusterConfig(default_parallelism=4))
        strict = MultiQueryOptimizer(
            paper_catalog, OptimizerConfig(**base), solver="scipy"
        ).optimize(list(paper_queries))
        relaxed = MultiQueryOptimizer(
            paper_catalog,
            OptimizerConfig(strict_partitioning=False, **base),
            solver="scipy",
        ).optimize(list(paper_queries))
        assert relaxed.plan.objective <= strict.plan.objective + 1e-9


class TestPlanExtraction:
    def test_extraction_requires_solved(self, paper_queries, paper_catalog):
        from repro.ilp.model import Solution

        ilp = build_mqo_ilp(paper_queries, paper_catalog, _flat_config())
        with pytest.raises(PlanExtractionError):
            extract_plan(ilp, Solution(status=SolveStatus.INFEASIBLE))

    def test_all_user_groups_covered(self, paper_queries, paper_catalog):
        opt = MultiQueryOptimizer(paper_catalog, _flat_config(), solver="own")
        plan = opt.optimize(list(paper_queries)).plan
        for group in (
            [user_group("q1", r) for r in "RST"]
            + [user_group("q2", r) for r in "STU"]
        ):
            assert group in plan.chosen

    def test_objective_matches_union_of_steps(self, paper_queries, paper_catalog):
        opt = MultiQueryOptimizer(paper_catalog, _flat_config(), solver="own")
        res = opt.optimize(list(paper_queries))
        keys = {k for info in res.plan.chosen.values() for k in info.step_keys}
        total = sum(res.ilp.steps[k].cost for k in keys)
        assert res.plan.objective == pytest.approx(total)

    def test_memory_estimate_positive_and_monotone(
        self, paper_queries, paper_catalog
    ):
        for rel in "RSTU":
            paper_catalog.with_window(rel, 5.0)
        cfg = OptimizerConfig(cluster=ClusterConfig(default_parallelism=1))
        opt = MultiQueryOptimizer(paper_catalog, cfg, solver="own")
        plan = opt.optimize(list(paper_queries)).plan
        mem = estimate_memory(plan, paper_catalog)
        assert mem > 0
        assert estimate_memory(plan, paper_catalog, tuple_bytes=128) == pytest.approx(
            2 * mem
        )

    def test_describe_mentions_all_queries(self, paper_queries, paper_catalog):
        opt = MultiQueryOptimizer(paper_catalog, _flat_config(), solver="own")
        text = opt.optimize(list(paper_queries)).plan.describe()
        assert "q:q1:R" in text and "q:q2:U" in text
