"""Cross-interpreter determinism: results must not depend on PYTHONHASHSEED.

Regression coverage for the DET003 finding in ``ilp_builder``: the cost
linking loop iterated a *set* of step keys while appending constraints,
so the model's row order — and therefore solver pivoting and the
tie-break among equal-cost optima — varied with the process hash seed.
Each test builds the same artifact in subprocesses launched with
different ``PYTHONHASHSEED`` values and requires identical output.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

_SRC = str(Path(__file__).resolve().parents[2] / "src")

_ILP_SCRIPT = """
import hashlib
from repro.core.catalog import StatisticsCatalog
from repro.core.ilp_builder import OptimizerConfig, build_mqo_ilp
from repro.core.predicates import JoinPredicate
from repro.core.query import Query

q1 = Query.of("q1", "R.a=S.a", "S.b=T.b")
q2 = Query.of("q2", "S.b=T.b", "T.c=U.c")
cat = StatisticsCatalog(default_selectivity=0.01)
for rel in "RSTU":
    cat.with_rate(rel, 100.0)
cat.with_selectivity(JoinPredicate.of("S.b", "T.b"), 0.015)
for form in ("indicator", "paper"):
    ilp = build_mqo_ilp(
        (q1, q2), cat, OptimizerConfig(constraint_form=form)
    )
    rows = "\\n".join(
        f"{c.name}|{sorted((v.name, w) for v, w in c.expr.terms.items())}"
        for c in ilp.model.constraints
    )
    print(form, hashlib.sha256(rows.encode()).hexdigest())
"""

_FEED_SCRIPT = """
import hashlib
from repro.streams.generators import (
    StreamSpec,
    bounded_delay_feed,
    generate_streams,
    uniform_domain,
    zipf_domain,
)

specs = [
    StreamSpec("R", rate=40.0, attributes={"a": uniform_domain(25)}),
    StreamSpec(
        "S",
        rate=40.0,
        attributes={"a": uniform_domain(25), "b": zipf_domain(25)},
    ),
    StreamSpec("T", rate=40.0, attributes={"b": uniform_domain(25)}),
]
streams, merged = generate_streams(specs, duration=5.0, seed=7)
feed = bounded_delay_feed(streams, 1.0, seed=11)
# per-tuple canonical keys *in feed order*: covers both the generated
# values and the arrival permutation
text = "\\n".join(repr(t.key()) for t in merged + feed)
print(hashlib.sha256(text.encode()).hexdigest())
"""


def _run_with_hash_seed(script: str, hash_seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.parametrize("script", [_ILP_SCRIPT, _FEED_SCRIPT], ids=["ilp", "feed"])
def test_output_independent_of_hash_seed(script):
    baseline = _run_with_hash_seed(script, "0")
    for seed in ("1", "424242"):
        assert _run_with_hash_seed(script, seed) == baseline
