"""Tests for partitioning candidates and the Equation (1) cost model."""

import pytest

from repro.core.catalog import StatisticsCatalog
from repro.core.cost import (
    broadcast_factor,
    delivery_cost,
    probe_order_cost,
    probe_order_steps,
    step_cost,
)
from repro.core.mir import Mir, enumerate_mirs, input_mir
from repro.core.partitioning import (
    ClusterConfig,
    DecoratedProbeOrder,
    apply_partitioning,
    partition_candidates,
)
from repro.core.predicates import JoinPredicate
from repro.core.probe_order import construct_probe_orders, maintenance_probe_orders
from repro.core.query import Query
from repro.core.schema import Attribute


@pytest.fixture()
def q1():
    return Query.of("q1", "R.b=S.b", "S.c=T.c")


@pytest.fixture()
def q2():
    return Query.of("q2", "S.c=T.c", "T.d=U.d")


@pytest.fixture()
def catalog():
    cat = StatisticsCatalog(default_selectivity=0.01)
    for rel in "RSTU":
        cat.with_rate(rel, 100.0)
    return cat


class TestPartitionCandidates:
    def test_input_relation_candidates(self, q1, q2):
        t_store = input_mir("T")
        attrs = partition_candidates(t_store, [q1, q2])
        assert attrs == (Attribute("T", "c"), Attribute("T", "d"))

    def test_paper_example_mir_candidates(self):
        """Sec V: for (R(a),S(a,b)) of R(a),S(a,b),T(b): only b qualifies."""
        q = Query.of("q", "R.a=S.a", "S.b=T.b")
        rs = next(
            m for m in enumerate_mirs(q) if m.relations == frozenset({"R", "S"})
        )
        attrs = partition_candidates(rs, [q])
        assert attrs == (Attribute("S", "b"),)

    def test_no_candidates_yields_none_sentinel(self):
        q = Query.of("q", "R.a=S.a")
        unrelated = input_mir("Z")
        assert partition_candidates(unrelated, [q]) == (None,)

    def test_workload_wide_union(self, q1, q2):
        s_store = input_mir("S")
        attrs = partition_candidates(s_store, [q1, q2])
        # q1 contributes S.b and S.c; q2 contributes S.c
        assert attrs == (Attribute("S", "b"), Attribute("S", "c"))


class TestApplyPartitioning:
    def test_cross_product_of_options(self, q1, q2):
        """Fig. 3: q1's R-orders decorate into sigma_1..sigma_6."""
        from repro.core.mir import merge_mirs

        mirs = merge_mirs([enumerate_mirs(q1), enumerate_mirs(q2)])
        candidates = {
            m.canonical_id: partition_candidates(m, [q1, q2]) for m in mirs
        }
        orders = construct_probe_orders(q1, mirs)
        decorated = apply_partitioning(orders["R"], candidates)
        # <R,S,T>: S has {b,c}, T has {c,d} -> 4; <R,S+T>: S+T has {b,d} -> 2
        assert len(decorated) == 6

    def test_decoration_length_validated(self, q1):
        order = construct_probe_orders(q1, enumerate_mirs(q1))["R"][0]
        with pytest.raises(ValueError):
            DecoratedProbeOrder(order=order, partitions=())

    def test_commitments_skip_none(self, q1):
        singles = [input_mir(r) for r in q1.relations]
        orders = construct_probe_orders(q1, singles)
        decorated = apply_partitioning(orders["R"], {"S": (None,), "T": (None,)})
        assert decorated[0].commitments() == ()


class TestBroadcastFactor:
    def test_parallelism_one_never_broadcasts(self, q1):
        chi = broadcast_factor(
            frozenset({"R"}), input_mir("S"), Attribute("S", "zzz"), 1, q1.predicates
        )
        assert chi == 1

    def test_known_attribute_routes(self, q1):
        # R tuple knows R.b = S.b, so probing S[b] routes to one task.
        chi = broadcast_factor(
            frozenset({"R"}), input_mir("S"), Attribute("S", "b"), 5, q1.predicates
        )
        assert chi == 1

    def test_unknown_attribute_broadcasts(self, q1):
        # R tuple cannot determine S.c (only S.b): broadcast to all 5 tasks.
        chi = broadcast_factor(
            frozenset({"R"}), input_mir("S"), Attribute("S", "c"), 5, q1.predicates
        )
        assert chi == 5

    def test_closure_through_target_internal_predicates(self, q1, q2):
        """Probing the S+T store partitioned on T.c: S.c=T.c makes it known
        from R via R.b=S.b? No - but partitioned on S.b it is reachable."""
        st = next(
            m for m in enumerate_mirs(q1) if m.relations == frozenset({"S", "T"})
        )
        chi_b = broadcast_factor(
            frozenset({"R"}), st, Attribute("S", "b"), 4, q1.predicates
        )
        assert chi_b == 1
        # T.c is equal to S.c (internal), but R knows neither -> broadcast.
        chi_c = broadcast_factor(
            frozenset({"R"}), st, Attribute("T", "c"), 4, q1.predicates
        )
        assert chi_c == 4

    def test_none_partitioning_broadcasts(self, q1):
        chi = broadcast_factor(
            frozenset({"R"}), input_mir("S"), None, 3, q1.predicates
        )
        assert chi == 3


class TestStepCosts:
    def test_first_step_cost_is_rate(self, q1, catalog):
        cost = step_cost(
            catalog, q1, (input_mir("S"),), input_mir("T"), Attribute("T", "c"), 1
        )
        assert cost == pytest.approx(100.0)

    def test_second_step_cost_halved(self, q1, catalog):
        catalog.with_selectivity(JoinPredicate.of("S.c", "T.c"), 0.015)
        cost = step_cost(
            catalog,
            q1,
            (input_mir("S"), input_mir("T")),
            input_mir("R"),
            Attribute("R", "b"),
            1,
        )
        # |S join T| = 150, divisor 2 -> 75 (paper Sec V.2)
        assert cost == pytest.approx(75.0)

    def test_broadcast_multiplies(self, q1, catalog):
        cost = step_cost(
            catalog, q1, (input_mir("R"),), input_mir("S"), Attribute("S", "c"), 5
        )
        assert cost == pytest.approx(500.0)  # broadcast to 5 tasks

    def test_probe_order_cost_paper_total(self, q1, catalog):
        """<S, R, T> with unit parallelism costs 100 + 50 = 150."""
        singles = [input_mir(r) for r in q1.relations]
        orders = construct_probe_orders(q1, singles)
        s_orders = {
            str(o): o for o in orders["S"]
        }
        decorated = DecoratedProbeOrder(
            order=s_orders["<S, R, T>"], partitions=(None, None)
        )
        cost = probe_order_cost(
            catalog, q1, decorated, ClusterConfig(default_parallelism=1)
        )
        assert cost == pytest.approx(150.0)

    def test_delivery_cost(self, q1, catalog):
        catalog.with_selectivity(JoinPredicate.of("S.c", "T.c"), 0.015)
        st = next(
            m for m in enumerate_mirs(q1) if m.relations == frozenset({"S", "T"})
        )
        orders = maintenance_probe_orders(st, enumerate_mirs(q1))
        order = orders["S"][0]
        cost = delivery_cost(catalog, q1, order.stores)
        assert cost == pytest.approx(75.0)  # 150 results / 2 stores

    def test_maintenance_steps_include_delivery(self, q1, catalog):
        st = next(
            m for m in enumerate_mirs(q1) if m.relations == frozenset({"S", "T"})
        )
        orders = maintenance_probe_orders(st, enumerate_mirs(q1))
        decorated = DecoratedProbeOrder(order=orders["S"][0], partitions=(None,))
        steps = probe_order_steps(
            catalog, q1, decorated, ClusterConfig(default_parallelism=1)
        )
        assert [s.kind for s in steps] == ["probe", "deliver"]

    def test_step_keys_shared_across_queries(self, q1, q2, catalog):
        """The S->T step of q1 and q2 must produce identical keys (same
        predicates, same decoration) so the ILP shares the y variable."""
        singles_q1 = [input_mir(r) for r in q1.relations]
        singles_q2 = [input_mir(r) for r in q2.relations]
        o1 = next(
            o
            for o in construct_probe_orders(q1, singles_q1)["S"]
            if str(o) == "<S, T, R>"
        )
        o2 = next(
            o
            for o in construct_probe_orders(q2, singles_q2)["S"]
            if str(o) == "<S, T, U>"
        )
        cluster = ClusterConfig(default_parallelism=1)
        attr = Attribute("T", "c")
        s1 = probe_order_steps(
            catalog, q1, DecoratedProbeOrder(o1, (attr, None)), cluster
        )
        s2 = probe_order_steps(
            catalog, q2, DecoratedProbeOrder(o2, (attr, None)), cluster
        )
        assert s1[0].key == s2[0].key
        assert s1[1].key != s2[1].key

    def test_step_keys_differ_across_partitionings(self, q1, catalog):
        singles = [input_mir(r) for r in q1.relations]
        order = construct_probe_orders(q1, singles)["R"][0]
        cluster = ClusterConfig(default_parallelism=2)
        k_b = probe_order_steps(
            catalog, q1, DecoratedProbeOrder(order, (Attribute("S", "b"), None)), cluster
        )[0].key
        k_c = probe_order_steps(
            catalog, q1, DecoratedProbeOrder(order, (Attribute("S", "c"), None)), cluster
        )[0].key
        assert k_b != k_c

    def test_step_keys_differ_across_predicates(self, catalog):
        """Same relation route, different predicates -> different steps."""
        qa = Query.of("qa", "R.a=S.a")
        qb = Query.of("qb", "R.b=S.b")
        cluster = ClusterConfig(default_parallelism=1)
        oa = construct_probe_orders(qa, [input_mir("R"), input_mir("S")])["R"][0]
        ob = construct_probe_orders(qb, [input_mir("R"), input_mir("S")])["R"][0]
        ka = probe_order_steps(
            catalog, qa, DecoratedProbeOrder(oa, (None,)), cluster
        )[0].key
        kb = probe_order_steps(
            catalog, qb, DecoratedProbeOrder(ob, (None,)), cluster
        )[0].key
        assert ka != kb


class TestClusterConfig:
    def test_default_and_override(self):
        cluster = ClusterConfig.with_overrides(default=4, S=8)
        assert cluster.parallelism(input_mir("S")) == 8
        assert cluster.parallelism(input_mir("R")) == 4
