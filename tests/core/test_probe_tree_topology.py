"""Tests for probe-tree merging (Fig. 4) and topology translation (Sec V.B)."""

import pytest

from repro.core.catalog import StatisticsCatalog
from repro.core.ilp_builder import OptimizerConfig
from repro.core.optimizer import MultiQueryOptimizer
from repro.core.partitioning import ClusterConfig
from repro.core.predicates import JoinPredicate
from repro.core.probe_tree import build_probe_trees
from repro.core.query import Query
from repro.core.topology import ProbeRule, StoreRule, build_topology


@pytest.fixture()
def catalog():
    cat = StatisticsCatalog(default_selectivity=0.01, default_window=10.0)
    for rel in "RSTUW":
        cat.with_rate(rel, 100.0)
    return cat


def _optimize(queries, catalog, parallelism=1, enable_mirs=False):
    cfg = OptimizerConfig(
        enable_mirs=enable_mirs,
        cluster=ClusterConfig(default_parallelism=parallelism),
    )
    opt = MultiQueryOptimizer(catalog, cfg, solver="own")
    return opt.optimize(queries), cfg


class TestProbeTrees:
    def test_shared_prefix_merges(self, catalog):
        """Two queries probing S->T from S share the first tree edge."""
        q1 = Query.of("q1", "R.a=S.a", "S.b=T.b")
        q2 = Query.of("q2", "S.b=T.b", "T.c=U.c")
        res, _ = _optimize([q1, q2], catalog)
        trees = build_probe_trees(res.plan.probe_orders)
        s_tree = trees["S"]
        t_roots = [r for r in s_tree.roots if r.store.display_name == "T"]
        # both q1 (S,T,R) and q2 (S,T,U) go S->T first; merged into one root
        assert len(t_roots) == 1
        children = {c.store.display_name for c in t_roots[0].children}
        assert children == {"R", "U"}

    def test_distinct_predicates_do_not_merge(self, catalog):
        qa = Query.of("qa", "R.a=S.a")
        qb = Query.of("qb", "R.b=S.b")
        res, _ = _optimize([qa, qb], catalog)
        trees = build_probe_trees(res.plan.probe_orders)
        r_tree = trees["R"]
        s_roots = [r for r in r_tree.roots if r.store.display_name == "S"]
        assert len(s_roots) == 2  # different predicates -> separate edges

    def test_outputs_at_terminal_nodes(self, catalog):
        q = Query.of("q", "R.a=S.a", "S.b=T.b")
        res, _ = _optimize([q], catalog)
        trees = build_probe_trees(res.plan.probe_orders)
        for tree in trees.values():
            terminals = [
                node
                for root in tree.roots
                for node in root.walk()
                if not node.children
            ]
            for node in terminals:
                assert node.outputs == ["q"] or node.deliveries

    def test_maintenance_delivery_recorded(self, catalog):
        q1 = Query.of("q1", "R.b=S.b", "S.c=T.c")
        q2 = Query.of("q2", "S.c=T.c", "T.d=U.d")
        res, _ = _optimize([q1, q2], catalog, parallelism=4, enable_mirs=True)
        if not res.plan.mir_stores:
            pytest.skip("optimum does not materialize an MIR here")
        trees = build_probe_trees(res.plan.probe_orders)
        deliveries = [
            d
            for tree in trees.values()
            for root in tree.roots
            for node in root.walk()
            for d in node.deliveries
        ]
        assert {d.canonical_id for d in deliveries} == {
            m.canonical_id for m in res.plan.mir_stores
        }


class TestTopology:
    def test_every_input_has_storage_edge(self, catalog):
        q = Query.of("q", "R.a=S.a", "S.b=T.b")
        res, cfg = _optimize([q], catalog)
        topo = build_topology(res.plan, catalog, cfg.cluster)
        for rel in "RST":
            labels = topo.ingest[rel]
            store_rules = [
                r
                for label in labels
                for r in topo.rules_for(topo.edges[label].target_store, label)
                if isinstance(r, StoreRule)
            ]
            assert len(store_rules) == 1

    def test_probe_rules_have_predicates(self, catalog):
        q = Query.of("q", "R.a=S.a", "S.b=T.b")
        res, cfg = _optimize([q], catalog)
        topo = build_topology(res.plan, catalog, cfg.cluster)
        probe_rules = [
            r
            for ruleset in topo.rulesets.values()
            for rules in ruleset.values()
            for r in rules
            if isinstance(r, ProbeRule)
        ]
        assert probe_rules
        assert all(r.predicates for r in probe_rules)

    def test_outputs_cover_all_queries(self, catalog):
        q1 = Query.of("q1", "R.a=S.a", "S.b=T.b")
        q2 = Query.of("q2", "S.b=T.b", "T.c=U.c")
        res, cfg = _optimize([q1, q2], catalog)
        topo = build_topology(res.plan, catalog, cfg.cluster)
        emitted = {
            name
            for ruleset in topo.rulesets.values()
            for rules in ruleset.values()
            for r in rules
            if isinstance(r, ProbeRule)
            for name in r.outputs
        }
        assert emitted == {"q1", "q2"}

    def test_edges_reference_existing_stores(self, catalog):
        q1 = Query.of("q1", "R.b=S.b", "S.c=T.c")
        q2 = Query.of("q2", "S.c=T.c", "T.d=U.d")
        res, cfg = _optimize([q1, q2], catalog, parallelism=3, enable_mirs=True)
        topo = build_topology(res.plan, catalog, cfg.cluster)
        for edge in topo.edges.values():
            assert edge.target_store in topo.stores

    def test_out_edges_exist(self, catalog):
        q1 = Query.of("q1", "R.b=S.b", "S.c=T.c")
        q2 = Query.of("q2", "S.c=T.c", "T.d=U.d")
        res, cfg = _optimize([q1, q2], catalog, parallelism=3, enable_mirs=True)
        topo = build_topology(res.plan, catalog, cfg.cluster)
        for ruleset in topo.rulesets.values():
            for rules in ruleset.values():
                for rule in rules:
                    if isinstance(rule, ProbeRule):
                        for label in rule.out_edges:
                            assert label in topo.edges

    def test_route_by_points_at_sender_attribute(self, catalog):
        """R probing S[S.a] must hash on R.a (the equal attribute R knows)."""
        q = Query.of("q", "R.a=S.a", "S.b=T.b")
        res, cfg = _optimize([q], catalog, parallelism=4)
        topo = build_topology(res.plan, catalog, cfg.cluster)
        s_spec = topo.stores["S"]
        if s_spec.partition_attr == "S.a":
            r_probe_edges = [
                topo.edges[label]
                for label in topo.ingest["R"]
                if topo.edges[label].target_store == "S"
            ]
            assert r_probe_edges
            assert r_probe_edges[0].route_by == "R.a"

    def test_unroutable_edge_broadcasts(self, catalog):
        """If T is partitioned by an attribute R cannot derive, route_by=None."""
        q1 = Query.of("q1", "R.b=S.b", "S.c=T.c")
        q2 = Query.of("q2", "S.c=T.c", "T.d=U.d")
        res, cfg = _optimize([q1, q2], catalog, parallelism=4, enable_mirs=True)
        topo = build_topology(res.plan, catalog, cfg.cluster)
        # find any probe edge whose target partition attr is not derivable
        for edge in topo.edges.values():
            spec = topo.stores[edge.target_store]
            if edge.route_by is None:
                assert spec.partition_attr is None or spec.parallelism >= 1

    def test_retention_uses_query_windows(self, catalog):
        q = Query.of("q", "R.a=S.a", windows={"R": 3.0, "S": 4.0})
        res, cfg = _optimize([q], catalog)
        topo = build_topology(res.plan, catalog, cfg.cluster)
        assert topo.stores["R"].retention == 3.0
        assert topo.stores["S"].retention == 4.0

    def test_num_tasks_counts_parallelism(self, catalog):
        q = Query.of("q", "R.a=S.a", "S.b=T.b")
        res, cfg = _optimize([q], catalog, parallelism=3)
        topo = build_topology(res.plan, catalog, cfg.cluster)
        assert topo.num_tasks == 3 * len(topo.stores)

    def test_describe_lists_stores(self, catalog):
        q = Query.of("q", "R.a=S.a", "S.b=T.b")
        res, cfg = _optimize([q], catalog)
        topo = build_topology(res.plan, catalog, cfg.cluster)
        text = topo.describe()
        for rel in "RST":
            assert f"store {rel}" in text
