"""Tests for schema objects and equi-join predicates."""

import pytest

from repro.core.predicates import (
    JoinPredicate,
    attribute_closure,
    connected_components,
)
from repro.core.schema import Attribute, StreamRelation, relation_map


class TestAttribute:
    def test_parse_qualified(self):
        attr = Attribute.parse("Orders.custkey")
        assert attr.relation == "Orders"
        assert attr.name == "custkey"

    def test_parse_rejects_unqualified(self):
        with pytest.raises(ValueError):
            Attribute.parse("custkey")

    def test_ordering_is_lexicographic(self):
        assert Attribute("R", "a") < Attribute("S", "a")
        assert Attribute("R", "a") < Attribute("R", "b")

    def test_str_roundtrip(self):
        attr = Attribute("R", "a")
        assert Attribute.parse(str(attr)) == attr


class TestStreamRelation:
    def test_attr_accessor_validates(self):
        rel = StreamRelation("R", ("a", "b"))
        assert rel.attr("a") == Attribute("R", "a")
        with pytest.raises(KeyError):
            rel.attr("z")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            StreamRelation("R", ("a", "a"))

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ValueError):
            StreamRelation("R", ("a",), window=0)

    def test_relation_map_rejects_duplicates(self):
        with pytest.raises(ValueError):
            relation_map([StreamRelation("R", ("a",)), StreamRelation("R", ("b",))])


class TestJoinPredicate:
    def test_canonical_orientation(self):
        p1 = JoinPredicate.of("S.a", "R.b")
        p2 = JoinPredicate.of("R.b", "S.a")
        assert p1 == p2
        assert hash(p1) == hash(p2)
        assert p1.left == Attribute("R", "b")

    def test_self_join_rejected(self):
        with pytest.raises(ValueError):
            JoinPredicate.of("R.a", "R.b")

    def test_relations_property(self):
        assert JoinPredicate.of("R.a", "S.b").relations == frozenset({"R", "S"})

    def test_attribute_of_and_other(self):
        pred = JoinPredicate.of("R.a", "S.b")
        assert pred.attribute_of("R") == Attribute("R", "a")
        assert pred.other("R") == Attribute("S", "b")
        with pytest.raises(KeyError):
            pred.attribute_of("T")

    def test_connects(self):
        pred = JoinPredicate.of("R.a", "S.b")
        assert pred.connects({"R"}, {"S", "T"})
        assert pred.connects({"S"}, {"R"})
        assert not pred.connects({"R"}, {"T"})
        assert not pred.connects({"R", "S"}, {"T"})


class TestAttributeClosure:
    def test_direct_equality(self):
        preds = [JoinPredicate.of("R.a", "S.b")]
        closure = attribute_closure([Attribute("R", "a")], preds)
        assert Attribute("S", "b") in closure

    def test_transitive_chain(self):
        preds = [
            JoinPredicate.of("R.a", "S.b"),
            JoinPredicate.of("S.b", "T.c"),
            JoinPredicate.of("T.c", "U.d"),
        ]
        closure = attribute_closure([Attribute("R", "a")], preds)
        assert Attribute("U", "d") in closure

    def test_disconnected_attribute_not_included(self):
        preds = [
            JoinPredicate.of("R.a", "S.b"),
            JoinPredicate.of("T.c", "U.d"),
        ]
        closure = attribute_closure([Attribute("R", "a")], preds)
        assert Attribute("T", "c") not in closure
        assert Attribute("U", "d") not in closure


class TestConnectedComponents:
    def test_single_component(self):
        preds = [JoinPredicate.of("R.a", "S.a"), JoinPredicate.of("S.b", "T.b")]
        comps = connected_components(["R", "S", "T"], preds)
        assert comps == [frozenset({"R", "S", "T"})]

    def test_two_components(self):
        preds = [JoinPredicate.of("R.a", "S.a")]
        comps = connected_components(["R", "S", "T"], preds)
        assert frozenset({"T"}) in comps
        assert frozenset({"R", "S"}) in comps

    def test_isolated_nodes(self):
        comps = connected_components(["R", "S"], [])
        assert len(comps) == 2
