"""Unit tests for the out-of-order arrival subsystem (watermark mode).

The differential harness proves whole-run result equality; these tests pin
the individual mechanisms: config validation, arrival-sequence visibility,
per-stream watermark tracking, bound enforcement, and the late-straggler
join that strict timestamp visibility would miss.
"""

import pytest

from repro.core import (
    ClusterConfig,
    OptimizerConfig,
    Query,
    StatisticsCatalog,
    build_topology,
)
from repro.core.adaptive import AdaptiveController
from repro.core.optimizer import MultiQueryOptimizer
from repro.engine import (
    AdaptiveRuntime,
    Container,
    RuntimeConfig,
    TopologyRuntime,
    input_tuple,
    orient_predicates,
    probe_batch,
)
from repro.core.predicates import JoinPredicate


def small_topology(parallelism: int = 1):
    query = Query.of("q", "R.a=S.a")
    windows = {"R": 4.0, "S": 4.0}
    catalog = StatisticsCatalog(default_selectivity=0.1, default_window=4.0)
    for rel in ("R", "S"):
        catalog.with_rate(rel, 10.0).with_window(rel, windows[rel])
    config = OptimizerConfig(cluster=ClusterConfig(default_parallelism=parallelism))
    optimizer = MultiQueryOptimizer(catalog, config, solver="scipy")
    topology = build_topology(
        optimizer.optimize([query]).plan, catalog, config.cluster
    )
    return query, topology, windows, catalog, config


class TestConfigValidation:
    def test_timed_mode_rejects_disorder(self):
        with pytest.raises(ValueError, match="logical"):
            RuntimeConfig(mode="timed", disorder_bound=1.0)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            RuntimeConfig(disorder_bound=-0.5)

    def test_zero_bound_allowed(self):
        assert RuntimeConfig(disorder_bound=0.0).disorder_bound == 0.0

    def test_adaptive_runtime_accepts_disorder(self):
        """Epoch re-optimization works on watermark-time runtimes: a
        disordered feed crosses an epoch boundary and the late straggler
        still joins (the adaptive runtime used to reject disorder_bound
        outright; the differential suite proves oracle parity)."""
        query, topology, windows, catalog, config = small_topology()
        controller = AdaptiveController(catalog, [query], config, solver="scipy")
        runtime = AdaptiveRuntime(
            controller,
            windows,
            RuntimeConfig(mode="logical", disorder_bound=1.0),
            epoch_length=2.0,
        )
        feed = [
            input_tuple("S", 1.0, {"a": 1}),
            input_tuple("R", 2.5, {"a": 1}),  # crosses into epoch 1
            input_tuple("R", 1.8, {"a": 1}),  # straggler, 0.7 late
        ]
        runtime.run(feed)
        assert runtime.current_epoch == 1
        results = runtime.results("q")
        assert sorted(r.timestamps["R"] for r in results) == [1.8, 2.5]


class TestSeqVisibility:
    def test_merge_propagates_max_seq(self):
        r = input_tuple("R", 2.0, {"a": 1})
        s = input_tuple("S", 5.0, {"a": 1})
        r.seq, s.seq = 7, 3
        assert r.merge(s).seq == 7
        assert s.merge(r).seq == 7

    def test_probe_batch_seq_mode_ignores_event_order(self):
        """A stored partner with a *later* event timestamp but an earlier
        arrival must match in seq mode and must not in timestamp mode."""
        cont = Container()
        stored = input_tuple("S", 9.0, {"a": 1})  # event-later...
        stored.seq = 1  # ...but arrived first
        cont.insert(stored)
        probe = input_tuple("R", 2.0, {"a": 1})
        probe.seq = 2
        oriented = orient_predicates(
            (JoinPredicate.of("R.a", "S.a"),), probe.lineage
        )
        ts_results, _ = probe_batch(cont, (probe,), oriented, {})
        assert ts_results == []  # strict event-time visibility
        seq_results, _ = probe_batch(
            cont, (probe,), oriented, {}, seq_visibility=True
        )
        assert len(seq_results) == 1
        assert seq_results[0].timestamps == {"R": 2.0, "S": 9.0}

    def test_probe_container_forwards_seq_visibility(self):
        from repro.engine import probe_container

        cont = Container()
        stored = input_tuple("S", 9.0, {"a": 1})
        stored.seq = 1
        cont.insert(stored)
        probe = input_tuple("R", 2.0, {"a": 1})
        probe.seq = 2
        preds = (JoinPredicate.of("R.a", "S.a"),)
        assert probe_container(cont, probe, preds, {}) == []
        results = probe_container(cont, probe, preds, {}, seq_visibility=True)
        assert len(results) == 1

    def test_probe_batch_seq_mode_excludes_later_arrivals(self):
        cont = Container()
        stored = input_tuple("S", 1.0, {"a": 1})
        stored.seq = 5
        cont.insert(stored)
        probe = input_tuple("R", 2.0, {"a": 1})
        probe.seq = 4  # arrived before the stored tuple
        oriented = orient_predicates(
            (JoinPredicate.of("R.a", "S.a"),), probe.lineage
        )
        results, _ = probe_batch(
            cont, (probe,), oriented, {}, seq_visibility=True
        )
        assert results == []


class TestWatermarkRuntime:
    def test_late_straggler_still_joins(self):
        """R arrives *after* S despite an earlier event timestamp; the
        result must still be produced (triggered by the late arrival)."""
        query, topology, windows, *_ = small_topology()
        runtime = TopologyRuntime(
            topology, windows, RuntimeConfig(mode="logical", disorder_bound=2.0)
        )
        feed = [
            input_tuple("S", 5.0, {"a": 1}),
            input_tuple("R", 4.0, {"a": 1}),  # straggler, 1.0 late
        ]
        runtime.run(feed)
        results = runtime.results("q")
        assert len(results) == 1
        assert results[0].timestamps == {"R": 4.0, "S": 5.0}

    def test_in_order_mode_rejects_unsorted_feed(self):
        query, topology, windows, *_ = small_topology()
        runtime = TopologyRuntime(topology, windows, RuntimeConfig(mode="logical"))
        feed = [
            input_tuple("S", 5.0, {"a": 1}),
            input_tuple("R", 4.0, {"a": 1}),
        ]
        with pytest.raises(ValueError, match="sorted"):
            runtime.run(feed)

    def test_straggler_beyond_bound_rejected(self):
        query, topology, windows, *_ = small_topology()
        runtime = TopologyRuntime(
            topology, windows, RuntimeConfig(mode="logical", disorder_bound=0.5)
        )
        feed = [
            input_tuple("R", 5.0, {"a": 1}),
            input_tuple("R", 4.0, {"a": 2}),  # 1.0 behind high water
        ]
        with pytest.raises(ValueError, match="disorder_bound"):
            runtime.run(feed)

    def test_watermark_is_min_over_streams_minus_bound(self):
        query, topology, windows, *_ = small_topology()
        runtime = TopologyRuntime(
            topology, windows, RuntimeConfig(mode="logical", disorder_bound=1.0)
        )
        # nothing seen yet: nothing may be evicted
        assert runtime.watermark() == float("-inf")
        runtime.run([input_tuple("R", 5.0, {"a": 1})])
        # S has produced nothing: its stragglers are unbounded
        assert runtime.watermark() == float("-inf")
        runtime.run([input_tuple("S", 3.0, {"a": 1})])
        assert runtime.watermark() == 3.0 - 1.0

    def test_watermark_mode_assigns_increasing_seqs(self):
        query, topology, windows, *_ = small_topology()
        runtime = TopologyRuntime(
            topology, windows, RuntimeConfig(mode="logical", disorder_bound=2.0)
        )
        feed = [
            input_tuple("S", 5.0, {"a": 9}),
            input_tuple("R", 4.0, {"a": 8}),
            input_tuple("S", 4.5, {"a": 7}),
        ]
        runtime.run(feed)
        assert [t.seq for t in feed] == [1, 2, 3]


class TestBareRuntimeLateDrop:
    """`RuntimeConfig(on_late="drop")`: the bare runtime supports the
    session's dead-letter policy directly (previously session-only)."""

    def _feed(self):
        """Watermark-mode feed with two genuine stragglers (bound 1.0)."""
        return [
            input_tuple("R", 5.0, {"a": 1}),
            input_tuple("S", 5.0, {"a": 1}),
            input_tuple("R", 3.5, {"a": 1}),  # late: lags R high 5.0 by 1.5
            input_tuple("S", 4.5, {"a": 1}),  # in bound
            input_tuple("R", 2.0, {"a": 1}),  # late
        ]

    def test_config_validates_policy(self):
        with pytest.raises(ValueError, match="late-tuple policy"):
            RuntimeConfig(on_late="ignore")

    def test_drop_counts_and_skips_stragglers(self):
        query, topology, windows, *_ = small_topology()
        runtime = TopologyRuntime(
            topology,
            windows,
            RuntimeConfig(disorder_bound=1.0, on_late="drop"),
        )
        runtime.run(self._feed())
        assert runtime.metrics.late_dropped == 2
        # dropped tuples were never ingested nor joined
        assert runtime.metrics.inputs_ingested == 3
        # S@5.0 and S@4.5 each join R@5.0 (seq visibility); the dropped
        # R stragglers produce nothing
        assert len(runtime.results("q")) == 2

    def test_raise_is_still_the_default(self):
        from repro.engine import LateArrivalError

        query, topology, windows, *_ = small_topology()
        runtime = TopologyRuntime(
            topology, windows, RuntimeConfig(disorder_bound=1.0)
        )
        with pytest.raises(LateArrivalError):
            runtime.run(self._feed())

    def test_late_dropped_parity_with_session(self):
        """The bare runtime's drop policy and the session's produce the
        same `late_dropped` count and the same result set on one feed."""
        from repro import JoinSession
        from repro.engine import result_keys

        query, topology, windows, *_ = small_topology()
        runtime = TopologyRuntime(
            topology,
            windows,
            RuntimeConfig(disorder_bound=1.0, on_late="drop"),
        )
        runtime.run(self._feed())

        session = JoinSession(window=4.0, disorder_bound=1.0, on_late="drop")
        session.add_query("q", "R.a=S.a")
        for tup in self._feed():
            session.push(tup.trigger, {"a": tup.values[f"{tup.trigger}.a"]},
                         ts=tup.trigger_ts)
        session.flush()
        assert session.metrics.late_dropped == runtime.metrics.late_dropped == 2
        assert result_keys(session.results("q")) == result_keys(
            runtime.results("q")
        )
        assert (
            session.metrics.inputs_ingested == runtime.metrics.inputs_ingested
        )
