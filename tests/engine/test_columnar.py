"""Columnar store backend: layout, growth, eviction, and probe parity.

Unit-level contract of :class:`repro.engine.columnar.ColumnarContainer`:
it must be observationally identical to the dict-backed ``Container``
(same results, same ``checked`` bookkeeping, same freed widths) while its
internal column machinery follows the documented policy — lazy one-off
column activation, chunked append-only growth, bucket-sliced eviction
that compresses instead of rebuilding.  Differential coverage at the
engine level lives in ``test_differential.py`` (backend axis).
"""

import random

import pytest

from repro.core.predicates import JoinPredicate
from repro.engine.columnar import MIN_CAPACITY, ColumnarContainer
from repro.engine.stores import (
    Container,
    StoreBackend,
    StoreTask,
    make_backend,
    orient_predicates,
    probe_batch,
)
from repro.engine.tuples import input_tuple


def s_tuple(ts, a, b=0, seq=0):
    tup = input_tuple("S", ts, {"a": a, "b": b})
    tup.seq = seq
    return tup


PREDS = (JoinPredicate.of("R.a", "S.a"),)
PREDS2 = (JoinPredicate.of("R.a", "S.a"), JoinPredicate.of("R.b", "S.b"))
ORIENTED = orient_predicates(PREDS, {"R"})
ORIENTED2 = orient_predicates(PREDS2, {"R"})
WINDOWS = {"R": 10.0, "S": 10.0}


class TestBackendPlumbing:
    def test_make_backend_names(self):
        assert isinstance(make_backend("python", 1.0), Container)
        assert isinstance(make_backend("columnar", 1.0), ColumnarContainer)
        with pytest.raises(ValueError, match="unknown store backend"):
            make_backend("rust", 1.0)

    def test_both_backends_satisfy_the_protocol(self):
        assert isinstance(Container(), StoreBackend)
        assert isinstance(ColumnarContainer(), StoreBackend)

    def test_store_task_creates_configured_backend(self):
        task = StoreTask(
            store_id="S", task_index=0, retention=8.0, backend="columnar"
        )
        assert isinstance(task.container(0), ColumnarContainer)
        # default stays the python container
        task2 = StoreTask(store_id="S", task_index=0, retention=8.0)
        assert isinstance(task2.container(0), Container)

    def test_probe_batch_dispatches_to_vectorized_path(self):
        cont = ColumnarContainer(bucket_width=1.0)
        cont.insert(s_tuple(1.0, a=7))
        probe = input_tuple("R", 2.0, {"a": 7})
        results, checked = probe_batch(cont, (probe,), ORIENTED, WINDOWS)
        assert len(results) == 1 and checked == 1
        assert results[0].values["S.a"] == 7


class TestColumnarLayout:
    def test_len_and_iteration_order(self):
        cont = ColumnarContainer(bucket_width=2.0)
        for ts in (5.0, 1.0, 3.0, 1.5):
            cont.insert(s_tuple(ts, a=int(ts)))
        assert len(cont) == 4
        # bucket-ordered, then arrival-ordered within a bucket
        assert [t.latest_ts for t in cont.iter_tuples()] == [1.0, 1.5, 3.0, 5.0]
        assert len(cont.tuples) == 4

    def test_chunked_growth_beyond_min_capacity(self):
        cont = ColumnarContainer(bucket_width=None)  # single bucket
        n = MIN_CAPACITY * 3 + 5
        for i in range(n):
            cont.insert(s_tuple(float(i) / n, a=i % 7))
        assert len(cont) == n
        probe = input_tuple("R", 2.0, {"a": 3})
        results, _ = probe_batch(cont, (probe,), ORIENTED, WINDOWS, 10.0)
        assert len(results) == len([i for i in range(n) if i % 7 == 3])

    def test_column_built_once_and_maintained_incrementally(self):
        cont = ColumnarContainer(bucket_width=1.0)
        for i in range(20):
            cont.insert(s_tuple(i * 0.5, a=i % 3))
        probe = input_tuple("R", 50.0, {"a": 1})
        probe_batch(cont, (probe,), ORIENTED, {"R": 100.0, "S": 100.0}, 100.0)
        assert cont.column_builds == 1
        # inserts after activation maintain the column without a rebuild,
        # including into freshly created buckets
        cont.insert(s_tuple(30.0, a=1))
        results, _ = probe_batch(
            cont, (probe,), ORIENTED, {"R": 100.0, "S": 100.0}, 100.0
        )
        assert cont.column_builds == 1
        assert sum(1 for r in results if r.timestamps["S"] == 30.0) == 1

    def test_none_values_join_like_the_dict_backend(self):
        """``None`` is an ordinary joinable key (``index[None]`` parity)."""
        py, col = Container(bucket_width=1.0), ColumnarContainer(bucket_width=1.0)
        for cont in (py, col):
            cont.insert(s_tuple(1.0, a=None))
            cont.insert(s_tuple(1.2, a=5))
        probe = input_tuple("R", 2.0, {"a": None})
        for cont in (py, col):
            results, _ = probe_batch(cont, (probe,), ORIENTED, WINDOWS, 10.0)
            assert len(results) == 1
            assert results[0].timestamps["S"] == 1.0


class TestColumnarEviction:
    def test_eviction_parity_with_python_backend(self):
        py, col = Container(bucket_width=2.0), ColumnarContainer(bucket_width=2.0)
        for ts in [0.5, 1.0, 2.5, 3.0, 4.9, 5.0, 7.7]:
            py.insert(s_tuple(ts, a=1))
            col.insert(s_tuple(ts, a=1))
        assert py.evict_older_than(5.0) == col.evict_older_than(5.0)
        assert len(py) == len(col) == 2
        assert [t.latest_ts for t in col.iter_tuples()] == [5.0, 7.7]
        # idempotent
        assert col.evict_older_than(5.0) == 0

    def test_eviction_never_rebuilds_columns(self):
        cont = ColumnarContainer(bucket_width=1.0)
        for i in range(40):
            cont.insert(s_tuple(i * 0.25, a=i % 4))
        probe = input_tuple("R", 100.0, {"a": 2})
        wide = {"R": 100.0, "S": 100.0}
        probe_batch(cont, (probe,), ORIENTED, wide, 100.0)
        assert cont.column_builds == 1
        for horizon in (2.0, 4.5, 6.25, 9.0):
            cont.evict_older_than(horizon)
            results, _ = probe_batch(cont, (probe,), ORIENTED, wide, 100.0)
            expected = [
                i for i in range(40) if i % 4 == 2 and i * 0.25 >= horizon
            ]
            assert len(results) == len(expected)
        assert cont.column_builds == 1

    def test_boundary_bucket_is_compressed_not_dropped(self):
        cont = ColumnarContainer(bucket_width=2.0)
        for ts in (4.1, 4.9, 5.3, 5.9):  # all in bucket 2
            cont.insert(s_tuple(ts, a=9))
        freed = cont.evict_older_than(5.0)
        assert freed == 2 and len(cont) == 2
        assert [t.latest_ts for t in cont.iter_tuples()] == [5.3, 5.9]

    def test_empty_container_and_infinite_retention(self):
        cont = ColumnarContainer(bucket_width=None)
        assert cont.evict_older_than(10.0) == 0
        cont.insert(s_tuple(1.0, a=1))
        assert cont.evict_older_than(0.5) == 0
        assert cont.evict_older_than(2.0) == 1
        assert len(cont) == 0


class TestColumnarProbing:
    def test_seq_visibility_vectorized(self):
        cont = ColumnarContainer(bucket_width=1.0)
        # later event time but earlier arrival: visible under seq rule only
        cont.insert(s_tuple(5.0, a=1, seq=1))
        cont.insert(s_tuple(2.0, a=1, seq=3))
        probe = input_tuple("R", 3.0, {"a": 1})
        probe.seq = 2
        ordered, _ = probe_batch(cont, (probe,), ORIENTED, WINDOWS, 10.0, False)
        assert [r.timestamps["S"] for r in ordered] == [2.0]
        watermark, _ = probe_batch(cont, (probe,), ORIENTED, WINDOWS, 10.0, True)
        assert [r.timestamps["S"] for r in watermark] == [5.0]

    def test_non_uniform_windows_use_min_pairwise_bound(self):
        cont = ColumnarContainer(bucket_width=1.0)
        cont.insert(s_tuple(0.0, a=1))
        probe = input_tuple("R", 4.0, {"a": 1})
        # min(R=10, S=3) = 3 < 4: excluded; min(R=10, S=5) = 5 > 4: match
        tight, _ = probe_batch(cont, (probe,), ORIENTED, {"R": 10.0, "S": 3.0})
        assert tight == []
        loose, _ = probe_batch(cont, (probe,), ORIENTED, {"R": 10.0, "S": 5.0})
        assert len(loose) == 1

    def test_predicate_free_probe_scans_everything(self):
        cont = ColumnarContainer(bucket_width=1.0)
        for ts in (1.0, 1.5, 2.0):
            cont.insert(s_tuple(ts, a=ts))
        probe = input_tuple("R", 3.0, {"x": 0})
        results, checked = probe_batch(cont, (probe,), (), WINDOWS, 10.0)
        assert len(results) == 3 and checked == 3

    @pytest.mark.parametrize("uniform", [None, 4.0])
    @pytest.mark.parametrize("seq_visibility", [False, True])
    def test_randomized_parity_with_python_backend(self, uniform, seq_visibility):
        """1.5k random inserts/probes/evictions: identical results, checked
        counts, and freed widths across both backends."""
        rng = random.Random(17 * (2 if uniform else 1) + int(seq_visibility))
        py, col = Container(bucket_width=1.0), ColumnarContainer(bucket_width=1.0)
        windows = {"R": 4.0, "S": 4.0} if uniform else {"R": 5.0, "S": 3.0}
        t = 0.0
        for i in range(1500):
            t += rng.random() * 0.05
            tup = s_tuple(t, a=rng.randrange(5), b=rng.randrange(6), seq=i + 1)
            py.insert(tup)
            col.insert(tup)
            if i % 5 == 0:
                probe = input_tuple(
                    "R",
                    t + rng.random(),
                    {"a": rng.randrange(5), "b": rng.randrange(6)},
                )
                probe.seq = i + 2
                r1, c1 = probe_batch(
                    py, (probe,), ORIENTED2, windows, uniform, seq_visibility
                )
                r2, c2 = probe_batch(
                    col, (probe,), ORIENTED2, windows, uniform, seq_visibility
                )
                assert sorted(x.key() for x in r1) == sorted(x.key() for x in r2)
                assert c1 == c2
            if i % 40 == 39:
                assert py.evict_older_than(t - 6.0) == col.evict_older_than(t - 6.0)
                assert len(py) == len(col)
        assert sorted(x.key() for x in py.iter_tuples()) == sorted(
            x.key() for x in col.iter_tuples()
        )


class TestVectorBatch:
    """Unit contract of the hop-to-hop vector carriage: lifting, lazy
    materialization, and exact parity of ``probe_batch_vector`` with the
    materializing probe path."""

    def test_from_tuples_round_trip(self):
        from repro.engine.columnar import VectorBatch

        tups = [s_tuple(1.0, a=1, seq=3), s_tuple(2.0, a=2, seq=5)]
        vb = VectorBatch.from_tuples(tups)
        assert len(vb) == 2
        assert vb.materialize() == tups  # single-part chains: the inputs
        assert vb.values_of("S.a") == [1, 2]
        assert vb.values_of("S.missing") == [None, None]
        assert vb.trigger.tolist() == [1.0, 2.0]
        assert vb.seq.tolist() == [3, 5]
        assert vb.lineage == frozenset({"S"})

    def test_chain_materialization_matches_tuple_merge(self):
        from repro.engine.columnar import VectorBatch

        r = input_tuple("R", 2.0, {"a": 7, "b": 4})
        r.seq = 5
        s = s_tuple(1.0, a=7, b=4, seq=2)
        cont = ColumnarContainer(bucket_width=1.0)
        cont.insert(s)
        out, checked = cont.probe_batch_vector(
            VectorBatch.from_tuples([r]), ORIENTED, 10.0
        )
        assert checked == 1 and len(out) == 1
        merged = out.materialize()[0]
        expected = r.merge(s)
        assert merged.values == expected.values
        assert merged.timestamps == expected.timestamps
        assert merged.seq == expected.seq == 5
        assert merged.trigger == "R"
        assert out.latest.tolist() == [expected.latest_ts]
        assert out.earliest.tolist() == [expected.earliest_ts]
        assert out.lineage == frozenset({"R", "S"})

    @pytest.mark.parametrize("seq_visibility", [False, True])
    def test_vector_probe_parity_randomized(self, seq_visibility):
        """``probe_batch_vector`` == ``probe_batch`` over materialized
        probes: same results, same order, same checked counts."""
        from repro.engine.columnar import VectorBatch

        rng = random.Random(99 + int(seq_visibility))
        cont = ColumnarContainer(bucket_width=1.0)
        t = 0.0
        for i in range(300):
            t += rng.random() * 0.1
            cont.insert(
                s_tuple(t, a=rng.randrange(4), b=rng.randrange(5), seq=i + 1)
            )
        probes = []
        for _ in range(40):
            p = input_tuple(
                "R",
                rng.uniform(1.0, t + 1.0),
                {"a": rng.randrange(5), "b": rng.randrange(6)},
            )
            p.seq = rng.randrange(1, 320)
            probes.append(p)
        expected, c1 = probe_batch(
            cont,
            tuple(probes),
            ORIENTED2,
            {"R": 4.0, "S": 4.0},
            4.0,
            seq_visibility,
        )
        vb, c2 = cont.probe_batch_vector(
            VectorBatch.from_tuples(probes), ORIENTED2, 4.0, seq_visibility
        )
        got = [] if vb is None else vb.materialize()
        assert c1 == c2
        assert [g.key() for g in got] == [e.key() for e in expected]

    def test_empty_vector_probe_builds_no_columns(self):
        """Zero-survivor guard: probing an empty store must not activate
        lazy columns (downstream stores of an all-miss hop stay cold)."""
        from repro.engine.columnar import VectorBatch

        cont = ColumnarContainer(bucket_width=1.0)
        out, checked = cont.probe_batch_vector(
            VectorBatch.from_tuples([input_tuple("R", 1.0, {"a": 1})]),
            ORIENTED,
            10.0,
        )
        assert out is None and checked == 0
        assert cont.column_builds == 0

    def test_empty_python_container_probe_builds_no_index(self):
        """Same guard on the dict backend: no hash index on an empty store."""
        cont = Container(bucket_width=1.0)
        probe = input_tuple("R", 1.0, {"a": 1})
        results, checked = probe_batch(cont, (probe,), ORIENTED, WINDOWS)
        assert results == [] and checked == 0
        assert cont.index_rebuilds == 0


class TestAutoBackendPlumbing:
    def test_auto_is_a_config_name_not_a_container(self):
        from repro.engine.stores import check_backend_name

        check_backend_name("auto")  # accepted at config level
        with pytest.raises(ValueError, match="unknown store backend"):
            make_backend("auto", 1.0)  # but never a concrete container

    def test_store_task_auto_bootstraps_python_and_switches(self):
        task = StoreTask(
            store_id="S", task_index=0, retention=8.0, backend="auto"
        )
        assert task.effective_backend == "python"
        assert isinstance(task.container(0), Container)
        task.container(0).insert(s_tuple(1.0, a=1))
        assert task.switch_backend("columnar") is True
        assert task.effective_backend == "columnar"
        assert isinstance(task.containers[0], ColumnarContainer)
        assert len(task.containers[0]) == 1  # state migrated, not dropped
        assert task.switch_backend("columnar") is False  # idempotent

    def test_preferred_backend_thresholds(self):
        task = StoreTask(
            store_id="S",
            task_index=0,
            retention=8.0,
            backend="auto",
            auto_width_threshold=2,
            auto_probe_threshold=3,
        )
        assert task.preferred_backend() == "python"  # cold store
        task.container(0).insert(s_tuple(1.0, a=1))
        task.container(0).insert(s_tuple(1.1, a=2))
        assert task.preferred_backend() == "python"  # wide but unprobed
        task.probes_seen = 3
        assert task.preferred_backend() == "columnar"
