"""Property tests: structural store snapshots preserve observable behaviour.

The checkpoint subsystem dumps store containers *structurally* (buckets,
pending-recent lists, and hash-index candidate order verbatim; columnar
arrays as ``np.save`` buffers) instead of re-inserting tuples, so a
restored container must be observationally identical to the original:
same probe results in the same order, same ``checked`` candidate counts,
and the same eviction boundaries.  These properties are exercised on
randomized windows over both backends through the exact channel the
session checkpoint uses (``dump_state`` → pickle → ``load_container``).
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicates import JoinPredicate
from repro.engine.columnar import ColumnarContainer
from repro.engine.stores import (
    Container,
    StoreTask,
    load_container,
    orient_predicates,
    probe_batch,
)
from repro.engine.tuples import input_tuple

PREDS = (JoinPredicate.of("R.a", "S.a"),)
ORIENTED = orient_predicates(PREDS, {"R"})


def stored(ts, a, b, seq):
    tup = input_tuple("S", ts, {"a": a, "b": b})
    tup.seq = seq
    return tup


def probing(ts, a, seq):
    tup = input_tuple("R", ts, {"a": a})
    tup.seq = seq
    return tup


# (ts deci-ticks, join key) pairs; keys collide on purpose so hash-index
# candidate lists hold several tuples whose order must survive the dump
entries_strategy = st.lists(
    st.tuples(st.integers(0, 400), st.integers(0, 4)), min_size=0, max_size=60
)
probes_strategy = st.lists(
    st.tuples(st.integers(0, 450), st.integers(0, 4)), min_size=1, max_size=15
)
window_strategy = st.sampled_from([2.0, 5.0, 10.0, 25.0])


def build_container(backend, window, entries):
    cls = Container if backend == "python" else ColumnarContainer
    cont = cls(bucket_width=window / 16.0)
    for seq, (ticks, key) in enumerate(entries):
        cont.insert(stored(ticks / 10.0, key, key % 2, seq))
    return cont


def roundtrip(cont):
    state = pickle.loads(pickle.dumps(cont.dump_state()))
    return load_container(state)


class TestContainerRoundtrip:
    @given(
        entries=entries_strategy,
        probes=probes_strategy,
        window=window_strategy,
        seq_visibility=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_python_backend_probe_parity(
        self, entries, probes, window, seq_visibility
    ):
        self._check_backend("python", entries, probes, window, seq_visibility)

    @given(
        entries=entries_strategy,
        probes=probes_strategy,
        window=window_strategy,
        seq_visibility=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_columnar_backend_probe_parity(
        self, entries, probes, window, seq_visibility
    ):
        self._check_backend("columnar", entries, probes, window, seq_visibility)

    def _check_backend(self, backend, entries, probes, window, seq_visibility):
        windows = {"R": window, "S": window}
        original = build_container(backend, window, entries)
        clone = roundtrip(original)
        assert type(clone) is type(original)
        assert len(clone) == len(original)
        assert [t.latest_ts for t in clone.iter_tuples()] == [
            t.latest_ts for t in original.iter_tuples()
        ]
        probe_tuples = [
            probing(ticks / 10.0, key, 10_000 + i)
            for i, (ticks, key) in enumerate(probes)
        ]
        res_a, checked_a = probe_batch(
            original, probe_tuples, ORIENTED, windows,
            seq_visibility=seq_visibility,
        )
        res_b, checked_b = probe_batch(
            clone, probe_tuples, ORIENTED, windows,
            seq_visibility=seq_visibility,
        )
        # identical results in identical order, identical candidate work
        assert checked_b == checked_a
        assert [r.key() for r in res_b] == [r.key() for r in res_a]

    @given(
        entries=entries_strategy,
        window=window_strategy,
        horizon_ticks=st.integers(0, 450),
    )
    @settings(max_examples=25, deadline=None)
    def test_eviction_boundaries_survive_both_backends(
        self, entries, window, horizon_ticks
    ):
        horizon = horizon_ticks / 10.0
        for backend in ("python", "columnar"):
            original = build_container(backend, window, entries)
            clone = roundtrip(original)
            assert clone.evict_older_than(horizon) == original.evict_older_than(
                horizon
            )
            assert len(clone) == len(original)
            assert [t.latest_ts for t in clone.iter_tuples()] == [
                t.latest_ts for t in original.iter_tuples()
            ]


class TestStoreTaskRoundtrip:
    @given(
        entries=entries_strategy,
        probes=probes_strategy,
        backend=st.sampled_from(["python", "columnar"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_task_state_and_probe_parity(self, entries, probes, backend):
        windows = {"R": 10.0, "S": 10.0}
        task = StoreTask(
            store_id="S", task_index=0, retention=12.0, backend=backend
        )
        for seq, (ticks, key) in enumerate(entries):
            task.insert(0, stored(ticks / 10.0, key, key % 2, seq))
        state = pickle.loads(pickle.dumps(task.dump_state()))
        clone = StoreTask.from_state(state)
        assert clone.stored_tuples() == task.stored_tuples()
        assert clone.backend == task.backend
        assert clone.retention == task.retention
        probe_tuples = [
            probing(ticks / 10.0, key, 10_000 + i)
            for i, (ticks, key) in enumerate(probes)
        ]
        if entries:
            res_a, checked_a = probe_batch(
                task.container(0), probe_tuples, ORIENTED, windows
            )
            res_b, checked_b = probe_batch(
                clone.container(0), probe_tuples, ORIENTED, windows
            )
            assert checked_b == checked_a
            assert [r.key() for r in res_b] == [r.key() for r in res_a]
        # eviction picks up where the original left off
        now = 100.0
        assert clone.evict(now) == task.evict(now)
        assert clone.stored_tuples() == task.stored_tuples()
