"""JoinSession facade: error paths, push semantics, and the online
add/remove differential harness.

The online tests are the session-level extension of
``test_differential.py``: seeded workloads where a query is *added* and
another *removed* mid-stream must match the brute-force reference
restricted to each query's active arrival interval — across ordered
(logical) and bounded out-of-order (watermark) modes.  The acceptance
scenario additionally proves that shared store state *survives* the rewire
(containers are the same objects, ``preserved_tuples`` > 0) instead of
being rebuilt.
"""

import random

import pytest

from repro import (
    CrossProductError,
    DuplicateQueryError,
    EngineFailedError,
    JoinSession,
    LateTupleError,
    Query,
    RuntimeConfig,
    SessionError,
    StatisticsCatalog,
    TopologyRuntime,
    UnknownQueryError,
    UnknownRelationError,
    build_topology,
)
from repro.core import ClusterConfig, MultiQueryOptimizer, OptimizerConfig
from repro.core.adaptive import diff_topologies
from repro.engine import reference_join, result_keys
from repro.streams import (
    StreamSpec,
    bounded_delay_feed,
    generate_into,
    generate_streams,
    replay,
    uniform_domain,
)

ATTRS = {
    "R": ["a"],
    "S": ["a", "b"],
    "T": ["b", "c"],
    "U": ["c", "d"],
    "V": ["d"],
}
CHAIN_PREDICATES = ["R.a=S.a", "S.b=T.b", "T.c=U.c", "U.d=V.d"]


def chain_specs(relations, rate, domain):
    return [
        StreamSpec(
            relation=rel,
            rate=rate,
            attributes={a: uniform_domain(domain) for a in ATTRS[rel]},
        )
        for rel in relations
    ]


def basic_session(**kwargs):
    kwargs.setdefault("window", 2.5)
    kwargs.setdefault("solver", "scipy")
    return (
        JoinSession(**kwargs)
        .add_query("q1", "R.a=S.a", "S.b=T.b")
        .add_query("q2", "S.b=T.b", "T.c=U.c")
    )


class TestSessionErrors:
    """Every misuse raises a precise, typed, documented exception."""

    def test_push_unregistered_relation(self):
        session = basic_session()
        with pytest.raises(UnknownRelationError, match="'Z' is not read"):
            session.push("Z", {"x": 1}, ts=0.5)

    def test_push_with_no_queries(self):
        session = JoinSession()
        with pytest.raises(UnknownRelationError):
            session.push("R", {"a": 1}, ts=0.0)

    def test_ordered_mode_rejects_backwards_timestamps(self):
        session = basic_session()
        session.push("R", {"a": 1}, ts=5.0)
        with pytest.raises(LateTupleError, match="sorted by timestamp"):
            session.push("S", {"a": 1, "b": 1}, ts=4.0)

    def test_watermark_mode_rejects_straggler_beyond_bound(self):
        session = basic_session(disorder_bound=1.0)
        session.push("R", {"a": 1}, ts=5.0)
        session.push("R", {"a": 2}, ts=4.5)  # within the bound: fine
        with pytest.raises(LateTupleError, match="exceeding disorder_bound"):
            session.push("R", {"a": 3}, ts=3.5)

    def test_remove_unknown_query(self):
        session = basic_session()
        with pytest.raises(UnknownQueryError, match="'nope' is not installed"):
            session.remove_query("nope")

    def test_add_query_cross_product(self):
        session = basic_session()
        with pytest.raises(CrossProductError, match="cross product"):
            session.add_query("qx", "R.a=S.a", "T.b=U.b")

    def test_add_duplicate_query_name(self):
        session = basic_session()
        with pytest.raises(DuplicateQueryError, match="already installed"):
            session.add_query("q1", "R.a=S.a")

    def test_results_of_never_installed_query(self):
        session = basic_session()
        with pytest.raises(UnknownQueryError, match="never installed"):
            session.results("ghost")

    def test_verify_rejects_duplicate_timestamps_under_churn(self):
        """Duplicate per-relation event timestamps make the arrival-seq
        oracle ambiguous once the query set changed mid-stream — verify()
        refuses loudly instead of returning a silently wrong verdict."""
        session = basic_session()
        session.push("R", {"a": 1}, ts=1.0)
        session.push("R", {"a": 2}, ts=1.0)  # same (relation, ts)
        assert session.verify().ok  # no churn: still well-defined
        session.add_query("q3", "S.b=T.b")
        with pytest.raises(SessionError, match="shared an event timestamp"):
            session.verify()

    def test_verify_requires_history(self):
        session = basic_session(record_streams=False)
        session.push("R", {"a": 1}, ts=0.0)
        with pytest.raises(SessionError, match="record_streams"):
            session.verify()

    def test_timed_runtime_config_rejected(self):
        with pytest.raises(ValueError, match="logical mode"):
            JoinSession(runtime_config=RuntimeConfig(mode="timed"))

    def test_push_intermediate_tuple_rejected(self):
        session = basic_session()
        session.push("R", {"a": 1}, ts=0.1)
        session.push("S", {"a": 1, "b": 2}, ts=0.2)
        session.push("T", {"b": 2, "c": 3}, ts=0.3)
        (result,) = session.results("q1")
        with pytest.raises(SessionError, match="raw input tuples"):
            session.push_batch([result])


class TestLateTuplePolicy:
    """``on_late="drop"``: stragglers are counted, not fatal."""

    def test_session_default_drop_counts_and_continues(self):
        session = basic_session(on_late="drop")
        session.push("R", {"a": 1}, ts=5.0)
        session.push("S", {"a": 1, "b": 1}, ts=4.0)  # late: dropped
        session.push("S", {"a": 1, "b": 1}, ts=6.0)  # fine
        assert session.metrics.late_dropped == 1
        assert session.pushed == 2  # the straggler was never ingested

    def test_per_push_override_beats_session_default(self):
        session = basic_session()  # default on_late="raise"
        session.push("R", {"a": 1}, ts=5.0)
        session.push("S", {"a": 1, "b": 1}, ts=4.0, on_late="drop")
        assert session.metrics.late_dropped == 1
        with pytest.raises(LateTupleError):
            session.push("S", {"a": 1, "b": 1}, ts=4.0)
        # and the other direction: a drop-default session can raise per push
        strict = basic_session(on_late="drop")
        strict.push("R", {"a": 1}, ts=5.0)
        with pytest.raises(LateTupleError):
            strict.push("S", {"a": 1, "b": 1}, ts=4.0, on_late="raise")

    def test_watermark_mode_drops_beyond_bound_only(self):
        session = basic_session(disorder_bound=1.0, on_late="drop")
        session.push("R", {"a": 1}, ts=5.0)
        session.push("R", {"a": 2}, ts=4.5)  # within bound: ingested
        session.push("R", {"a": 3}, ts=3.5)  # beyond bound: dropped
        assert session.metrics.late_dropped == 1
        assert session.pushed == 2

    def test_dropped_tuples_invisible_to_results_and_oracle(self):
        session = basic_session(on_late="drop")
        session.push("R", {"a": 1}, ts=1.0)
        session.push("S", {"a": 1, "b": 2}, ts=1.5)
        session.push("T", {"b": 2, "c": 3}, ts=2.0)
        # a straggling S partner that *would* complete a second q1 result
        session.push("S", {"a": 1, "b": 2}, ts=1.2)
        assert session.metrics.late_dropped == 1
        assert len(session.results("q1")) == 1
        report = session.verify()
        assert report.ok, report.describe()

    def test_warmup_drops_fold_into_metrics(self):
        session = (
            JoinSession(window=2.5, solver="scipy", warmup=3, on_late="drop")
            .add_query("q1", "R.a=S.a", "S.b=T.b")
        )
        session.push("R", {"a": 1}, ts=2.0)
        session.push("R", {"a": 2}, ts=1.0)  # late while buffering: dropped
        assert session.metrics is None  # still warming up
        session.push("S", {"a": 1, "b": 1}, ts=2.5)
        session.push("T", {"b": 1, "c": 1}, ts=3.0)  # warmup complete
        assert session.metrics is not None
        assert session.metrics.late_dropped == 1
        assert session.verify().ok

    def test_push_batch_applies_policy_to_whole_batch(self):
        session = basic_session()
        session.push_batch(
            [
                ("R", {"a": 1}, 5.0),
                ("S", {"a": 1, "b": 1}, 4.0),  # late
                ("T", {"b": 1, "c": 1}, 6.0),
            ],
            on_late="drop",
        )
        assert session.metrics.late_dropped == 1
        assert session.pushed == 2

    def test_drop_policy_does_not_swallow_cascade_errors(self):
        """Only the arrival-order rejection is suppressed: a ValueError
        raised *inside* the processing cascade (here: a subscriber) must
        propagate even under on_late="drop", never count as late_dropped."""
        session = basic_session(on_late="drop")

        def exploding(_result):
            raise ValueError("subscriber blew up")

        session.subscribe("q1", exploding)
        session.push("R", {"a": 1}, ts=1.0)
        session.push("S", {"a": 1, "b": 2}, ts=1.5)
        with pytest.raises(ValueError, match="subscriber blew up"):
            # completes the q1 triple -> the cascade emits -> callback raises
            session.push("T", {"b": 2, "c": 3}, ts=2.0)
            session.flush()
        assert session.metrics.late_dropped == 0

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown late-tuple policy"):
            JoinSession(on_late="side-output")
        session = basic_session()
        session.push("R", {"a": 1}, ts=1.0)
        with pytest.raises(ValueError, match="unknown late-tuple policy"):
            session.push("R", {"a": 1}, ts=2.0, on_late="ignore")


class TestStoreBackendKnob:
    """`store_backend` threads through to every store task."""

    def test_columnar_session_matches_python_session(self):
        streams, feed = generate_streams(
            chain_specs("RST", 15.0, 5), duration=5.0, seed=3
        )
        results = {}
        for backend in ("python", "columnar"):
            session = JoinSession(
                window=2.0, solver="scipy", store_backend=backend
            ).add_query("q1", "R.a=S.a", "S.b=T.b")
            replay(session, (t for t in feed if t.trigger in session.relations))
            assert session.verify().ok
            results[backend] = result_keys(session.results("q1"))
        assert results["python"] == results["columnar"]

    def test_conflicting_backend_config_rejected(self):
        with pytest.raises(ValueError, match="store_backend given both"):
            JoinSession(
                store_backend="columnar",
                runtime_config=RuntimeConfig(mode="logical"),
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown store backend"):
            JoinSession(store_backend="gpu")


class TestSessionBasics:
    def test_matches_manual_wiring(self):
        """The facade produces exactly the result sets of the five-step
        manual pipeline (which keeps working unchanged)."""
        queries = [
            Query.of("q1", "R.a=S.a", "S.b=T.b"),
            Query.of("q2", "S.b=T.b", "T.c=U.c"),
        ]
        windows = {rel: 2.5 for rel in "RSTU"}
        streams, inputs = generate_streams(
            chain_specs("RSTU", 8.0, 5), duration=5.0, seed=3
        )

        catalog = StatisticsCatalog(default_selectivity=0.01, default_window=2.5)
        for rel in windows:
            catalog.with_rate(rel, 8.0).with_window(rel, 2.5)
        config = OptimizerConfig(cluster=ClusterConfig(default_parallelism=1))
        optimizer = MultiQueryOptimizer(catalog, config, solver="scipy")
        topology = build_topology(optimizer.optimize(queries).plan, catalog, config.cluster)
        runtime = TopologyRuntime(topology, windows, RuntimeConfig(mode="logical"))
        runtime.run(inputs)

        session = JoinSession(window=2.5, solver="scipy")
        for query in queries:
            session.add_query(query)
        for rel in windows:
            session.with_rate(rel, 8.0)
        replay(session, inputs)

        for query in queries:
            assert result_keys(session.results(query.name)) == result_keys(
                runtime.results(query.name)
            )

    def test_subscribe_callback_receives_all_results(self):
        session = basic_session()
        seen = []
        session.subscribe("q1", seen.append)
        generate_into(session, chain_specs("RSTU", 8.0, 5), duration=4.0, seed=4)
        session.flush()
        assert result_keys(seen) == result_keys(session.results("q1"))
        assert seen, "workload should produce q1 results"

    def test_take_cursor_drains_incrementally(self):
        session = basic_session()
        streams, inputs = generate_streams(
            chain_specs("RSTU", 8.0, 5), duration=4.0, seed=5
        )
        half = len(inputs) // 2
        replay(session, inputs[:half])
        first = session.take("q1")
        replay(session, inputs[half:])
        second = session.take("q1")
        assert len(first) + len(second) == len(session.results("q1"))
        assert not session.take("q1")

    def test_warmup_plans_from_observed_statistics(self):
        """With warmup, the first plan sees measured rates — no declared
        statistics needed at all (the bootstrapping gap)."""
        session = basic_session(warmup=40, default_rate=999.0)
        streams, inputs = generate_streams(
            chain_specs("RSTU", 6.0, 5), duration=4.0, seed=6
        )
        for tup in inputs[:39]:
            session.push_batch((tup,))
        assert session.plan is None  # still buffering
        assert session.results("q1") == []
        replay(session, inputs[39:])
        assert session.plan is not None
        # observed rates (~6/s), not the absurd declared default
        assert session.catalog.rate("R") < 50.0
        assert session.verify(raise_on_mismatch=True).ok

    def test_churn_during_warmup_ends_it_with_correct_intervals(self):
        """Mutating the query set mid-warmup flushes the buffered prefix
        under the pre-churn plan: a query removed during warmup keeps the
        results its interval covers, one added during warmup claims none of
        the earlier tuples."""
        session = basic_session(warmup=50)
        session.push("S", {"a": 1, "b": 1}, ts=0.1)
        session.push("T", {"b": 1, "c": 1}, ts=0.2)
        session.push("U", {"c": 1, "d": 1}, ts=0.3)
        session.remove_query("q2")  # ends warmup; the S⋈T⋈U result is q2's
        session.push("R", {"a": 1}, ts=0.4)  # completes q1 post-churn
        assert session.verify(raise_on_mismatch=True).ok
        assert len(session.results("q2")) == 1  # the pre-removal result
        assert len(session.results("q1")) == 1

        session2 = basic_session(warmup=50)
        session2.push("R", {"a": 2}, ts=0.1)
        session2.push("S", {"a": 2, "b": 9}, ts=0.2)
        session2.add_query("q3", "R.a=S.a")  # must NOT claim the earlier pair
        session2.push("S", {"a": 2, "b": 8}, ts=0.3)
        assert session2.verify(raise_on_mismatch=True).ok
        assert len(session2.results("q3")) == 1  # only the post-add pair

    def test_per_query_windows_rejected(self):
        session = basic_session()
        with pytest.raises(SessionError, match="with_window"):
            session.add_query(Query.of("qw", "R.a=S.a", windows={"R": 0.5}))

    def test_with_window_frozen_after_start(self):
        session = basic_session()
        session.push("R", {"a": 1}, ts=0.0)
        with pytest.raises(SessionError, match="fixed once the session is running"):
            session.with_window("R", 1.0)

    def test_builders_chain(self):
        session = JoinSession()
        assert session.with_rate("R", 1.0) is session
        assert session.with_window("R", 2.0) is session
        assert session.with_selectivity("R.a=S.a", 0.5) is session
        assert session.add_query("q", "R.a=S.a") is session
        assert session.remove_query("q") is session

    def test_engine_failure_raises_and_stops_ingestion(self):
        """A memory overflow surfaces as EngineFailedError on the very push
        that tipped it over, and on every push thereafter — nothing is
        silently dropped or recorded past the failure point."""
        session = basic_session(
            runtime_config=RuntimeConfig(mode="logical", memory_limit_units=6.0)
        )
        _, inputs = generate_streams(chain_specs("RSTU", 8.0, 4), 4.0, seed=11)
        with pytest.raises(EngineFailedError, match="memory overflow"):
            replay(session, inputs)
        metrics = session.metrics
        assert metrics.failed
        assert metrics.inputs_ingested < len(inputs)
        assert metrics.inputs_ingested == session.pushed  # history == engine
        with pytest.raises(EngineFailedError):
            session.push(inputs[-1].trigger, {}, ts=inputs[-1].trigger_ts + 1)

    def test_failed_replan_leaves_session_unchanged(self, monkeypatch):
        """add_query/remove_query are transactional: a solver failure must
        not leave a half-installed query silently dropping pushes."""
        session = basic_session()
        session.push("R", {"a": 1}, ts=0.1)
        queries_before = session.queries

        def boom(queries):
            raise RuntimeError("solver exploded")

        monkeypatch.setattr(session, "_build_catalog", boom)
        with pytest.raises(RuntimeError, match="solver exploded"):
            session.add_query("q3", "U.d=V.d")
        assert session.queries == queries_before
        assert "V" not in session.relations
        with pytest.raises(UnknownQueryError):
            session.results("q3")  # never installed

        with pytest.raises(RuntimeError, match="solver exploded"):
            session.remove_query("q1")
        assert session.queries == queries_before
        monkeypatch.undo()
        # the session is still fully operational after both failures
        session.push("S", {"a": 1, "b": 2}, ts=0.2)
        session.push("T", {"b": 2, "c": 3}, ts=0.3)
        assert session.verify(raise_on_mismatch=True).ok

    def test_reregistered_relation_oracle_respects_released_state(self):
        """A relation whose store was released by query expiry and later
        re-registered must not be expected to join its *pre-release*
        tuples — add_query's contract is 'tuples from now on plus shared
        store state', and verify() honours it."""
        session = basic_session()
        session.push("R", {"a": 1}, ts=0.1)
        session.push("S", {"a": 1, "b": 2}, ts=0.2)
        session.push("T", {"b": 2, "c": 3}, ts=0.3)
        session.remove_query("q1")  # R's store is released (q2 keeps S,T)
        session.add_query("q3", "R.a=S.a")
        session.push("S", {"a": 1, "b": 9}, ts=0.4)  # old R tuple is gone
        report = session.verify(raise_on_mismatch=True)
        assert report.ok
        assert report.checks["q3"].expected == 0
        # control: a fresh R partner after re-registration joins normally
        session.push("R", {"a": 1}, ts=0.5)
        report = session.verify(raise_on_mismatch=True)
        assert report.checks["q3"].expected == 2  # R@0.5 x {S@0.2, S@0.4}

    def test_reregistered_stream_high_water_is_floored_at_watermark(self):
        """A released-then-re-added ingest stream must not resurrect its
        stale pre-removal high water: stragglers whose partners are long
        evicted are rejected, and the global watermark stays live."""
        session = (
            JoinSession(window=1.0, solver="scipy", disorder_bound=0.5)
            .add_query("q1", "R.a=S.a")
            .add_query("q2", "S.a=T.a")
        )
        session.push("R", {"a": 1}, ts=0.0)
        session.remove_query("q1")  # R released; _stream_high['R'] was 0.0
        for i in range(40):
            session.push("S", {"a": 1}, ts=float(i))
            session.push("T", {"a": 1}, ts=float(i) + 0.25)
        session.add_query("q3", "R.a=S.a")
        with pytest.raises(LateTupleError):
            session.push("R", {"a": 1}, ts=0.2)  # 39s behind the watermark
        session.push("R", {"a": 1}, ts=39.5)  # current-time pushes still fine
        assert session.verify(raise_on_mismatch=True).ok

    def test_warmup_drain_overflow_raises(self):
        """Engine failure while draining the warmup buffer surfaces as
        EngineFailedError on the warmup-ending push, not silence."""
        session = basic_session(
            warmup=30,
            runtime_config=RuntimeConfig(mode="logical", memory_limit_units=6.0),
        )
        _, inputs = generate_streams(chain_specs("RSTU", 8.0, 4), 3.0, seed=14)
        with pytest.raises(EngineFailedError, match="warmup buffer"):
            replay(session, inputs[:30])
        # history covers exactly the engine-ingested prefix, so the oracle
        # stays consistent even across the aborted drain
        assert session.metrics.inputs_ingested == sum(
            len(v) for v in session._history.values()
        )
        assert session.verify().ok

    def test_watermark_survives_new_relation_registration(self):
        """Registering a new ingest relation mid-stream (online add_query)
        must not pin the global watermark at -inf and suspend eviction."""
        session = basic_session(disorder_bound=0.5)
        streams, _ = generate_streams(chain_specs("RSTU", 8.0, 4), 4.0, seed=13)
        feed = bounded_delay_feed(streams, 0.5, seed=13)
        replay(session, feed)
        session.add_query("q3", "U.d=V.d")  # V: brand-new, stays silent
        runtime = session._runtime
        assert runtime.watermark() > float("-inf")
        """verify() on a still-buffering warmup must not report a phantom
        mismatch — it ends the warmup and compares real results."""
        session = basic_session(warmup=10)
        session.push("R", {"a": 1}, ts=0.1)
        session.push("S", {"a": 1, "b": 2}, ts=0.2)
        session.push("T", {"b": 2, "c": 3}, ts=0.3)
        report = session.verify(raise_on_mismatch=True)
        assert report.ok and report.checks["q1"].expected == 1

    def test_churn_does_not_accumulate_dead_state(self):
        """Repeated add/remove over a logical session must not grow the
        task map or archives with retired stores (long-lived service)."""
        session = basic_session()
        _, inputs = generate_streams(chain_specs("RSTU", 8.0, 4), 3.0, seed=12)
        replay(session, inputs)
        runtime = session._runtime
        for i in range(5):
            session.add_query(f"extra{i}", "S.b=T.b")
            session.remove_query(f"extra{i}")
        assert set(runtime.tasks) == set(runtime.topology.stores)
        assert set(runtime._edge_archive) == set(runtime.topology.edges)
        assert session.verify(raise_on_mismatch=True).ok

    def test_results_survive_removal(self):
        session = basic_session()
        generate_into(session, chain_specs("RSTU", 8.0, 5), duration=4.0, seed=7)
        before = session.results("q1")
        assert before
        session.remove_query("q1")
        assert session.results("q1") == before

    def test_dormant_session_revives_with_state(self):
        """Removing every query keeps windowed state; a later add_query
        rewires the dormant runtime in place."""
        session = basic_session()
        streams, inputs = generate_streams(
            chain_specs("RSTU", 8.0, 4), duration=3.0, seed=8
        )
        replay(session, inputs)
        session.remove_query("q1")
        session.remove_query("q2")
        assert session.queries == {}
        stored = session.stored_tuples()
        assert stored > 0  # windowed state retained while dormant
        session.add_query("q3", "S.b=T.b")
        # revival reuses the retained S/T state: new pushes join old partners
        assert session.verify(raise_on_mismatch=True).ok


def online_churn(seed: int, disorder_bound=None):
    """Seeded online scenario: 2 queries -> +q_new -> -q_old, verified.

    Streams cover all five chain relations; pushes are filtered to the
    session's currently registered relations (the documented contract).
    """
    rng = random.Random(seed ^ 0x5E55)
    initial = [
        Query.of("q0", *CHAIN_PREDICATES[0:2]),  # R,S,T
        Query.of("q1", *CHAIN_PREDICATES[1:3]),  # S,T,U
    ]
    extra_start = rng.randint(1, 3)
    extra_len = rng.randint(1, 2)
    added = Query.of(
        "q_new", *CHAIN_PREDICATES[extra_start : extra_start + extra_len]
    )
    removed = rng.choice(["q0", "q1"])

    window = rng.choice([1.5, 2.5])
    session = JoinSession(
        window=window,
        solver="scipy",
        parallelism=rng.randint(1, 2),
        disorder_bound=disorder_bound,
    )
    for query in initial:
        session.add_query(query)

    domain = rng.randint(3, 6)
    streams, feed = generate_streams(
        chain_specs("RSTUV", rng.uniform(5.0, 8.0), domain), 6.0, seed=seed
    )
    if disorder_bound is not None:
        feed = bounded_delay_feed(streams, disorder_bound, seed=seed)

    a, b = len(feed) // 3, 2 * len(feed) // 3
    replay(session, (t for t in feed[:a] if t.trigger in session.relations))
    session.add_query(added)
    replay(session, (t for t in feed[a:b] if t.trigger in session.relations))
    session.remove_query(removed)
    replay(session, (t for t in feed[b:] if t.trigger in session.relations))
    return session


class TestOnlineDifferential:
    """Mid-stream add/remove matches the interval-restricted reference."""

    @pytest.mark.parametrize("seed", range(10))
    def test_online_churn_ordered(self, seed):
        session = online_churn(seed)
        report = session.verify()
        assert report.ok, report.describe()
        assert len(session.rewires) == 2

    @pytest.mark.parametrize("seed", range(10))
    def test_online_churn_watermark(self, seed):
        bound = random.Random(seed ^ 0xF00).choice([0.5, 1.0, 2.0])
        session = online_churn(seed, disorder_bound=bound)
        report = session.verify()
        assert report.ok, report.describe()
        assert len(session.rewires) == 2


class TestAcceptanceScenario:
    """The headline scenario of the facade redesign.

    Two queries stream ~1k tuples via ``push``; a third query sharing
    stores with the running plan arrives mid-stream and one original query
    expires — every query matches the reference over its active interval,
    and the shared store state demonstrably survives both rewires (same
    container objects, ``preserved_tuples`` > 0: no rebuild).
    """

    def test_online_add_remove_preserves_shared_state(self):
        session = (
            JoinSession(window=2.5, solver="scipy", parallelism=1)
            .add_query("q1", "R.a=S.a", "S.b=T.b")
            .add_query("q2", "S.b=T.b", "T.c=U.c")
        )
        streams, feed = generate_streams(
            chain_specs("RSTUV", 25.0, 8), duration=8.0, seed=42
        )
        assert len(feed) >= 950  # "streams ~1k tuples"

        a, b = int(len(feed) * 0.4), int(len(feed) * 0.7)
        replay(session, (t for t in feed[:a] if t.trigger in session.relations))

        # identity snapshot of the shared input stores (S and T serve q1,
        # q2, and the incoming q3's backfill); flush first so the pending
        # micro-batch doesn't shift counts under the snapshot
        session.flush()
        runtime = session._runtime
        shared_before = {
            store_id: (
                runtime.tasks[store_id][0].containers,
                runtime.tasks[store_id][0].stored_tuples(),
            )
            for store_id in ("S", "T", "U")
        }
        old_topology = runtime.topology
        assert session.metrics.rewires == 0

        # --- online arrival: q3 shares the T and U stores -------------
        session.add_query("q3", "T.c=U.c", "U.d=V.d")
        diff = diff_topologies(old_topology, runtime.topology)
        assert set(diff.surviving) >= {"S", "T", "U"}

        # shared store state survived the rewire: the *same* container
        # objects, holding the same tuples — not a rebuild
        for store_id, (containers, count) in shared_before.items():
            task = runtime.tasks[store_id][0]
            assert task.containers is containers
            assert task.stored_tuples() == count
        assert session.metrics.rewires == 1
        assert session.metrics.preserved_tuples > 0

        replay(session, (t for t in feed[a:b] if t.trigger in session.relations))

        # --- online expiry: q1 leaves, R's store is released ----------
        session.remove_query("q1")
        assert session.metrics.rewires == 2
        replay(session, (t for t in feed[b:] if t.trigger in session.relations))

        report = session.verify()
        assert report.ok, report.describe()
        # the scenario must be non-trivial: every query produced results,
        # and q3 joined partners stored *before* its arrival (backfill /
        # preserved windowed state)
        for name in ("q1", "q2", "q3"):
            assert report.checks[name].expected > 0, name
        earliest_q3 = min(
            min(res.timestamps.values()) for res in session.results("q3")
        )
        add_ts = session.rewires[0].time
        assert earliest_q3 < add_ts, (
            "q3 must see pre-arrival partners via preserved state"
        )


class TestSessionAdapters:
    def test_generate_into_matches_direct_replay(self):
        specs = chain_specs("RSTU", 8.0, 5)
        s1 = basic_session()
        streams = generate_into(s1, specs, duration=4.0, seed=9)
        s2 = basic_session()
        _, inputs = generate_streams(specs, duration=4.0, seed=9)
        assert replay(s2, inputs) == s2.pushed
        for name in ("q1", "q2"):
            assert result_keys(s1.results(name)) == result_keys(s2.results(name))
        # returned streams are the event-time history
        assert sum(len(v) for v in streams.values()) == s1.pushed

    def test_generate_into_bounded_delay(self):
        session = basic_session(disorder_bound=1.0)
        generate_into(
            session, chain_specs("RSTU", 8.0, 5), duration=4.0, seed=10,
            max_delay=1.0,
        )
        assert session.verify(raise_on_mismatch=True).ok
