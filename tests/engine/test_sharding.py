"""Sharded execution test layer (`repro.engine.sharding`).

The differential harness (`test_differential.py::TestDifferentialSharded`)
proves whole-run result parity across the workers × shape × backend ×
arrival matrix; these tests pin the individual mechanisms:

* `ShardRouter` — exactly-one-or-all routing, the per-unit safety fixpoint
  (demotion to broadcast), deterministic class choice, and sticky routing
  across rewires, property-tested over randomized ~1k-op workloads;
* the worker protocol — config validation, the reshard slow path (partition
  class change → stop-the-world re-route), driver/worker metric folding;
* fault injection — the env-gated crash-on-Nth-tuple hook and hard worker
  kills must surface a typed `ShardFailedError` promptly (no hang) with no
  partial results merged, and the session must refuse further pushes.
"""

import random

import pytest

from test_differential import (
    assert_engine_equals_reference,
    bounded_delay_feed,
    compile_topology,
    random_workload,
)

from repro import JoinSession
from repro.core import Query
from repro.engine import (
    RewirableRuntime,
    RuntimeConfig,
    ShardFailedError,
    ShardRouter,
    ShardedRuntime,
    TopologyRuntime,
    result_keys,
)
from repro.engine.sharding import TEST_HOOK_ENV
from repro.session import EngineFailedError
from repro.streams.generators import (
    StreamSpec,
    generate_streams,
    uniform_domain,
)


def _fresh(feed):
    for tup in feed:
        tup.seq = 0
    return feed


def two_class_topology():
    """R/S/T with two attribute classes: class *a* chains R–S–T, class *b*
    joins R–T directly.  Class *a* partitions {R, S, T} only if every unit
    chains them — q3 (R.b=T.b) contains partitioned R and T with *no*
    supporting a-edge, so the fixpoint must demote one of them."""
    queries = [
        Query.of("q1", "R.a=S.a"),
        Query.of("q2", "S.a=T.a"),
        Query.of("q3", "R.b=T.b"),
    ]
    windows = {rel: 4.0 for rel in ("R", "S", "T")}
    topology = compile_topology(
        queries, ["R", "S", "T"], windows, 1, 3, solver="greedy"
    )
    return queries, windows, topology


class TestShardRouter:
    def test_safety_fixpoint_demotes_unchained_relations(self):
        _, _, topology = two_class_topology()
        router = ShardRouter.from_topology(topology, 4)
        # class a wins (3 attrs, lexicographically first), but q3 forces one
        # of {R, T} to broadcast: they are a-partitioned yet q3 has no
        # supporting a-edge between them
        assert router.class_key == {"R.a", "S.a", "T.a"}
        assert router.partitioned == {"R", "S"}
        assert router.broadcast == {"T"}
        assert not router.metrics_exact

    def test_exactly_one_or_all_property(self):
        """Every input tuple routes to exactly one shard (partitioned
        trigger) or to all shards (broadcast trigger) — randomized over the
        differential workload generator, all shapes."""
        for seed in range(6):
            shape = ("chain", "star", "cycle")[seed % 3]
            queries, relations, streams, inputs, windows, parallelism = (
                random_workload(seed, shape=shape)
            )
            topology = compile_topology(
                queries, relations, windows, parallelism, seed, solver="greedy"
            )
            router = ShardRouter.from_topology(topology, 3)
            for tup in inputs:
                shards = router.shards_for(tup)
                if tup.trigger in router.partitioned:
                    assert len(shards) == 1
                    assert 0 <= shards[0] < 3
                else:
                    assert shards == (0, 1, 2)
                # routing is a pure function of the tuple
                assert router.shard_of(tup) == router.shard_of(tup)

    def test_partitioned_relations_chain_through_supporting_edges(self):
        """Structural invariant behind exactness: in every query, the
        partitioned relations present are chained by predicates equating
        exactly their routing attributes."""
        for seed in range(6):
            shape = ("chain", "star", "cycle")[seed % 3]
            queries, relations, _, _, windows, parallelism = random_workload(
                seed, shape=shape
            )
            topology = compile_topology(
                queries, relations, windows, parallelism, seed, solver="greedy"
            )
            router = ShardRouter.from_topology(topology, 2)
            route = {
                rel: attr for rel, attr in router.route_attrs.items()
            }
            for query in queries:
                live = sorted(router.partitioned & query.relation_set)
                if len(live) < 2:
                    continue
                reached = {live[0]}
                grew = True
                while grew:
                    grew = False
                    for pred in query.predicates:
                        ra, rb = pred.left.relation, pred.right.relation
                        if (
                            route.get(ra) == str(pred.left)
                            and route.get(rb) == str(pred.right)
                        ):
                            if ra in reached and rb not in reached:
                                reached.add(rb)
                                grew = True
                            elif rb in reached and ra not in reached:
                                reached.add(ra)
                                grew = True
                assert set(live) <= reached, (seed, query.name)

    def test_sticky_class_survives_rewire(self):
        """`prefer_class` pins the partition class across topology changes
        while it still exists, keeping shard routing stable (the install
        fast path of the driver depends on this)."""
        q1 = Query.of("q1", "R.a=S.a")
        q2 = Query.of("q2", "S.a=T.a")
        windows = {rel: 4.0 for rel in ("R", "S", "T")}
        topo1 = compile_topology([q1], ["R", "S"], windows, 1, 1)
        topo2 = compile_topology([q1, q2], ["R", "S", "T"], windows, 1, 1)
        r1 = ShardRouter.from_topology(topo1, 3)
        r2 = ShardRouter.from_topology(
            topo2, 3, prefer_class=r1.class_key
        )
        assert r2.stable_over(r1)
        for rel in ("R", "S"):
            assert r2.route_attrs[rel] == r1.route_attrs[rel]

    def test_union_of_shard_emissions_equals_oracle_1k_ops(self):
        """~1k-op randomized workloads: the merged emissions of all shards
        equal the brute-force oracle (shard-disjointness + broadcast
        suppression leave no result lost or duplicated)."""
        rng = random.Random(0xF00D)
        queries = [Query.of("q1", "R.a=S.a", "S.b=T.b")]
        specs = [
            StreamSpec(
                relation=rel,
                rate=15.0,
                attributes={a: uniform_domain(8) for a in attrs},
            )
            for rel, attrs in (("R", ["a"]), ("S", ["a", "b"]), ("T", ["b"]))
        ]
        streams, inputs = generate_streams(specs, 22.0, seed=11)
        assert len(inputs) >= 900  # ~1k ops as specified
        windows = {rel: 3.0 for rel in ("R", "S", "T")}
        topology = compile_topology(queries, ["R", "S", "T"], windows, 2, 11)
        with ShardedRuntime(
            topology,
            windows,
            RuntimeConfig(workers=rng.choice([2, 3, 4])),
            transport="inline",
        ) as sharded:
            sharded.run(_fresh(list(inputs)))
            assert_engine_equals_reference(sharded, queries, streams, windows)


class TestConfigValidation:
    def test_workers_require_logical_mode(self):
        with pytest.raises(ValueError, match="logical"):
            RuntimeConfig(mode="timed", workers=2)

    def test_workers_reject_memory_limit(self):
        with pytest.raises(ValueError, match="memory_limit"):
            RuntimeConfig(workers=2, memory_limit_units=100)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            RuntimeConfig(workers=0)

    def test_topology_runtime_rejects_workers(self):
        """The single-process runtime refuses a multi-worker config instead
        of silently running it on one core."""
        _, windows, topology = two_class_topology()
        with pytest.raises(ValueError, match="ShardedRuntime"):
            TopologyRuntime(topology, windows, RuntimeConfig(workers=2))

    def test_sharded_runtime_rejects_unknown_transport(self):
        _, windows, topology = two_class_topology()
        with pytest.raises(ValueError, match="transport"):
            ShardedRuntime(
                topology, windows, RuntimeConfig(workers=2), transport="tcp"
            )

    def test_session_workers_conflict_with_runtime_config(self):
        with pytest.raises(ValueError, match="workers"):
            JoinSession(workers=2, runtime_config=RuntimeConfig(workers=1))

    def test_session_rejects_engine_side_drop(self):
        """Engine-side silent drops would desynchronize the session's
        history and oracle; the session owns the drop policy."""
        with pytest.raises(ValueError, match="on_late"):
            JoinSession(runtime_config=RuntimeConfig(on_late="drop"))


class TestReshard:
    def test_partition_class_change_takes_slow_path(self):
        """Replacing the only query with one joining on a different
        attribute class forces a stop-the-world reshard: all state is
        dumped, deduped, re-routed — and results stay exactly those of a
        single-process runtime driven through the same install."""
        qa = Query.of("qa", "R.a=S.a", "S.a=T.a")
        qb = Query.of("qb", "R.b=S.b", "S.b=T.b")
        windows = {rel: 5.0 for rel in ("R", "S", "T")}
        topo_a = compile_topology(
            [qa], ["R", "S", "T"], windows, 1, 21, solver="greedy"
        )
        topo_b = compile_topology(
            [qb], ["R", "S", "T"], windows, 1, 22, solver="greedy"
        )
        specs = [
            StreamSpec(
                relation=rel,
                rate=12.0,
                attributes={
                    "a": uniform_domain(5),
                    "b": uniform_domain(5),
                },
            )
            for rel in ("R", "S", "T")
        ]
        _, first = generate_streams(specs, 4.0, seed=31)
        _, second = generate_streams(specs, 4.0, seed=32)
        second = [tup for tup in second]
        for tup in second:  # keep arrivals ordered across the install
            tup.timestamps[tup.trigger] += 4.5
            tup.trigger_ts += 4.5
            tup.latest_ts += 4.5
            tup.earliest_ts += 4.5

        def drive(runtime):
            for tup in _fresh(list(first)):
                runtime.process(tup)
            runtime.install(topo_b, now=4.25, windows=windows)
            for tup in _fresh(list(second)):
                runtime.process(tup)
            runtime.flush()
            return runtime

        base = drive(RewirableRuntime(topo_a, windows, RuntimeConfig()))
        with ShardedRuntime(
            topo_a, windows, RuntimeConfig(workers=3), transport="inline"
        ) as sharded:
            old_class = sharded.router.class_key
            drive(sharded)
            assert sharded.router.class_key != old_class
            assert sharded.metrics.migrated_tuples > 0
            for name in ("qa", "qb"):
                assert result_keys(sharded.results(name)) == result_keys(
                    base.results(name)
                ), name
            assert (
                sharded.metrics.results_per_query
                == base.metrics.results_per_query
            )


class TestFaultInjection:
    def _sharded(self, transport="process", workers=2, bound=None):
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(2)
        )
        topology = compile_topology(queries, relations, windows, parallelism, 2)
        runtime = ShardedRuntime(
            topology,
            windows,
            RuntimeConfig(workers=workers, disorder_bound=bound),
            transport=transport,
        )
        return runtime, list(inputs)

    def test_crash_hook_is_gated_to_test_builds(self, monkeypatch):
        monkeypatch.delenv(TEST_HOOK_ENV, raising=False)
        runtime, _ = self._sharded()
        try:
            with pytest.raises(ShardFailedError, match=TEST_HOOK_ENV):
                runtime.inject_crash(0, after=1)
            assert runtime.metrics.failed
        finally:
            runtime.close()

    def test_worker_crash_surfaces_typed_error(self, monkeypatch):
        """Crash-on-Nth-tuple: the driver must raise `ShardFailedError`
        promptly (bounded receives — no hang), mark itself failed, and
        merge no partial results for the failed sync."""
        monkeypatch.setenv(TEST_HOOK_ENV, "1")
        runtime, inputs = self._sharded()
        try:
            results_before = {k: list(v) for k, v in runtime.outputs.items()}
            runtime.inject_crash(0, after=3)
            with pytest.raises(ShardFailedError, match="shard 0"):
                runtime.run(_fresh(inputs))
            assert runtime.metrics.failed
            assert "shard 0" in runtime.metrics.failure_reason
            # the failed sync contributed nothing
            assert {
                k: list(v) for k, v in runtime.outputs.items()
            } == results_before
            # the runtime stays safely callable and inert after failure
            runtime.flush()
            assert runtime.metrics.failed
        finally:
            runtime.close()

    def test_hard_worker_kill_surfaces_typed_error(self):
        """SIGKILL mid-stream (no cooperative exit hook at all): the next
        sync detects the dead process and raises."""
        runtime, inputs = self._sharded()
        half = len(inputs) // 2
        try:
            for tup in _fresh(inputs[:half]):
                runtime.process(tup)
            runtime.flush()
            victim = runtime._shards[1].proc
            victim.kill()
            victim.join(timeout=10.0)
            with pytest.raises(ShardFailedError, match="shard 1"):
                for tup in _fresh(inputs[half:]):
                    runtime.process(tup)
                runtime.flush()
        finally:
            runtime.close()

    def test_inline_transport_simulates_crash(self, monkeypatch):
        """The same hook works on the inline transport (raising instead of
        killing a process), so crash handling is testable without forking."""
        monkeypatch.setenv(TEST_HOOK_ENV, "1")
        runtime, inputs = self._sharded(transport="inline")
        runtime.inject_crash(1, after=2)
        with pytest.raises(ShardFailedError):
            runtime.run(_fresh(inputs))
        assert runtime.metrics.failed
        runtime.close()

    def test_session_surfaces_failure_and_refuses_pushes(self, monkeypatch):
        """Kill a worker mid-push through the facade: the detecting push
        raises the typed error, every later push raises
        `EngineFailedError` — no hang, no silent partial results."""
        monkeypatch.setenv(TEST_HOOK_ENV, "1")
        with JoinSession(window=4.0, workers=2) as session:
            session.add_query("q", "R.a=S.a")
            session.push("R", {"a": 1}, ts=0.1)
            session.push("S", {"a": 1}, ts=0.2)
            assert len(session.results("q")) == 1
            session._runtime.inject_crash(0, after=2)
            with pytest.raises(ShardFailedError):
                for i in range(64):  # enough to fill and ship a batch
                    session.push("R", {"a": i}, ts=0.3 + i * 0.01)
                session.flush()
            with pytest.raises(EngineFailedError):
                session.push("S", {"a": 2}, ts=2.0)


class TestSessionSharded:
    def test_live_churn_verifies_inline(self):
        """Sharded session end to end: add/remove mid-stream, oracle check."""
        rng = random.Random(77)
        with JoinSession(
            window=5.0, workers=2, worker_transport="inline"
        ) as session:
            session.add_query("q1", "R.a=S.a", "S.b=T.b")
            t = 0.0
            for _ in range(100):
                t += rng.uniform(0.05, 0.25)
                rel = rng.choice(["R", "S", "T"])
                session.push(
                    rel,
                    {a: rng.randint(0, 7) for a in ("a", "b", "c")},
                    ts=t,
                )
            session.add_query("q2", "S.b=T.b", "T.c=U.c")
            for _ in range(100):
                t += rng.uniform(0.05, 0.25)
                rel = rng.choice(["R", "S", "T", "U"])
                session.push(
                    rel,
                    {a: rng.randint(0, 7) for a in ("a", "b", "c")},
                    ts=t,
                )
            session.remove_query("q1")
            for _ in range(40):
                t += rng.uniform(0.05, 0.25)
                rel = rng.choice(["S", "T", "U"])
                session.push(
                    rel,
                    {a: rng.randint(0, 7) for a in ("a", "b", "c")},
                    ts=t,
                )
            report = session.verify()
            assert report.ok, report.describe()
            assert len(session.rewires) == 2

    def test_subscribers_fire_in_merged_order(self):
        """Listener callbacks run driver-side after the deterministic
        merge, in arrival-sequence order — identical to workers=1."""
        def run(workers):
            seen = []
            with JoinSession(
                window=4.0, workers=workers, worker_transport="inline"
            ) as session:
                session.add_query("q", "R.a=S.a")
                session.subscribe("q", lambda r: seen.append(r.key()))
                rng = random.Random(3)
                t = 0.0
                for _ in range(150):
                    t += rng.uniform(0.02, 0.1)
                    session.push(
                        rng.choice(["R", "S"]), {"a": rng.randint(0, 4)}, ts=t
                    )
                session.flush()
            return seen

        assert run(2) == run(1)

    def test_close_is_idempotent_and_results_stay_readable(self):
        with JoinSession(window=4.0, workers=2) as session:
            session.add_query("q", "R.a=S.a")
            session.push("R", {"a": 1}, ts=0.1)
            session.push("S", {"a": 1}, ts=0.2)
            assert len(session.results("q")) == 1
            session.close()
            session.close()
            assert len(session.results("q")) == 1
