"""Tests for stream tuples, containers, and store tasks."""

import pytest

from repro.core.predicates import JoinPredicate
from repro.engine.stores import Container, StoreTask, probe_container
from repro.engine.tuples import StreamTuple, input_tuple


class TestStreamTuple:
    def test_input_tuple_qualifies_attributes(self):
        tup = input_tuple("R", 1.0, {"a": 7})
        assert tup.get("R.a") == 7
        assert tup.lineage == frozenset({"R"})
        assert tup.trigger == "R" and tup.trigger_ts == 1.0

    def test_merge_combines_values_and_timestamps(self):
        r = input_tuple("R", 2.0, {"a": 1})
        s = input_tuple("S", 1.0, {"a": 1, "b": 5})
        merged = r.merge(s)
        assert merged.get("R.a") == 1 and merged.get("S.b") == 5
        assert merged.timestamps == {"R": 2.0, "S": 1.0}
        assert merged.trigger == "R"  # keeps the probing side's trigger

    def test_merge_rejects_overlapping_lineage(self):
        r1 = input_tuple("R", 1.0, {"a": 1})
        r2 = input_tuple("R", 2.0, {"a": 2})
        with pytest.raises(ValueError):
            r1.merge(r2)

    def test_latest_earliest(self):
        merged = input_tuple("R", 2.0, {"a": 1}).merge(
            input_tuple("S", 1.0, {"b": 2})
        )
        assert merged.latest_ts == 2.0
        assert merged.earliest_ts == 1.0
        assert merged.width == 2

    def test_arrived_before_requires_all_components(self):
        merged = input_tuple("R", 2.0, {"a": 1}).merge(
            input_tuple("S", 5.0, {"b": 2})
        )
        assert not merged.arrived_before(3.0)
        assert merged.arrived_before(6.0)

    def test_within_windows_pairwise_min(self):
        r = input_tuple("R", 0.0, {"a": 1})
        s = input_tuple("S", 4.0, {"a": 1})
        assert r.within_windows(s, {"R": 5.0, "S": 5.0})
        assert not r.within_windows(s, {"R": 3.0, "S": 5.0})  # min applies
        assert r.within_windows(s, {})  # missing windows = unbounded

    def test_key_is_stable_identity(self):
        a = input_tuple("R", 1.0, {"a": 1})
        b = input_tuple("R", 1.0, {"a": 1})
        assert a.key() == b.key()
        assert a.key() != input_tuple("R", 1.0, {"a": 2}).key()


class TestContainer:
    def test_insert_and_index(self):
        cont = Container()
        t1 = input_tuple("R", 1.0, {"a": 5})
        cont.insert(t1)
        index = cont.index_on("R.a")
        assert index[5] == [t1]

    def test_index_built_lazily_then_maintained(self):
        cont = Container()
        cont.insert(input_tuple("R", 1.0, {"a": 5}))
        index = cont.index_on("R.a")
        cont.insert(input_tuple("R", 2.0, {"a": 5}))
        assert len(index[5]) == 2  # maintained incrementally after creation

    def test_evict_older_than(self):
        cont = Container()
        cont.insert(input_tuple("R", 1.0, {"a": 1}))
        cont.insert(input_tuple("R", 9.0, {"a": 2}))
        freed = cont.evict_older_than(5.0)
        assert freed == 1
        assert len(cont) == 1
        assert cont.index_on("R.a").get(1) is None

    def test_evict_nothing_is_cheap(self):
        cont = Container()
        cont.insert(input_tuple("R", 9.0, {"a": 2}))
        index_before = cont.index_on("R.a")
        assert cont.evict_older_than(1.0) == 0
        assert cont.indexes["R.a"] is index_before  # untouched

    def test_partial_eviction_never_rebuilds_indexes(self):
        """The seed discarded *all* indexes whenever any tuple expired;
        eviction must now update them in place (no full-scan rebuilds)."""
        cont = Container(bucket_width=1.0)
        for i in range(64):
            cont.insert(input_tuple("R", float(i), {"a": i % 8}))
        index = cont.index_on("R.a")
        assert cont.index_rebuilds == 1  # the initial lazy build

        for horizon in (8.0, 9.5, 31.0):
            cont.evict_older_than(horizon)
            # probing after eviction reuses the same index object...
            assert cont.index_on("R.a") is index
        # ...and no further full-scan build ever happened
        assert cont.index_rebuilds == 1
        assert len(cont) == 33  # tuples at 31.0 .. 63.0 survive
        # index content is exact: only live tuples, grouped by value
        live = {t.latest_ts for entries in index.values() for t in entries}
        assert live == {float(i) for i in range(31, 64)}
        assert index[0] == [t for t in cont.tuples if t.get("R.a") == 0]

    def test_eviction_drops_whole_buckets_and_filters_boundary(self):
        cont = Container(bucket_width=2.0)
        for i in range(10):
            cont.insert(input_tuple("R", float(i), {"a": i}))
        freed = cont.evict_older_than(5.0)  # drops 0..4, keeps 5..9
        assert freed == 5
        assert sorted(t.latest_ts for t in cont.tuples) == [5.0, 6.0, 7.0, 8.0, 9.0]
        # horizon inside a bucket: the boundary bucket (4,5) was filtered
        assert cont.evict_older_than(5.0) == 0  # idempotent

    def test_eviction_after_index_handles_shared_values(self):
        cont = Container(bucket_width=1.0)
        cont.insert(input_tuple("R", 0.5, {"a": 7}))
        cont.insert(input_tuple("R", 5.5, {"a": 7}))
        index = cont.index_on("R.a")
        assert len(index[7]) == 2
        cont.evict_older_than(3.0)
        assert [t.latest_ts for t in index[7]] == [5.5]

    def test_insert_after_eviction_lands_in_live_state(self):
        """Regression: eviction must not leave stale bucket references."""
        cont = Container(bucket_width=1.0)
        for i in range(8):
            cont.insert(input_tuple("R", float(i), {"a": i}))
        cont.index_on("R.a")
        cont.evict_older_than(6.5)
        cont.insert(input_tuple("R", 6.9, {"a": 99}))
        cont.insert(input_tuple("R", 8.0, {"a": 100}))
        assert len(cont) == 3
        assert {t.get("R.a") for t in cont.tuples} == {7, 99, 100}
        assert cont.index_on("R.a")[99][0].latest_ts == 6.9
        # a second eviction still sees the post-eviction inserts
        assert cont.evict_older_than(7.5) == 2


class TestEvictionBoundaries:
    """Boundary conditions of the bucketed incremental-eviction fast path."""

    def test_tuple_exactly_at_window_edge_survives(self):
        """Eviction is strict: ``latest_ts == horizon`` stays (the window
        check uses ``<=`` on the distance, so edge tuples still join)."""
        cont = Container(bucket_width=1.0)
        cont.insert(input_tuple("R", 5.0, {"a": 1}))
        cont.insert(input_tuple("R", 4.999999, {"a": 2}))
        freed = cont.evict_older_than(5.0)
        assert freed == 1
        assert [t.latest_ts for t in cont.tuples] == [5.0]

    def test_tuple_exactly_at_bucket_boundary(self):
        """latest_ts an exact multiple of the bucket width lands in the
        higher bucket and is not dropped by a horizon at that boundary."""
        cont = Container(bucket_width=2.0)
        for ts in (1.9999, 2.0, 2.0001, 4.0):
            cont.insert(input_tuple("R", ts, {"a": ts}))
        index = cont.index_on("R.a")
        freed = cont.evict_older_than(2.0)
        assert freed == 1  # only 1.9999 is strictly older
        assert sorted(t.latest_ts for t in cont.tuples) == [2.0, 2.0001, 4.0]
        assert cont.index_rebuilds == 1
        assert cont.index_on("R.a") is index

    def test_zero_retention_store_collapses_to_single_bucket(self):
        """retention <= 0 disables bucketing (no division blowup); eviction
        at ``now`` then clears everything strictly older than ``now``."""
        task = StoreTask(store_id="R", task_index=0, retention=0.0)
        task.insert(0, input_tuple("R", 1.0, {"a": 1}))
        task.insert(0, input_tuple("R", 3.0, {"a": 2}))
        assert task.container(0)._bucket_width is None
        freed = task.evict(now=3.0)
        assert freed == 1  # the tuple exactly at now - 0 survives
        assert task.stored_tuples() == 1

    def test_near_zero_retention_buckets_stay_finite(self):
        """A tiny window produces astronomically large bucket ids; eviction
        must still drop exactly the expired tuples."""
        task = StoreTask(store_id="R", task_index=0, retention=1e-9)
        task.insert(0, input_tuple("R", 1.0, {"a": 1}))
        task.insert(0, input_tuple("R", 2.0, {"a": 2}))
        freed = task.evict(now=2.0)
        assert freed == 1
        assert [t.latest_ts for t in task.container(0).tuples] == [2.0]

    def test_explicit_single_bucket_filters_whole_container(self):
        """``bucket_width=None`` (or coerced 0/inf) keeps one bucket; an
        eviction pass filters it but must never rebuild indexes."""
        for width in (None, 0.0, float("inf")):
            cont = Container(bucket_width=width)
            for i in range(16):
                cont.insert(input_tuple("R", float(i), {"a": i % 4}))
            index = cont.index_on("R.a")
            assert cont.index_rebuilds == 1
            assert cont.evict_older_than(10.0) == 10
            assert len(cont) == 6
            assert cont.index_on("R.a") is index
            assert cont.index_rebuilds == 1
            live = sorted(t.latest_ts for es in index.values() for t in es)
            assert live == [10.0, 11.0, 12.0, 13.0, 14.0, 15.0]

    def test_horizon_below_all_buckets_is_noop(self):
        cont = Container(bucket_width=1.0)
        cont.insert(input_tuple("R", 10.0, {"a": 1}))
        cont.index_on("R.a")
        assert cont.evict_older_than(-100.0) == 0
        assert cont.evict_older_than(0.0) == 0
        assert len(cont) == 1
        assert cont.index_rebuilds == 1

    def test_eviction_of_everything_resets_indexes_cheaply(self):
        cont = Container(bucket_width=1.0)
        for i in range(8):
            cont.insert(input_tuple("R", float(i), {"a": i}))
        cont.index_on("R.a")
        freed = cont.evict_older_than(100.0)
        assert freed == 8
        assert len(cont) == 0
        assert cont.index_on("R.a") == {}
        # the empty-container reset counts as a (trivial) rebuild at most
        cont.insert(input_tuple("R", 200.0, {"a": 5}))
        assert cont.index_on("R.a")[5][0].latest_ts == 200.0


class TestStoreTask:
    def test_per_epoch_containers(self):
        task = StoreTask(store_id="R", task_index=0, retention=10.0)
        task.insert(0, input_tuple("R", 1.0, {"a": 1}))
        task.insert(1, input_tuple("R", 2.0, {"a": 2}))
        assert len(task.container(0)) == 1
        assert len(task.container(1)) == 1
        assert task.stored_tuples() == 2

    def test_window_eviction(self):
        task = StoreTask(store_id="R", task_index=0, retention=5.0)
        task.insert(0, input_tuple("R", 0.0, {"a": 1}))
        task.insert(0, input_tuple("R", 8.0, {"a": 2}))
        freed = task.evict(now=10.0)
        assert freed == 1
        assert task.stored_tuples() == 1

    def test_infinite_retention_never_evicts(self):
        task = StoreTask(store_id="R", task_index=0, retention=float("inf"))
        task.insert(0, input_tuple("R", 0.0, {"a": 1}))
        assert task.evict(now=1e9) == 0

    def test_drop_epochs_before(self):
        task = StoreTask(store_id="R", task_index=0, retention=10.0)
        task.insert(0, input_tuple("R", 1.0, {"a": 1}))
        task.insert(2, input_tuple("R", 5.0, {"a": 2}))
        freed = task.drop_epochs_before(2)
        assert freed == 1
        assert set(task.containers) == {2}


class TestProbeContainer:
    def _fill(self):
        cont = Container()
        cont.insert(input_tuple("S", 1.0, {"a": 1, "b": 10}))
        cont.insert(input_tuple("S", 2.0, {"a": 1, "b": 20}))
        cont.insert(input_tuple("S", 3.0, {"a": 2, "b": 10}))
        return cont

    def test_equi_match_via_index(self):
        cont = self._fill()
        probe = input_tuple("R", 5.0, {"a": 1})
        preds = (JoinPredicate.of("R.a", "S.a"),)
        results = probe_container(cont, probe, preds, {})
        assert len(results) == 2
        assert all(r.get("S.a") == 1 for r in results)

    def test_multi_predicate_filter(self):
        cont = self._fill()
        probe = input_tuple("R", 5.0, {"a": 1, "b": 20})
        preds = (
            JoinPredicate.of("R.a", "S.a"),
            JoinPredicate.of("R.b", "S.b"),
        )
        results = probe_container(cont, probe, preds, {})
        assert len(results) == 1
        assert results[0].get("S.b") == 20

    def test_only_earlier_tuples_match(self):
        cont = self._fill()
        probe = input_tuple("R", 1.5, {"a": 1})
        preds = (JoinPredicate.of("R.a", "S.a"),)
        results = probe_container(cont, probe, preds, {})
        assert len(results) == 1  # only the S tuple at t=1.0

    def test_window_filter(self):
        cont = self._fill()
        probe = input_tuple("R", 10.0, {"a": 1})
        preds = (JoinPredicate.of("R.a", "S.a"),)
        results = probe_container(cont, probe, preds, {"R": 5.0, "S": 5.0})
        # S@1.0 is 9.0 away (out of window); S@2.0 is 8.0 away (out too)
        assert results == []

    def test_comparison_counting(self):
        cont = self._fill()
        probe = input_tuple("R", 5.0, {"a": 1})
        counted = []
        probe_container(
            cont,
            probe,
            (JoinPredicate.of("R.a", "S.a"),),
            {},
            count_comparisons=counted.append,
        )
        assert counted == [2]  # index narrowed to the two a=1 tuples

    def test_empty_predicates_scan_all(self):
        cont = self._fill()
        probe = input_tuple("R", 5.0, {"a": 1})
        results = probe_container(cont, probe, (), {})
        assert len(results) == 3
