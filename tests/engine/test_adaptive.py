"""Tests for epoch-based adaptive execution (Section VI)."""

import random

import pytest

from repro.core import (
    ClusterConfig,
    JoinPredicate,
    OptimizerConfig,
    Query,
    StatisticsCatalog,
)
from repro.core.adaptive import AdaptiveController, plan_signature, store_refcounts
from repro.engine import (
    AdaptiveRuntime,
    EpochStatistics,
    RuntimeConfig,
    input_tuple,
    reference_join,
    result_keys,
)

ATTRS = {"R": ["a"], "S": ["a", "b"], "T": ["b", "c"], "U": ["c"]}


def shifted_workload(seed=7, n=800, shift_at=8.0, shrunk_domain=3):
    """Random RSTU streams whose S.b/T.b domain collapses after ``shift_at``."""
    rng = random.Random(seed)
    streams = {r: [] for r in "RSTU"}
    inputs = []
    t = 0.0
    for _ in range(n):
        t += rng.random() * 0.05
        rel = rng.choice("RSTU")
        dom = shrunk_domain if t > shift_at else 40
        vals = {
            a: (rng.randint(0, dom) if a == "b" else rng.randint(0, 15))
            for a in ATTRS[rel]
        }
        tup = input_tuple(rel, t, vals)
        streams[rel].append(tup)
        inputs.append(tup)
    return streams, inputs


def make_controller(parallelism=2, solver="scipy"):
    """The scipy/HiGHS backend keeps per-epoch re-optimization fast enough
    for tier-1; solver equivalence itself is covered by the ILP suite."""
    q = Query.of("q", "R.a=S.a", "S.b=T.b", "T.c=U.c")
    cat = StatisticsCatalog(default_selectivity=0.02, default_window=5.0)
    for r in "RSTU":
        cat.with_rate(r, 20.0)
    cat.with_selectivity(JoinPredicate.of("S.b", "T.b"), 0.2)
    cfg = OptimizerConfig(cluster=ClusterConfig(default_parallelism=parallelism))
    return AdaptiveController(cat, [q], cfg, solver=solver), q


class TestEpochStatistics:
    def test_rate_estimation(self):
        stats = EpochStatistics(epoch=0)
        for i in range(10):
            stats.observe(input_tuple("R", i * 0.1, {"a": i}))
        assert stats.rate("R", epoch_length=2.0) == pytest.approx(5.0)
        assert stats.rate("S", epoch_length=2.0) is None

    def test_selectivity_from_histograms(self):
        stats = EpochStatistics(epoch=0)
        for i in range(10):
            stats.observe(input_tuple("R", i, {"a": i % 2}))
            stats.observe(input_tuple("S", i + 0.5, {"a": i % 2}))
        sel = stats.selectivity(JoinPredicate.of("R.a", "S.a"))
        # uniform over 2 values -> about 1/2 of pairs match
        assert sel == pytest.approx(0.5, rel=0.01)

    def test_selectivity_none_without_data(self):
        stats = EpochStatistics(epoch=0)
        assert stats.selectivity(JoinPredicate.of("R.a", "S.a")) is None

    def test_fold_into_keeps_base_for_unobserved(self):
        base = StatisticsCatalog(default_selectivity=0.3)
        base.with_rate("R", 7.0).with_rate("S", 9.0)
        stats = EpochStatistics(epoch=0)
        stats.observe(input_tuple("R", 0.5, {"a": 1}))
        q = Query.of("q", "R.a=S.a")
        folded = stats.fold_into(base, [q], epoch_length=1.0)
        assert folded.rate("R") == pytest.approx(1.0)
        assert folded.rate("S") == pytest.approx(9.0)  # unobserved: base value


class TestController:
    def test_initial_topology_and_signature(self):
        ctrl, _ = make_controller()
        topo = ctrl.initial_topology()
        assert topo.stores
        assert ctrl.current_plan is not None
        assert plan_signature(ctrl.current_plan) == ctrl.current_signature

    def test_decide_no_change_returns_none(self):
        ctrl, _ = make_controller()
        ctrl.initial_topology()
        out = ctrl.decide(0, ctrl.base_catalog)
        assert out is None
        assert ctrl.decisions[-1].changed is False

    def test_decide_on_shifted_stats_changes_plan(self):
        ctrl, _ = make_controller()
        ctrl.initial_topology()
        shifted = ctrl.base_catalog.copy()
        shifted.with_selectivity(JoinPredicate.of("S.b", "T.b"), 1e-4)
        shifted.with_selectivity(JoinPredicate.of("R.a", "S.a"), 0.5)
        out = ctrl.decide(0, shifted)
        assert out is not None

    def test_add_and_remove_query(self):
        ctrl, q = make_controller()
        ctrl.initial_topology()
        q2 = Query.of("q2", "S.b=T.b")
        ctrl.add_query(q2)
        assert ctrl.decide(1, ctrl.base_catalog) is not None
        ctrl.remove_query("q2")
        assert ctrl.decide(2, ctrl.base_catalog) is not None
        with pytest.raises(KeyError):
            ctrl.remove_query("q2")
        with pytest.raises(ValueError):
            ctrl.add_query(q)

    def test_refcounts_drop_with_queries(self):
        ctrl, q = make_controller()
        q2 = Query.of("q2", "S.b=T.b")
        ctrl.add_query(q2)
        ctrl.initial_topology()
        counts = ctrl.refcounts()
        assert counts["S"] == 2 and counts["T"] == 2  # shared by both
        assert counts["R"] == 1 and counts["U"] == 1
        ctrl.remove_query("q2")
        ctrl.decide(0, ctrl.base_catalog)
        counts = ctrl.refcounts()
        assert counts["S"] == 1 and counts["T"] == 1

    def test_store_refcounts_standalone(self):
        ctrl, _ = make_controller()
        ctrl.initial_topology()
        counts = store_refcounts(ctrl.current_plan)
        assert all(c >= 1 for sid, c in counts.items() if len(sid) == 1)


class TestAdaptiveRuntime:
    def test_exact_across_reconfigurations(self):
        ctrl, q = make_controller()
        streams, inputs = shifted_workload()
        windows = {r: 5.0 for r in "RSTU"}
        rt = AdaptiveRuntime(
            ctrl, windows, RuntimeConfig(mode="logical"), epoch_length=2.0
        )
        rt.run(inputs)
        assert rt.switches, "the shift must trigger at least one switch"
        assert result_keys(rt.results("q")) == result_keys(
            reference_join(q, streams, windows)
        )

    def test_static_baseline_is_also_exact(self):
        ctrl, q = make_controller()
        streams, inputs = shifted_workload()
        windows = {r: 5.0 for r in "RSTU"}
        rt = AdaptiveRuntime(
            ctrl,
            windows,
            RuntimeConfig(mode="logical"),
            epoch_length=2.0,
            adapt=False,
        )
        rt.run(inputs)
        assert not rt.switches
        assert result_keys(rt.results("q")) == result_keys(
            reference_join(q, streams, windows)
        )

    def test_decision_delay_is_two_epochs(self):
        """Stats from epoch i must not take effect before epoch i+2."""
        ctrl, q = make_controller()
        _, inputs = shifted_workload()
        windows = {r: 5.0 for r in "RSTU"}
        rt = AdaptiveRuntime(
            ctrl, windows, RuntimeConfig(mode="logical"), epoch_length=2.0
        )
        rt.run(inputs)
        for record in rt.switches:
            decision = next(
                d for d in ctrl.decisions if d.changed and d.epoch == record.epoch - 2
            )
            assert decision.epoch == record.epoch - 2

    def test_migration_counted_when_partitioning_changes(self):
        ctrl, q = make_controller(parallelism=2)
        streams, inputs = shifted_workload()
        windows = {r: 5.0 for r in "RSTU"}
        rt = AdaptiveRuntime(
            ctrl, windows, RuntimeConfig(mode="logical"), epoch_length=2.0
        )
        rt.run(inputs)
        if rt.switches:
            assert rt.metrics.migrated_tuples >= 0

    def test_removed_store_state_released(self):
        ctrl, q = make_controller()
        streams, inputs = shifted_workload()
        windows = {r: 5.0 for r in "RSTU"}
        rt = AdaptiveRuntime(
            ctrl, windows, RuntimeConfig(mode="logical"), epoch_length=2.0
        )
        rt.run(inputs)
        removed = {s for rec in rt.switches for s in rec.removed_stores}
        active = set(rt.topology.stores)
        for store_id in removed - active:
            # logical mode drops the retired store's tasks outright (no
            # in-flight messages can need them); any retained tasks (timed
            # mode) must at least have released their state
            assert all(
                task.stored_tuples() == 0
                for task in rt.tasks.get(store_id, [])
            )

    def test_timed_adaptive_runs_to_completion(self):
        ctrl, q = make_controller()
        _, inputs = shifted_workload(n=400)
        windows = {r: 5.0 for r in "RSTU"}
        rt = AdaptiveRuntime(
            ctrl, windows, RuntimeConfig(mode="timed"), epoch_length=2.0
        )
        rt.run(inputs)
        assert rt.metrics.results_emitted > 0
        assert not rt.metrics.failed


class TestWindowGrowth:
    """Retention across rewires: grow-only, honest about evicted history.

    A widening install is fine while the wider window can still reach every
    needed tuple; once eviction has discarded history the new window would
    join against, the install must fail loudly (``WindowGrowthError``)
    instead of silently under-reporting.  A narrowing install keeps the
    incumbent horizon as slack.
    """

    def _topology(self, window):
        from repro.core import build_topology
        from repro.core.optimizer import MultiQueryOptimizer

        query = Query.of("q", "R.a=S.a")
        catalog = StatisticsCatalog(
            default_selectivity=0.1, default_window=window
        )
        for rel in ("R", "S"):
            catalog.with_rate(rel, 10.0).with_window(rel, window)
        cfg = OptimizerConfig(cluster=ClusterConfig(default_parallelism=1))
        opt = MultiQueryOptimizer(catalog, cfg, solver="scipy")
        return build_topology(opt.optimize([query]).plan, catalog, cfg.cluster)

    def test_widening_before_eviction_proceeds(self):
        from repro.engine import RewirableRuntime

        rt = RewirableRuntime(
            self._topology(2.0),
            {"R": 2.0, "S": 2.0},
            RuntimeConfig(mode="logical"),
        )
        rt.run([input_tuple("R", 0.5, {"a": 1})])
        rt.install(self._topology(5.0), now=0.6, windows={"R": 5.0, "S": 5.0})
        # the old window would have excluded this pair (gap 3.5 > 2)
        rt.run([input_tuple("S", 4.0, {"a": 1})])
        results = rt.results("q")
        assert len(results) == 1
        assert results[0].timestamps == {"R": 0.5, "S": 4.0}

    def test_widening_past_evicted_history_raises(self):
        from repro.engine import RewirableRuntime, WindowGrowthError

        rt = RewirableRuntime(
            self._topology(2.0),
            {"R": 2.0, "S": 2.0},
            RuntimeConfig(mode="logical", evict_every=1),
        )
        rt.run(
            [
                input_tuple("R", 0.5, {"a": 1}),
                input_tuple("S", 1.0, {"a": 1}),
                input_tuple("R", 4.0, {"a": 2}),  # evicts history through t=2
            ]
        )
        assert len(rt.results("q")) == 1
        with pytest.raises(WindowGrowthError, match="widens retention"):
            rt.install(
                self._topology(5.0), now=4.5, windows={"R": 5.0, "S": 5.0}
            )
        # the failed install left the runtime exactly on its old plan
        assert rt.metrics.rewires == 0
        assert rt.windows == {"R": 2.0, "S": 2.0}
        rt.run([input_tuple("S", 5.0, {"a": 2})])
        assert len(rt.results("q")) == 2

    def test_shrink_keeps_retention_slack(self):
        from repro.engine import RewirableRuntime

        rt = RewirableRuntime(
            self._topology(4.0),
            {"R": 4.0, "S": 4.0},
            RuntimeConfig(mode="logical"),
        )
        rt.run([input_tuple("R", 0.5, {"a": 1})])
        rt.install(self._topology(2.0), now=1.0, windows={"R": 2.0, "S": 2.0})
        # declared window shrank; the store keeps its wider horizon as slack
        assert rt.tasks["R"][0].retention == 4.0
        # surplus tuples fail the (narrower) window checks: no new result
        rt.run([input_tuple("S", 3.0, {"a": 1})])
        assert rt.results("q") == []
        # re-widening finds its history still present: the old pair joins
        rt.install(self._topology(4.0), now=3.5, windows={"R": 4.0, "S": 4.0})
        rt.run([input_tuple("S", 4.2, {"a": 1})])
        results = rt.results("q")
        assert len(results) == 1
        assert results[0].timestamps == {"R": 0.5, "S": 4.2}
