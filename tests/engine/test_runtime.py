"""Engine integration tests: correctness against the brute-force reference.

The central invariant (DESIGN.md §6): in logical mode, the engine's result
set over any workload equals the reference windowed join — for single- and
multi-query topologies, with and without MIR stores, under any partitioning.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ClusterConfig,
    JoinPredicate,
    OptimizerConfig,
    Query,
    StatisticsCatalog,
    build_topology,
)
from repro.core.optimizer import MultiQueryOptimizer
from repro.engine import (
    RuntimeConfig,
    TopologyRuntime,
    input_tuple,
    reference_join,
    result_keys,
)

ATTRS = {"R": ["a"], "S": ["a", "b"], "T": ["b", "c"], "U": ["c"]}


def make_streams(seed, n, domain=6, rels="RSTU", rate_step=0.2):
    rng = random.Random(seed)
    streams = {r: [] for r in rels}
    inputs = []
    t = 0.0
    for _ in range(n):
        t += rng.random() * rate_step
        rel = rng.choice(rels)
        vals = {a: rng.randint(0, domain) for a in ATTRS[rel]}
        tup = input_tuple(rel, t, vals)
        streams[rel].append(tup)
        inputs.append(tup)
    return streams, inputs


def optimize_and_run(queries, catalog, inputs, windows, parallelism=2, **cfg_kwargs):
    cfg = OptimizerConfig(
        cluster=ClusterConfig(default_parallelism=parallelism), **cfg_kwargs
    )
    opt = MultiQueryOptimizer(catalog, cfg, solver="own")
    res = opt.optimize(queries)
    topo = build_topology(res.plan, catalog, cfg.cluster)
    rt = TopologyRuntime(topo, windows, RuntimeConfig(mode="logical"))
    rt.run(inputs)
    return rt, res


def base_catalog(window=8.0):
    cat = StatisticsCatalog(default_selectivity=0.05, default_window=window)
    for r in "RSTU":
        cat.with_rate(r, 10.0)
    return cat


class TestLogicalCorrectness:
    def test_two_way_join(self):
        q = Query.of("q", "R.a=S.a")
        streams, inputs = make_streams(1, 200, rels="RS")
        windows = {"R": 8.0, "S": 8.0}
        rt, _ = optimize_and_run([q], base_catalog(), inputs, windows)
        assert result_keys(rt.results("q")) == result_keys(
            reference_join(q, streams, windows)
        )

    def test_three_way_linear(self):
        q = Query.of("q", "R.a=S.a", "S.b=T.b")
        streams, inputs = make_streams(2, 250, rels="RST")
        windows = {r: 8.0 for r in "RST"}
        rt, _ = optimize_and_run([q], base_catalog(), inputs, windows)
        assert result_keys(rt.results("q")) == result_keys(
            reference_join(q, streams, windows)
        )

    def test_multi_query_shared(self):
        q1 = Query.of("q1", "R.a=S.a", "S.b=T.b")
        q2 = Query.of("q2", "S.b=T.b", "T.c=U.c")
        streams, inputs = make_streams(3, 300)
        windows = {r: 8.0 for r in "RSTU"}
        rt, _ = optimize_and_run([q1, q2], base_catalog(), inputs, windows)
        for q in (q1, q2):
            assert result_keys(rt.results(q.name)) == result_keys(
                reference_join(q, streams, windows)
            )

    def test_mir_store_plan_is_exact(self):
        """Force MIR materialization and verify deliveries produce the
        complete store content (maintenance from every input relation)."""
        q1 = Query.of("q1", "R.b=S.b", "S.c=T.c")
        q2 = Query.of("q2", "S.c=T.c", "T.d=U.d")
        cat = StatisticsCatalog(default_selectivity=0.1, default_window=8.0)
        for r in "RSTU":
            cat.with_rate(r, 10.0)
        rng = random.Random(4)
        attrs = {"R": ["b"], "S": ["b", "c"], "T": ["c", "d"], "U": ["d"]}
        streams = {r: [] for r in "RSTU"}
        inputs = []
        t = 0.0
        for _ in range(300):
            t += rng.random() * 0.2
            rel = rng.choice("RSTU")
            tup = input_tuple(rel, t, {a: rng.randint(0, 4) for a in attrs[rel]})
            streams[rel].append(tup)
            inputs.append(tup)
        windows = {r: 8.0 for r in "RSTU"}
        cfg = OptimizerConfig(cluster=ClusterConfig(default_parallelism=3))
        opt = MultiQueryOptimizer(cat, cfg, solver="own")
        res = opt.optimize([q1, q2])
        topo = build_topology(res.plan, cat, cfg.cluster)
        rt = TopologyRuntime(topo, windows, RuntimeConfig(mode="logical"))
        rt.run(inputs)
        for q in (q1, q2):
            assert result_keys(rt.results(q.name)) == result_keys(
                reference_join(q, streams, windows)
            )

    def test_unsorted_inputs_rejected(self):
        q = Query.of("q", "R.a=S.a")
        cat = base_catalog()
        _, inputs = make_streams(5, 50, rels="RS")
        rt, _ = optimize_and_run([q], cat, [], {"R": 8.0, "S": 8.0})
        with pytest.raises(ValueError):
            rt.run(list(reversed(inputs)))

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        parallelism=st.integers(1, 4),
        domain=st.integers(2, 8),
    )
    def test_property_engine_equals_reference(self, seed, parallelism, domain):
        q1 = Query.of("q1", "R.a=S.a", "S.b=T.b")
        q2 = Query.of("q2", "S.b=T.b", "T.c=U.c")
        streams, inputs = make_streams(seed, 150, domain=domain)
        windows = {r: 6.0 for r in "RSTU"}
        cat = base_catalog(window=6.0)
        rt, _ = optimize_and_run(
            [q1, q2], cat, inputs, windows, parallelism=parallelism
        )
        for q in (q1, q2):
            assert result_keys(rt.results(q.name)) == result_keys(
                reference_join(q, streams, windows)
            )


class TestMetrics:
    def test_probe_cost_counts_broadcasts(self):
        """Partitioned stores with underivable attrs multiply tuples sent."""
        q = Query.of("q", "R.a=S.a", "S.b=T.b")
        cat = base_catalog()
        streams, inputs = make_streams(6, 200, rels="RST")
        windows = {r: 8.0 for r in "RST"}
        rt1, _ = optimize_and_run([q], cat, inputs, windows, parallelism=1)
        rt4, _ = optimize_and_run([q], cat, inputs, windows, parallelism=4)
        assert rt4.metrics.tuples_sent >= rt1.metrics.tuples_sent

    def test_memory_accounting_tracks_widths(self):
        q = Query.of("q", "R.a=S.a")
        cat = base_catalog()
        _, inputs = make_streams(7, 100, rels="RS")
        rt, _ = optimize_and_run([q], cat, inputs, {"R": 8.0, "S": 8.0})
        assert rt.metrics.peak_stored_units > 0
        assert rt.metrics.peak_stored_units >= rt.metrics.stored_units

    def test_results_per_query_counted(self):
        q = Query.of("q", "R.a=S.a")
        cat = base_catalog()
        streams, inputs = make_streams(8, 150, rels="RS")
        windows = {"R": 8.0, "S": 8.0}
        rt, _ = optimize_and_run([q], cat, inputs, windows)
        assert rt.metrics.results_per_query.get("q", 0) == len(
            reference_join(q, streams, windows)
        )

    def test_logical_latency_zero_under_batching(self):
        """Batched cascades must stamp each result with its own trigger
        instant — logical-mode latency stays exactly 0 (seed semantics)."""
        q = Query.of("q", "R.a=S.a")
        cat = base_catalog()
        streams, inputs = make_streams(12, 200, rels="RS")
        rt, _ = optimize_and_run([q], cat, inputs, {"R": 8.0, "S": 8.0})
        assert rt.metrics.results_emitted > 0
        assert rt.metrics.mean_latency == 0.0
        assert all(lat == 0.0 for lat in rt.metrics.latencies)

    def test_memory_limit_triggers_failure(self):
        q = Query.of("q", "R.a=S.a")
        cat = base_catalog()
        _, inputs = make_streams(9, 200, rels="RS")
        cfg = OptimizerConfig(cluster=ClusterConfig(default_parallelism=1))
        opt = MultiQueryOptimizer(cat, cfg, solver="own")
        res = opt.optimize([q])
        topo = build_topology(res.plan, cat, cfg.cluster)
        rt = TopologyRuntime(
            topo,
            {"R": 8.0, "S": 8.0},
            RuntimeConfig(mode="logical", memory_limit_units=20),
        )
        rt.run(inputs)
        assert rt.metrics.failed
        assert "memory overflow" in rt.metrics.failure_reason


class TestTimedMode:
    def _run(self, profile_scale=1.0, n=300, rate_step=0.02):
        from repro.engine.profiles import CLASH_PROFILE

        q = Query.of("q", "R.a=S.a", "S.b=T.b")
        cat = base_catalog()
        streams, inputs = make_streams(10, n, rels="RST", rate_step=rate_step)
        windows = {r: 8.0 for r in "RST"}
        cfg = OptimizerConfig(cluster=ClusterConfig(default_parallelism=2))
        opt = MultiQueryOptimizer(cat, cfg, solver="own")
        res = opt.optimize([q])
        topo = build_topology(res.plan, cat, cfg.cluster)
        rt = TopologyRuntime(
            topo,
            windows,
            RuntimeConfig(
                mode="timed", profile=CLASH_PROFILE.scaled(profile_scale)
            ),
        )
        rt.run(inputs)
        return rt, streams, windows, q

    def test_timed_mode_produces_results_with_latency(self):
        rt, streams, windows, q = self._run()
        assert rt.metrics.results_emitted > 0
        assert rt.metrics.mean_latency > 0

    def test_timed_mode_result_set_nearly_complete(self):
        """Timed mode is asynchronous: in-flight MIR deliveries can race
        probes (as in any real distributed engine), so a small fraction of
        results may be missed — but never invented."""
        rt, streams, windows, q = self._run()
        ref = result_keys(reference_join(q, streams, windows))
        got = result_keys(rt.results(q.name))
        assert not (got - ref), "timed mode must not invent results"
        assert len(got) >= 0.95 * len(ref)

    def test_slower_profile_increases_latency(self):
        fast, *_ = self._run(profile_scale=1.0)
        slow, *_ = self._run(profile_scale=50.0)
        assert slow.metrics.mean_latency > fast.metrics.mean_latency

    def test_latency_timeline_buckets(self):
        rt, *_ = self._run()
        timeline = rt.metrics.latency_timeline(bucket=1.0)
        assert timeline
        assert all(lat >= 0 for _, lat in timeline)

    def test_throughput_positive(self):
        rt, *_ = self._run()
        assert rt.metrics.throughput > 0
