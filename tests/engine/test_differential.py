"""Differential correctness harness: engine vs. brute-force reference.

Seeded, property-style workload generation: random multi-query workloads
over a chain schema are generated with :mod:`repro.streams.generators`,
optimized, compiled to a topology, and executed in logical mode; the
produced result *sets* must be exactly equal to the brute-force
:func:`repro.engine.reference.reference_join` — across window sizes,
parallelism degrees, input batch sizes, and (for the adaptive runtime)
epoch boundaries.

This suite is the regression net for hot-path refactors (batched cascades,
incremental eviction, orientation caching): any semantic drift shows up as
a result-set difference on at least one of the seeds.
"""

import random

import pytest

from repro.core import (
    ClusterConfig,
    JoinPredicate,
    OptimizerConfig,
    Query,
    StatisticsCatalog,
    build_topology,
)
from repro.core.adaptive import AdaptiveController
from repro.core.optimizer import MultiQueryOptimizer
from repro.engine import (
    AdaptiveRuntime,
    RuntimeConfig,
    TopologyRuntime,
    reference_join,
    result_keys,
)
from repro.streams.generators import StreamSpec, generate_streams, uniform_domain

# Chain schema: R.a=S.a, S.b=T.b, T.c=U.c, U.d=V.d; each relation also
# carries a second attribute so multi-predicate hops appear.
RELATIONS = ["R", "S", "T", "U", "V"]
ATTRS = {
    "R": ["a"],
    "S": ["a", "b"],
    "T": ["b", "c"],
    "U": ["c", "d"],
    "V": ["d"],
}
CHAIN_PREDICATES = ["R.a=S.a", "S.b=T.b", "T.c=U.c", "U.d=V.d"]


def random_queries(rng: random.Random) -> list:
    """1-3 random contiguous chain segments of length 2-4 (named uniquely)."""
    queries = []
    seen = set()
    for i in range(rng.randint(1, 3)):
        length = rng.randint(1, 3)  # number of join predicates
        start = rng.randrange(len(CHAIN_PREDICATES) - length + 1)
        segment = tuple(CHAIN_PREDICATES[start : start + length])
        if segment in seen:
            continue
        seen.add(segment)
        queries.append(Query.of(f"q{i}", *segment))
    return queries


def random_workload(seed: int):
    """Random queries, streams, windows, and parallelism for one seed."""
    rng = random.Random(seed)
    queries = random_queries(rng)
    relations = sorted({r for q in queries for r in q.relations})

    # Domain scales with the number of join hops so long chains do not
    # explode combinatorially (each hop multiplies expected partners).
    max_preds = max(len(q.predicates) for q in queries)
    domain = rng.randint(3, 8) * max_preds
    duration = 5.0
    specs = [
        StreamSpec(
            relation=rel,
            rate=rng.uniform(4.0, 9.0),
            attributes={a: uniform_domain(domain) for a in ATTRS[rel]},
        )
        for rel in relations
    ]
    streams, inputs = generate_streams(specs, duration, seed=seed)

    if rng.random() < 0.5:
        windows = {rel: rng.choice([1.5, 3.0, 6.0]) for rel in relations}
    else:  # uniform windows exercise the O(1) fast path
        w = rng.choice([1.5, 3.0, 6.0])
        windows = {rel: w for rel in relations}

    parallelism = rng.randint(1, 3)
    return queries, relations, streams, inputs, windows, parallelism


def catalog_for(relations, windows, rng_seed: int) -> StatisticsCatalog:
    rng = random.Random(rng_seed)
    catalog = StatisticsCatalog(
        default_selectivity=rng.choice([0.02, 0.1, 0.3]), default_window=8.0
    )
    for rel in relations:
        catalog.with_rate(rel, 10.0).with_window(rel, windows[rel])
    return catalog


def assert_engine_equals_reference(runtime, queries, streams, windows):
    for query in queries:
        expected = result_keys(reference_join(query, streams, windows))
        got = result_keys(runtime.results(query.name))
        missing, invented = expected - got, got - expected
        assert not missing, f"{query.name}: engine missed {len(missing)} results"
        assert not invented, f"{query.name}: engine invented {len(invented)} results"


class TestDifferentialLogical:
    """Engine output == reference on >= 20 seeded random workloads."""

    @pytest.mark.parametrize("seed", range(24))
    def test_random_workload_exact(self, seed):
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed)
        )
        catalog = catalog_for(relations, windows, seed)
        config = OptimizerConfig(
            cluster=ClusterConfig(default_parallelism=parallelism)
        )
        optimizer = MultiQueryOptimizer(catalog, config, solver="scipy")
        result = optimizer.optimize(queries)
        topology = build_topology(result.plan, catalog, config.cluster)
        runtime = TopologyRuntime(
            topology, windows, RuntimeConfig(mode="logical")
        )
        runtime.run(inputs)
        assert_engine_equals_reference(runtime, queries, streams, windows)

    @pytest.mark.parametrize("seed", [3, 11, 17])
    @pytest.mark.parametrize("batch_size", [1, 2, 256])
    def test_batch_size_invariant(self, seed, batch_size):
        """Result sets must not depend on the micro-batch draining size."""
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed)
        )
        catalog = catalog_for(relations, windows, seed)
        config = OptimizerConfig(
            cluster=ClusterConfig(default_parallelism=parallelism)
        )
        optimizer = MultiQueryOptimizer(catalog, config, solver="scipy")
        result = optimizer.optimize(queries)
        topology = build_topology(result.plan, catalog, config.cluster)
        runtime = TopologyRuntime(
            topology,
            windows,
            RuntimeConfig(mode="logical", batch_size=batch_size),
        )
        runtime.run(inputs)
        assert_engine_equals_reference(runtime, queries, streams, windows)

    @pytest.mark.parametrize("evict_every", [1, 16])
    def test_eviction_cadence_invariant(self, evict_every):
        """Aggressive eviction must never drop in-window join partners."""
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(5)
        )
        catalog = catalog_for(relations, windows, 5)
        config = OptimizerConfig(cluster=ClusterConfig(default_parallelism=2))
        optimizer = MultiQueryOptimizer(catalog, config, solver="scipy")
        result = optimizer.optimize(queries)
        topology = build_topology(result.plan, catalog, config.cluster)
        runtime = TopologyRuntime(
            topology,
            windows,
            RuntimeConfig(mode="logical", evict_every=evict_every),
        )
        runtime.run(inputs)
        assert_engine_equals_reference(runtime, queries, streams, windows)


class TestDifferentialAdaptive:
    """Epoch boundaries and plan switches must preserve exactness."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 9])
    def test_adaptive_logical_exact_across_epochs(self, seed):
        rng = random.Random(seed ^ 0xA5A5)
        query = Query.of("q", "R.a=S.a", "S.b=T.b")
        relations = ["R", "S", "T"]
        domain = rng.randint(2, 6)
        specs = [
            StreamSpec(
                relation=rel,
                rate=12.0,
                attributes={a: uniform_domain(domain) for a in ATTRS[rel]},
            )
            for rel in relations
        ]
        streams, inputs = generate_streams(specs, 8.0, seed=seed)
        windows = {rel: 4.0 for rel in relations}
        catalog = StatisticsCatalog(default_selectivity=0.05, default_window=4.0)
        for rel in relations:
            catalog.with_rate(rel, 12.0)
        # a biased initial selectivity makes a mid-run plan switch likely
        catalog.with_selectivity(JoinPredicate.of("S.b", "T.b"), 0.4)
        config = OptimizerConfig(cluster=ClusterConfig(default_parallelism=2))
        controller = AdaptiveController(catalog, [query], config, solver="scipy")
        runtime = AdaptiveRuntime(
            controller,
            windows,
            RuntimeConfig(mode="logical"),
            epoch_length=2.0,
        )
        runtime.run(inputs)
        assert_engine_equals_reference(runtime, [query], streams, windows)
