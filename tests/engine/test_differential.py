"""Differential correctness harness: engine vs. brute-force reference.

Seeded, property-style workload generation: random multi-query workloads
are generated with :mod:`repro.streams.generators`, optimized, compiled to
a topology, and executed in logical mode; the produced result *sets* must
be exactly equal to the brute-force
:func:`repro.engine.reference.reference_join`.

Covered axes (≥ 24 seeded workloads each):

* **chain** — contiguous chain-segment multi-query workloads (the original
  harness), across window sizes, parallelism degrees, batch sizes, and
  eviction cadences,
* **star** — hub-and-spokes queries sharing the hub relation,
* **cycle** — ring queries whose closing predicate is applied as a
  post-probe filter, plus arc subqueries sharing stores with the ring,
* **zipf** — Zipf-skewed join attributes over all three shapes,
* **ooo** — bounded out-of-order arrival feeds consumed in watermark mode
  (``RuntimeConfig.disorder_bound``) over all three shapes,

plus the cross-product invariances (shape × disorder × batch size ×
eviction cadence), the unequal-window sharing matrix (the O(1)
uniform-window shortcut must disengage), the adaptive runtime's epoch
boundaries, the **store-backend axis** (python hash-index vs numpy
columnar containers — identical results *and* identical metric
bookkeeping, including across a live rewire), and the **unified
adaptivity axis** (``JoinSession(reoptimize_every=...)`` must stay
oracle-exact *and* match a hand-driven :class:`AdaptiveRuntime`
decision-for-decision and switch-for-switch, ordered/watermark ×
chain/star × seeds × workers 1/2 inline).

This suite is the regression net for hot-path refactors (batched cascades,
incremental eviction, orientation caching, seq-based visibility): any
semantic drift shows up as a result-set difference on at least one seed.
"""

import random

import pytest

from repro.core import (
    ClusterConfig,
    JoinPredicate,
    OptimizerConfig,
    Query,
    StatisticsCatalog,
    build_topology,
)
from repro.core.adaptive import AdaptiveController
from repro.core.optimizer import MultiQueryOptimizer
from repro.engine import (
    AdaptiveRuntime,
    RuntimeConfig,
    TopologyRuntime,
    describe_result_diff,
    reference_join,
    result_keys,
)
from repro.streams.generators import (
    StreamSpec,
    bounded_delay_feed,
    generate_streams,
    uniform_domain,
    zipf_domain,
)

# Chain schema: R.a=S.a, S.b=T.b, T.c=U.c, U.d=V.d; each relation also
# carries a second attribute so multi-predicate hops appear.
RELATIONS = ["R", "S", "T", "U", "V"]
ATTRS = {
    "R": ["a"],
    "S": ["a", "b"],
    "T": ["b", "c"],
    "U": ["c", "d"],
    "V": ["d"],
}
CHAIN_PREDICATES = ["R.a=S.a", "S.b=T.b", "T.c=U.c", "U.d=V.d"]

#: star schema: hub H with one attribute per spoke; spoke Pi carries s<i>
STAR_SPOKES = ["P0", "P1", "P2", "P3"]


def random_queries(rng: random.Random) -> list:
    """1-3 random contiguous chain segments of length 2-4 (named uniquely)."""
    queries = []
    seen = set()
    for i in range(rng.randint(1, 3)):
        length = rng.randint(1, 3)  # number of join predicates
        start = rng.randrange(len(CHAIN_PREDICATES) - length + 1)
        segment = tuple(CHAIN_PREDICATES[start : start + length])
        if segment in seen:
            continue
        seen.add(segment)
        queries.append(Query.of(f"q{i}", *segment))
    return queries


def star_queries(rng: random.Random) -> tuple:
    """1-2 star queries over random spoke subsets, sharing the hub relation.

    Spoke ``Pi`` joins the hub on its fixed attribute ``s<i>``, so queries
    over overlapping spoke subsets share input stores and MIRs.
    """
    attrs = {"H": []}
    queries = []
    seen = set()
    for i in range(rng.randint(1, 2)):
        k = rng.randint(2, 3)
        spokes = tuple(sorted(rng.sample(range(len(STAR_SPOKES)), k)))
        if spokes in seen:
            continue
        seen.add(spokes)
        eqs = [f"H.s{j}=P{j}.s{j}" for j in spokes]
        queries.append(Query.of(f"q{i}", *eqs))
    for query in queries:
        for rel in query.relations:
            if rel == "H":
                continue
            j = rel[1:]
            attrs.setdefault(rel, []).append(f"s{j}")
            if f"s{j}" not in attrs["H"]:
                attrs["H"].append(f"s{j}")
    return queries, attrs


def cycle_queries(rng: random.Random) -> tuple:
    """A ring query (cycle-closing predicate) plus, sometimes, an arc chain.

    Ring of length 3-5 over ``C0..C{L-1}``; edge ``i`` joins neighbours on
    attribute ``e<i>``.  The arc subquery is the acyclic prefix of the same
    ring, so it shares every input store (and candidate MIR) with the
    cyclic query while exercising both planners side by side.
    """
    length = rng.randint(3, 5)
    ring = [f"C{i}" for i in range(length)]
    eqs = [
        f"{ring[i]}.e{i}={ring[(i + 1) % length]}.e{i}" for i in range(length)
    ]
    queries = [Query.of("q_ring", *eqs)]
    assert queries[0].is_cyclic
    if rng.random() < 0.5 and length >= 4:
        arc = rng.randint(2, length - 2)
        queries.append(Query.of("q_arc", *eqs[:arc]))
    attrs = {rel: [] for rel in ring}
    for i in range(length):
        attrs[ring[i]].append(f"e{i}")
        attrs[ring[(i + 1) % length]].append(f"e{i}")
    return queries, attrs


def _make_streams(rng, queries, attrs, duration, domain_gen, seed):
    relations = sorted({r for q in queries for r in q.relations})
    specs = [
        StreamSpec(
            relation=rel,
            rate=rng.uniform(4.0, 9.0),
            attributes={a: domain_gen() for a in attrs[rel]},
        )
        for rel in relations
    ]
    streams, inputs = generate_streams(specs, duration, seed=seed)
    return relations, streams, inputs


#: fixed per-shape seed salts (str hash() varies with PYTHONHASHSEED)
_SHAPE_SALT = {"chain": 0, "star": 0x51A2, "cycle": 0xC1C1}


def random_workload(seed: int, shape: str = "chain", skew: bool = False):
    """Random queries, streams, windows, and parallelism for one seed."""
    rng = random.Random(seed ^ _SHAPE_SALT[shape])
    if shape == "chain":
        queries = random_queries(rng)
        attrs = ATTRS
        max_preds = max(len(q.predicates) for q in queries)
        domain = rng.randint(3, 8) * max_preds
        duration = 5.0
    elif shape == "star":
        queries, attrs = star_queries(rng)
        domain = rng.randint(4, 8)
        duration = 4.0
    elif shape == "cycle":
        queries, attrs = cycle_queries(rng)
        domain = rng.randint(3, 6)
        duration = 5.0
    else:
        raise ValueError(shape)

    if skew:
        # skewed domains concentrate matches on heavy hitters; widen the
        # domain so multi-hop result counts stay testable
        alpha = rng.uniform(0.6, 1.1)
        domain = domain * 3
        duration = min(duration, 4.0)
        domain_gen = lambda: zipf_domain(domain, alpha)  # noqa: E731
    else:
        domain_gen = lambda: uniform_domain(domain)  # noqa: E731
    relations, streams, inputs = _make_streams(
        rng, queries, attrs, duration, domain_gen, seed
    )

    if rng.random() < 0.5:
        windows = {rel: rng.choice([1.5, 3.0, 6.0]) for rel in relations}
    else:  # uniform windows exercise the O(1) fast path
        w = rng.choice([1.5, 3.0, 6.0])
        windows = {rel: w for rel in relations}

    parallelism = rng.randint(1, 3)
    return queries, relations, streams, inputs, windows, parallelism


def catalog_for(relations, windows, rng_seed: int) -> StatisticsCatalog:
    rng = random.Random(rng_seed)
    catalog = StatisticsCatalog(
        default_selectivity=rng.choice([0.02, 0.1, 0.3]), default_window=8.0
    )
    for rel in relations:
        catalog.with_rate(rel, 10.0).with_window(rel, windows[rel])
    return catalog


def compile_topology(queries, relations, windows, parallelism, seed, solver="scipy"):
    """Optimize + compile one workload.

    The chain axes keep the exact scipy/HiGHS solve (PR-1 behaviour); the
    shape axes default to the greedy planner — a 5-ring's exact ILP runs
    into thousands of binaries and minutes of MILP time, while any feasible
    plan must produce identical result sets, which is what this harness
    proves.
    """
    catalog = catalog_for(relations, windows, seed)
    config = OptimizerConfig(
        cluster=ClusterConfig(default_parallelism=parallelism)
    )
    optimizer = MultiQueryOptimizer(catalog, config, solver=solver)
    result = optimizer.optimize(queries)
    return build_topology(result.plan, catalog, config.cluster)


def assert_engine_equals_reference(runtime, queries, streams, windows):
    for query in queries:
        expected = result_keys(reference_join(query, streams, windows))
        got = result_keys(runtime.results(query.name))
        assert expected == got, (
            f"{query.name}: {describe_result_diff(expected, got)}"
        )


class TestDifferentialLogical:
    """Engine output == reference on >= 24 seeded random workloads."""

    @pytest.mark.parametrize("seed", range(24))
    def test_random_workload_exact(self, seed):
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed)
        )
        topology = compile_topology(queries, relations, windows, parallelism, seed)
        runtime = TopologyRuntime(
            topology, windows, RuntimeConfig(mode="logical")
        )
        runtime.run(inputs)
        assert_engine_equals_reference(runtime, queries, streams, windows)

    @pytest.mark.parametrize("seed", [3, 11, 17])
    @pytest.mark.parametrize("batch_size", [1, 2, 256])
    def test_batch_size_invariant(self, seed, batch_size):
        """Result sets must not depend on the micro-batch draining size."""
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed)
        )
        topology = compile_topology(queries, relations, windows, parallelism, seed)
        runtime = TopologyRuntime(
            topology,
            windows,
            RuntimeConfig(mode="logical", batch_size=batch_size),
        )
        runtime.run(inputs)
        assert_engine_equals_reference(runtime, queries, streams, windows)

    @pytest.mark.parametrize("evict_every", [1, 16])
    def test_eviction_cadence_invariant(self, evict_every):
        """Aggressive eviction must never drop in-window join partners."""
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(5)
        )
        topology = compile_topology(queries, relations, windows, 2, 5)
        runtime = TopologyRuntime(
            topology,
            windows,
            RuntimeConfig(mode="logical", evict_every=evict_every),
        )
        runtime.run(inputs)
        assert_engine_equals_reference(runtime, queries, streams, windows)


class TestDifferentialShapes:
    """Star and cyclic join graphs: engine == reference per seeded workload."""

    @pytest.mark.parametrize("seed", range(24))
    def test_star_workload_exact(self, seed):
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed, shape="star")
        )
        topology = compile_topology(queries, relations, windows, parallelism, seed)
        runtime = TopologyRuntime(
            topology, windows, RuntimeConfig(mode="logical")
        )
        runtime.run(inputs)
        assert_engine_equals_reference(runtime, queries, streams, windows)

    @pytest.mark.parametrize("seed", range(24))
    def test_cycle_workload_exact(self, seed):
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed, shape="cycle")
        )
        topology = compile_topology(
            queries, relations, windows, parallelism, seed, solver="greedy"
        )
        runtime = TopologyRuntime(
            topology, windows, RuntimeConfig(mode="logical")
        )
        runtime.run(inputs)
        assert_engine_equals_reference(runtime, queries, streams, windows)

    def test_cycle_closing_predicate_is_post_probe_filter(self):
        """The compiled ProbeRule orders spanning-tree predicates first, so
        a cyclic hop's hash index is backed by a tree edge and the closing
        predicate filters candidates."""
        query = Query.cycle("tri", ["R", "S", "T"])
        windows = {rel: 3.0 for rel in query.relations}
        topology = compile_topology(
            [query], list(query.relations), windows, 1, 0
        )
        spanning = query.spanning_predicates()
        multi_pred_rules = [
            rule
            for ruleset in topology.rulesets.values()
            for rules in ruleset.values()
            for rule in rules
            if getattr(rule, "kind", "") == "probe" and len(rule.predicates) > 1
        ]
        assert multi_pred_rules, "a triangle plan must close the cycle somewhere"
        for rule in multi_pred_rules:
            assert rule.predicates[0] in spanning
            assert query.cycle_closing_predicates() & set(rule.predicates[1:])


class TestDifferentialSkew:
    """Zipf-skewed value domains across all shapes: engine == reference."""

    @pytest.mark.parametrize("seed", range(24))
    def test_zipf_workload_exact(self, seed):
        shape = ("chain", "star", "cycle")[seed % 3]
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed, shape=shape, skew=True)
        )
        topology = compile_topology(
            queries, relations, windows, parallelism, seed, solver="greedy"
        )
        runtime = TopologyRuntime(
            topology, windows, RuntimeConfig(mode="logical")
        )
        runtime.run(inputs)
        assert_engine_equals_reference(runtime, queries, streams, windows)


class TestDifferentialOutOfOrder:
    """Bounded out-of-order arrivals (watermark mode): engine == reference.

    The feed is re-ordered by per-tuple bounded delays; the reference is
    computed from the *event-time* streams — watermark mode must reproduce
    exactly the in-order result set.
    """

    @pytest.mark.parametrize("seed", range(24))
    def test_out_of_order_workload_exact(self, seed):
        shape = ("chain", "star", "cycle")[seed % 3]
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed, shape=shape)
        )
        rng = random.Random(seed ^ 0x00F)
        bound = rng.choice([0.5, 1.0, 2.5])
        feed = bounded_delay_feed(streams, bound, seed=seed)
        topology = compile_topology(
            queries, relations, windows, parallelism, seed, solver="greedy"
        )
        runtime = TopologyRuntime(
            topology,
            windows,
            RuntimeConfig(
                mode="logical",
                disorder_bound=bound,
                evict_every=rng.choice([16, 256]),
            ),
        )
        runtime.run(feed)
        assert_engine_equals_reference(runtime, queries, streams, windows)

    @pytest.mark.parametrize("seed", [1, 2])  # odd=cycle, even=star
    @pytest.mark.parametrize("batch_size", [1, 256])
    @pytest.mark.parametrize("evict_every", [1, 64])
    def test_disorder_batch_eviction_invariant(
        self, seed, batch_size, evict_every
    ):
        """Full cross product: shape x disorder x batch size x cadence."""
        shape = ("star", "cycle")[seed % 2]
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed, shape=shape)
        )
        feed = bounded_delay_feed(streams, 1.5, seed=seed)
        topology = compile_topology(
            queries, relations, windows, parallelism, seed, solver="greedy"
        )
        runtime = TopologyRuntime(
            topology,
            windows,
            RuntimeConfig(
                mode="logical",
                disorder_bound=1.5,
                batch_size=batch_size,
                evict_every=evict_every,
            ),
        )
        runtime.run(feed)
        assert_engine_equals_reference(runtime, queries, streams, windows)

    def test_watermark_eviction_frees_state(self):
        """Watermark-driven eviction must actually shed expired state (it
        lags event-time eviction by the disorder bound, not forever)."""
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(2)
        )
        windows = {rel: 1.5 for rel in relations}
        feed = bounded_delay_feed(streams, 0.5, seed=2)
        topology = compile_topology(queries, relations, windows, 1, 2)
        runtime = TopologyRuntime(
            topology,
            windows,
            RuntimeConfig(mode="logical", disorder_bound=0.5, evict_every=8),
        )
        runtime.run(feed)
        assert runtime.metrics.stored_units < runtime.metrics.peak_stored_units
        assert_engine_equals_reference(runtime, queries, streams, windows)


class TestDifferentialUnequalWindows:
    """Multi-query workloads sharing relations under *unequal* windows.

    The O(1) uniform-window shortcut must disengage (``_uniform_window is
    None``) and the per-pair ``min(window)`` semantics must still match the
    reference exactly.
    """

    @staticmethod
    def _shared_relation_workload(seed: int):
        rng = random.Random(seed ^ 0xBEEF)
        # two or three chain segments guaranteed to overlap on S/T
        segments = [
            ("q0", CHAIN_PREDICATES[0:2]),  # R,S,T
            ("q1", CHAIN_PREDICATES[1:3]),  # S,T,U
        ]
        if rng.random() < 0.5:
            segments.append(("q2", CHAIN_PREDICATES[1:2]))  # S,T
        queries = [Query.of(name, *preds) for name, preds in segments]
        relations = sorted({r for q in queries for r in q.relations})
        shared = set(queries[0].relations) & set(queries[1].relations)
        assert shared, "workload must share relations across queries"
        domain = rng.randint(4, 9)
        specs = [
            StreamSpec(
                relation=rel,
                rate=rng.uniform(4.0, 8.0),
                attributes={a: uniform_domain(domain) for a in ATTRS[rel]},
            )
            for rel in relations
        ]
        streams, inputs = generate_streams(specs, 5.0, seed=seed)
        # strictly pairwise-distinct windows: the shortcut must disengage
        choices = rng.sample([1.0, 1.5, 2.5, 4.0, 6.0], len(relations))
        windows = dict(zip(relations, choices))
        return queries, relations, streams, inputs, windows

    @pytest.mark.parametrize("seed", range(8))
    def test_unequal_windows_disengage_fast_path(self, seed):
        queries, relations, streams, inputs, windows = (
            self._shared_relation_workload(seed)
        )
        topology = compile_topology(queries, relations, windows, 2, seed)
        runtime = TopologyRuntime(
            topology, windows, RuntimeConfig(mode="logical")
        )
        assert runtime._uniform_window is None
        runtime.run(inputs)
        assert_engine_equals_reference(runtime, queries, streams, windows)

    def test_equal_windows_engage_fast_path(self):
        """Control: the same workload under one shared window length keeps
        the O(1) check engaged and stays exact."""
        queries, relations, streams, inputs, _ = (
            self._shared_relation_workload(3)
        )
        windows = {rel: 3.0 for rel in relations}
        topology = compile_topology(queries, relations, windows, 2, 3)
        runtime = TopologyRuntime(
            topology, windows, RuntimeConfig(mode="logical")
        )
        assert runtime._uniform_window == 3.0
        runtime.run(inputs)
        assert_engine_equals_reference(runtime, queries, streams, windows)


class TestDifferentialBackends:
    """Store-backend axis: python and columnar containers are
    observationally identical on every seeded workload.

    The columnar backend replaces per-tuple hash-index filtering with
    numpy column masks (``repro.engine.columnar``); any drift in equality,
    visibility, window, or eviction semantics shows up as a result-set
    difference here — across chain/star/cycle shapes, ordered and
    watermark arrivals, and aggressive eviction cadences.
    """

    @pytest.mark.parametrize("backend", ["python", "columnar"])
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("shape", ["chain", "star", "cycle"])
    def test_backend_parity_across_shapes(self, backend, seed, shape):
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed, shape=shape)
        )
        solver = "scipy" if shape == "chain" else "greedy"
        topology = compile_topology(
            queries, relations, windows, parallelism, seed, solver=solver
        )
        runtime = TopologyRuntime(
            topology,
            windows,
            RuntimeConfig(mode="logical", store_backend=backend),
        )
        runtime.run(inputs)
        assert_engine_equals_reference(runtime, queries, streams, windows)

    @pytest.mark.parametrize("backend", ["python", "columnar"])
    @pytest.mark.parametrize("seed", range(6))
    def test_backend_parity_watermark(self, backend, seed):
        shape = ("chain", "star", "cycle")[seed % 3]
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed, shape=shape)
        )
        bound = random.Random(seed ^ 0xCC).choice([0.5, 1.0, 2.0])
        feed = bounded_delay_feed(streams, bound, seed=seed)
        topology = compile_topology(
            queries, relations, windows, parallelism, seed, solver="greedy"
        )
        runtime = TopologyRuntime(
            topology,
            windows,
            RuntimeConfig(
                mode="logical", disorder_bound=bound, store_backend=backend
            ),
        )
        runtime.run(feed)
        assert_engine_equals_reference(runtime, queries, streams, windows)

    @pytest.mark.parametrize("evict_every", [1, 16])
    def test_columnar_eviction_boundaries(self, evict_every):
        """Aggressive watermark-driven eviction on the columnar backend:
        boundary-bucket compression must never drop in-window partners."""
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(5)
        )
        windows = {rel: 1.5 for rel in relations}
        feed = bounded_delay_feed(streams, 0.5, seed=5)
        topology = compile_topology(queries, relations, windows, 2, 5)
        runtime = TopologyRuntime(
            topology,
            windows,
            RuntimeConfig(
                mode="logical",
                disorder_bound=0.5,
                evict_every=evict_every,
                store_backend="columnar",
            ),
        )
        runtime.run(feed)
        assert runtime.metrics.stored_units < runtime.metrics.peak_stored_units
        assert_engine_equals_reference(runtime, queries, streams, windows)

    def test_backend_metric_parity(self):
        """Same workload, both backends: identical probe/comparison/eviction
        bookkeeping, not just identical result sets."""
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(7)
        )
        topology = compile_topology(queries, relations, windows, parallelism, 7)
        summaries = {}
        for backend in ("python", "columnar"):
            runtime = TopologyRuntime(
                topology,
                windows,
                RuntimeConfig(mode="logical", store_backend=backend),
            )
            runtime.run(inputs)
            m = runtime.metrics
            summaries[backend] = (
                m.inputs_ingested,
                m.tuples_sent,
                m.probes_executed,
                m.comparisons,
                m.results_emitted,
                m.stored_units,
            )
        assert summaries["python"] == summaries["columnar"]

    def test_columnar_state_survives_rewire(self):
        """A live rewire migrates columnar state: surviving stores keep the
        same ColumnarContainer objects (``preserved_tuples`` > 0), and the
        post-rewire session still matches the oracle."""
        from repro import JoinSession
        from repro.engine.columnar import ColumnarContainer
        from repro.streams.generators import StreamSpec, generate_streams

        session = JoinSession(
            window=2.5, solver="scipy", store_backend="columnar"
        )
        session.add_query("q1", "R.a=S.a", "S.b=T.b")
        specs = [
            StreamSpec(
                relation=rel,
                rate=20.0,
                attributes={a: uniform_domain(6) for a in ATTRS[rel]},
            )
            for rel in ["R", "S", "T", "U"]
        ]
        streams, feed = generate_streams(specs, 6.0, seed=11)
        cut = len(feed) // 2
        for tup in feed[:cut]:
            if tup.trigger in session.relations:
                session.push_batch([tup])
        session.flush()
        runtime = session._runtime
        before = {
            store_id: runtime.tasks[store_id][0].containers
            for store_id in ("S", "T")
        }
        for containers in before.values():
            assert all(
                isinstance(c, ColumnarContainer) for c in containers.values()
            )
        assert session.stored_tuples() > 0

        session.add_query("q2", "S.b=T.b", "T.c=U.c")  # shares S and T
        assert session.metrics.rewires == 1
        assert session.metrics.preserved_tuples > 0
        for store_id, containers in before.items():
            task = runtime.tasks[store_id][0]
            # same container objects: columnar arrays migrated, not rebuilt
            assert task.containers is containers
        # new stores introduced by the rewire are columnar too
        for tasks in runtime.tasks.values():
            for task in tasks:
                assert all(
                    isinstance(c, ColumnarContainer)
                    for c in task.containers.values()
                )
        for tup in feed[cut:]:
            if tup.trigger in session.relations:
                session.push_batch([tup])
        report = session.verify()
        assert report.ok, report.describe()
        assert report.checks["q2"].expected > 0


class TestDifferentialAdaptive:
    """Epoch boundaries and plan switches must preserve exactness."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 9])
    def test_adaptive_logical_exact_across_epochs(self, seed):
        rng = random.Random(seed ^ 0xA5A5)
        query = Query.of("q", "R.a=S.a", "S.b=T.b")
        relations = ["R", "S", "T"]
        domain = rng.randint(2, 6)
        specs = [
            StreamSpec(
                relation=rel,
                rate=12.0,
                attributes={a: uniform_domain(domain) for a in ATTRS[rel]},
            )
            for rel in relations
        ]
        streams, inputs = generate_streams(specs, 8.0, seed=seed)
        windows = {rel: 4.0 for rel in relations}
        catalog = StatisticsCatalog(default_selectivity=0.05, default_window=4.0)
        for rel in relations:
            catalog.with_rate(rel, 12.0)
        # a biased initial selectivity makes a mid-run plan switch likely
        catalog.with_selectivity(JoinPredicate.of("S.b", "T.b"), 0.4)
        config = OptimizerConfig(cluster=ClusterConfig(default_parallelism=2))
        controller = AdaptiveController(catalog, [query], config, solver="scipy")
        runtime = AdaptiveRuntime(
            controller,
            windows,
            RuntimeConfig(mode="logical"),
            epoch_length=2.0,
        )
        runtime.run(inputs)
        assert_engine_equals_reference(runtime, [query], streams, windows)


def _fresh_feed(feed):
    """Reset arrival sequence numbers so a feed can be replayed.

    The drivers assign (and trust pre-assigned) ``StreamTuple.seq``; replaying
    the same tuple objects through a second runtime must start from a clean
    slate or the second run would inherit the first run's sequencing.
    """
    for tup in feed:
        tup.seq = 0
    return feed


class TestDifferentialSharded:
    """Shard axis: ``workers`` ∈ {1, 2, 4} crossed against shape × backend ×
    arrival mode — result sets *and* the driver-owned metrics must exactly
    equal the single-process runtime on every seeded workload.

    The matrix runs the inline transport (identical sharded semantics —
    routing, per-shard runtimes, snapshot watermarks, deterministic merge —
    minus the IPC), keeping 12 seeds × 3 worker counts fast and
    deterministic; `test_process_transport_exact` runs real worker
    processes on a sample of the same workloads.
    """

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("seed", range(12))
    def test_shard_axis_exact(self, seed, workers):
        from dataclasses import replace

        from repro.engine import ShardedRuntime

        shape = ("chain", "star", "cycle")[seed % 3]
        backend = ("python", "columnar")[seed % 2]
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed, shape=shape)
        )
        if seed % 4 < 2:  # watermark arrivals on half the seeds
            bound = random.Random(seed ^ 0x5A).choice([0.5, 1.0, 2.0])
            feed = list(bounded_delay_feed(streams, bound, seed=seed))
        else:
            bound = None
            feed = list(inputs)
        solver = "scipy" if shape == "chain" else "greedy"
        topology = compile_topology(
            queries, relations, windows, parallelism, seed, solver=solver
        )
        config = RuntimeConfig(
            mode="logical", disorder_bound=bound, store_backend=backend
        )
        base = TopologyRuntime(topology, windows, config)
        base.run(_fresh_feed(feed))
        sharded = ShardedRuntime(
            topology, windows, replace(config, workers=workers),
            transport="inline",
        )
        sharded.run(_fresh_feed(feed))
        assert_engine_equals_reference(sharded, queries, streams, windows)
        for query in queries:
            assert result_keys(sharded.results(query.name)) == result_keys(
                base.results(query.name)
            ), query.name
        # driver-owned counters are exact under sharding (broadcast-affected
        # flow counters are covered by test_colocated_flow_counters_exact)
        assert sharded.metrics.inputs_ingested == base.metrics.inputs_ingested
        assert sharded.metrics.results_emitted == base.metrics.results_emitted
        assert sharded.metrics.results_per_query == base.metrics.results_per_query
        assert sharded.metrics.late_dropped == base.metrics.late_dropped
        assert sharded.watermark() == base.watermark()
        sharded.close()

    @pytest.mark.parametrize("seed", [0, 7])
    def test_process_transport_exact(self, seed):
        """Real multiprocessing workers on a sample of the matrix above."""
        from dataclasses import replace

        from repro.engine import ShardedRuntime

        shape = ("chain", "star", "cycle")[seed % 3]
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed, shape=shape)
        )
        solver = "scipy" if shape == "chain" else "greedy"
        topology = compile_topology(
            queries, relations, windows, parallelism, seed, solver=solver
        )
        config = RuntimeConfig(mode="logical", disorder_bound=1.0)
        feed = list(bounded_delay_feed(streams, 1.0, seed=seed))
        base = TopologyRuntime(topology, windows, config)
        base.run(_fresh_feed(feed))
        with ShardedRuntime(
            topology, windows, replace(config, workers=2),
            transport="process",
        ) as sharded:
            sharded.run(_fresh_feed(feed))
            assert_engine_equals_reference(sharded, queries, streams, windows)
            assert (
                sharded.metrics.results_per_query
                == base.metrics.results_per_query
            )

    def test_colocated_flow_counters_exact(self):
        """With every relation partitioned (no broadcast), the *full* flow
        counter set — sends, probes, comparisons, stored units — sums across
        shards to exactly the single-process values."""
        from dataclasses import replace

        from repro.engine import ShardedRuntime

        queries = [Query.of("q", "R.a=S.a")]
        rng = random.Random(17)
        specs = [
            StreamSpec(
                relation=rel,
                rate=15.0,
                attributes={"a": uniform_domain(6)},
            )
            for rel in ("R", "S")
        ]
        streams, inputs = generate_streams(specs, 6.0, seed=17)
        windows = {"R": 3.0, "S": 3.0}
        topology = compile_topology(queries, ["R", "S"], windows, 2, 17)
        config = RuntimeConfig(mode="logical")
        base = TopologyRuntime(topology, windows, config)
        base.run(_fresh_feed(list(inputs)))
        sharded = ShardedRuntime(
            topology, windows, replace(config, workers=3), transport="inline"
        )
        assert sharded.router.metrics_exact, sharded.router.describe()
        sharded.run(_fresh_feed(list(inputs)))
        assert_engine_equals_reference(sharded, queries, streams, windows)
        for field in (
            "messages_sent",
            "tuples_sent",
            "probes_executed",
            "comparisons",
            "stored_units",
            "results_emitted",
        ):
            assert getattr(sharded.metrics, field) == getattr(
                base.metrics, field
            ), field
        sharded.close()


class TestDifferentialAutoBackend:
    """``store_backend="auto"`` axis: per-store hybrid backend selection
    must be observationally invisible.  Auto bootstraps every store on the
    python backend and re-picks per task at ``install()`` from observed
    width/probe statistics, so exact result *and* checked-metric parity
    against both fixed backends is the contract — across shapes, arrival
    modes, worker counts, and a mid-stream rewire that actually flips
    container implementations.
    """

    @staticmethod
    def _summary(runtime):
        m = runtime.metrics
        return (
            m.inputs_ingested,
            m.tuples_sent,
            m.probes_executed,
            m.comparisons,
            m.results_emitted,
            m.stored_units,
        )

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("seed", range(6))
    def test_auto_axis_exact(self, seed, workers):
        from dataclasses import replace

        from repro.engine import ShardedRuntime

        shape = ("chain", "star", "cycle")[seed % 3]
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed, shape=shape)
        )
        if seed % 2:  # watermark arrivals on odd seeds
            bound = random.Random(seed ^ 0xB0).choice([0.5, 1.0, 2.0])
            feed = list(bounded_delay_feed(streams, bound, seed=seed))
        else:
            bound = None
            feed = list(inputs)
        solver = "scipy" if shape == "chain" else "greedy"
        topology = compile_topology(
            queries, relations, windows, parallelism, seed, solver=solver
        )
        summaries, results = {}, {}
        for backend in ("python", "columnar", "auto"):
            config = RuntimeConfig(
                mode="logical", disorder_bound=bound, store_backend=backend
            )
            if workers == 1:
                runtime = TopologyRuntime(topology, windows, config)
            else:
                runtime = ShardedRuntime(
                    topology,
                    windows,
                    replace(config, workers=workers),
                    transport="inline",
                )
            runtime.run(_fresh_feed(feed))
            summaries[backend] = self._summary(runtime)
            results[backend] = {
                q.name: result_keys(runtime.results(q.name)) for q in queries
            }
            if backend == "auto":
                assert_engine_equals_reference(
                    runtime, queries, streams, windows
                )
            if workers > 1:
                runtime.close()
        assert summaries["auto"] == summaries["python"] == summaries["columnar"]
        assert results["auto"] == results["python"] == results["columnar"]

    def test_auto_switch_mid_stream_keeps_parity(self):
        """Thresholds forced to 1: the install() re-selection flips every
        live store to columnar mid-stream.  Results and checked metrics
        must still equal both fixed backends run through the *same*
        install, and the flip must not leak into ``migrated_tuples``."""
        from repro.engine import RewirableRuntime

        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(3)
        )
        topology = compile_topology(queries, relations, windows, parallelism, 3)
        feed = list(inputs)
        cut = len(feed) // 2
        summaries, results, migrated = {}, {}, {}
        for backend in ("python", "columnar", "auto"):
            runtime = RewirableRuntime(
                topology,
                windows,
                RuntimeConfig(
                    mode="logical",
                    store_backend=backend,
                    auto_width_threshold=1,
                    auto_probe_threshold=1,
                ),
            )
            _fresh_feed(feed)
            runtime.run(feed[:cut])
            # a no-op plan diff: only the backend re-selection acts
            runtime.install(topology, now=feed[cut - 1].trigger_ts)
            runtime.run(feed[cut:])
            summaries[backend] = self._summary(runtime)
            results[backend] = {
                q.name: result_keys(runtime.results(q.name)) for q in queries
            }
            migrated[backend] = runtime.metrics.migrated_tuples
            if backend == "auto":
                assert runtime.metrics.backend_switches > 0
                assert runtime.metrics.store_backends.get("columnar", 0) > 0
                assert_engine_equals_reference(
                    runtime, queries, streams, windows
                )
            else:
                assert runtime.metrics.backend_switches == 0
        assert summaries["auto"] == summaries["python"] == summaries["columnar"]
        assert results["auto"] == results["python"] == results["columnar"]
        assert migrated["auto"] == migrated["python"] == migrated["columnar"]

    def test_auto_backend_survives_rewire(self):
        """A session replan re-picks auto backends: wide, hot stores flip
        to columnar containers, the choice survives the rewire, and the
        post-rewire session still matches the oracle."""
        from repro import JoinSession
        from repro.engine.columnar import ColumnarContainer

        session = JoinSession(
            window=2.5,
            solver="scipy",
            store_backend="auto",
            auto_width_threshold=8,
            auto_probe_threshold=4,
        )
        session.add_query("q1", "R.a=S.a", "S.b=T.b")
        specs = [
            StreamSpec(
                relation=rel,
                rate=20.0,
                attributes={a: uniform_domain(6) for a in ATTRS[rel]},
            )
            for rel in ["R", "S", "T", "U"]
        ]
        streams, feed = generate_streams(specs, 6.0, seed=11)
        cut = len(feed) // 2
        for tup in feed[:cut]:
            if tup.trigger in session.relations:
                session.push_batch([tup])
        session.flush()
        # bootstrap: every store started on the python fallback
        assert session.metrics.store_backends.get("columnar", 0) == 0

        session.add_query("q2", "S.b=T.b", "T.c=U.c")
        assert session.metrics.backend_switches >= 1
        assert session.metrics.store_backends.get("columnar", 0) >= 1
        runtime = session._runtime
        flipped = [
            task
            for tasks in runtime.tasks.values()
            for task in tasks
            if task.resolved_backend == "columnar"
        ]
        assert flipped
        for task in flipped:
            assert all(
                isinstance(c, ColumnarContainer)
                for c in task.containers.values()
            )
        for tup in feed[cut:]:
            if tup.trigger in session.relations:
                session.push_batch([tup])
        report = session.verify()
        assert report.ok, report.describe()


class TestDifferentialVectorized:
    """``vectorized_cascades`` is a pure execution strategy: switching it
    off must change nothing observable — same result sets and the same
    probe/comparison/storage bookkeeping on every workload."""

    @pytest.mark.parametrize("seed", [1, 2, 4, 5])
    def test_vectorized_toggle_invariant(self, seed):
        shape = ("chain", "star", "cycle")[seed % 3]
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed, shape=shape)
        )
        if seed % 2:  # watermark arrivals on odd seeds
            bound = 1.0
            feed = list(bounded_delay_feed(streams, bound, seed=seed))
        else:
            bound = None
            feed = list(inputs)
        solver = "scipy" if shape == "chain" else "greedy"
        topology = compile_topology(
            queries, relations, windows, parallelism, seed, solver=solver
        )
        summaries, results = {}, {}
        for vectorized in (True, False):
            runtime = TopologyRuntime(
                topology,
                windows,
                RuntimeConfig(
                    mode="logical",
                    disorder_bound=bound,
                    store_backend="columnar",
                    vectorized_cascades=vectorized,
                ),
            )
            runtime.run(_fresh_feed(feed))
            m = runtime.metrics
            summaries[vectorized] = (
                m.inputs_ingested,
                m.tuples_sent,
                m.probes_executed,
                m.comparisons,
                m.results_emitted,
                m.stored_units,
            )
            results[vectorized] = {
                q.name: result_keys(runtime.results(q.name)) for q in queries
            }
        assert summaries[True] == summaries[False]
        assert results[True] == results[False]

    @pytest.mark.parametrize("backend", ["python", "columnar"])
    def test_all_miss_feed_activates_nothing(self, backend):
        """A hop with zero survivors must not touch downstream state: with
        no S tuples at all, every probe lands on an empty store, so no lazy
        index build or column activation may run anywhere (the batched
        probe path used to build indexes on empty containers)."""
        queries = [Query.of("q", "R.a=S.a", "S.b=T.b")]
        relations = ["R", "S", "T"]
        windows = {rel: 4.0 for rel in relations}
        specs = [
            StreamSpec(
                relation=rel,
                rate=15.0,
                attributes={a: uniform_domain(4) for a in ATTRS[rel]},
            )
            for rel in ("R", "T")  # S never arrives
        ]
        streams, feed = generate_streams(specs, 5.0, seed=23)
        topology = compile_topology(queries, relations, windows, 1, 23)
        runtime = TopologyRuntime(
            topology,
            windows,
            RuntimeConfig(mode="logical", store_backend=backend),
        )
        runtime.run(feed)
        assert runtime.metrics.probes_executed > 0
        assert runtime.metrics.results_emitted == 0
        for tasks in runtime.tasks.values():
            for task in tasks:
                for cont in task.containers.values():
                    assert getattr(cont, "index_rebuilds", 0) == 0
                    assert getattr(cont, "column_builds", 0) == 0


class TestDifferentialAdaptiveWatermark:
    """Satellite regression: the adaptive runtime used to reject
    ``disorder_bound`` outright.  Epoch re-optimization now composes with
    watermark mode — a disordered feed crosses epoch boundaries, plans are
    installed under watermark time, and the result set still equals the
    brute-force oracle."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 9])
    def test_adaptive_watermark_exact_across_epochs(self, seed):
        rng = random.Random(seed ^ 0xA5A5)
        query = Query.of("q", "R.a=S.a", "S.b=T.b")
        relations = ["R", "S", "T"]
        domain = rng.randint(2, 6)
        specs = [
            StreamSpec(
                relation=rel,
                rate=12.0,
                attributes={a: uniform_domain(domain) for a in ATTRS[rel]},
            )
            for rel in relations
        ]
        streams, inputs = generate_streams(specs, 8.0, seed=seed)
        feed = list(bounded_delay_feed(streams, 1.0, seed=seed ^ 0x77))
        windows = {rel: 4.0 for rel in relations}
        catalog = StatisticsCatalog(default_selectivity=0.05, default_window=4.0)
        for rel in relations:
            catalog.with_rate(rel, 12.0)
        # a biased initial selectivity makes a mid-run plan switch likely
        catalog.with_selectivity(JoinPredicate.of("S.b", "T.b"), 0.4)
        config = OptimizerConfig(cluster=ClusterConfig(default_parallelism=2))
        controller = AdaptiveController(catalog, [query], config, solver="scipy")
        runtime = AdaptiveRuntime(
            controller,
            windows,
            RuntimeConfig(mode="logical", disorder_bound=1.0),
            epoch_length=2.0,
        )
        runtime.run(feed)
        assert runtime.current_epoch >= 2
        # every seed actually installs a new plan under watermark time
        assert runtime.switches
        assert_engine_equals_reference(runtime, [query], streams, windows)


class TestDifferentialUnifiedAdaptivity:
    """The unified adaptivity loop, driven through the session facade.

    ``JoinSession(reoptimize_every=E)`` must be (a) oracle-exact and
    (b) indistinguishable from a hand-driven :class:`AdaptiveRuntime` fed
    the same tuples: identical :class:`DecisionRecord` sequences, identical
    switch epochs/times, identical result sets — at ``workers=1`` (same
    single-process rewirable runtime) and ``workers=2`` (statistics
    observed shard-side and folded back to the driver's loop), across
    ordered and watermark arrivals and chain and star shapes.
    """

    EPOCH = 2.0
    DEFAULT_RATE = 10.0
    DEFAULT_SELECTIVITY = 0.08

    def _twin(self, queries, relations, windows, parallelism, bound, solver):
        """An AdaptiveRuntime configured exactly like the session plans:
        same defaults catalog, same optimizer config, same epoch length."""
        base = StatisticsCatalog(
            default_selectivity=self.DEFAULT_SELECTIVITY,
            default_window=10.0,
        )
        for rel in relations:
            base.with_rate(rel, self.DEFAULT_RATE)
            base.with_window(rel, windows[rel])
        config = OptimizerConfig(
            cluster=ClusterConfig(default_parallelism=parallelism)
        )
        ordered = [q for q in sorted(queries, key=lambda q: q.name)]
        controller = AdaptiveController(base, ordered, config, solver=solver)
        runtime = AdaptiveRuntime(
            controller,
            dict(windows),
            RuntimeConfig(mode="logical", disorder_bound=bound),
            epoch_length=self.EPOCH,
        )
        return controller, runtime

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("seed", range(8))
    def test_session_epochs_match_adaptive_runtime(self, seed, workers):
        from repro import JoinSession

        shape = ("chain", "star")[seed % 2]
        queries, relations, streams, inputs, windows, parallelism = (
            random_workload(seed, shape=shape)
        )
        if seed % 4 >= 2:  # watermark arrivals on the back half of each pair
            bound = random.Random(seed ^ 0xAD).choice([0.5, 1.0])
            feed = list(bounded_delay_feed(streams, bound, seed=seed))
        else:
            bound = None
            feed = list(inputs)
        solver = "scipy" if shape == "chain" else "greedy"

        session = JoinSession(
            window=10.0,
            solver=solver,
            default_rate=self.DEFAULT_RATE,
            default_selectivity=self.DEFAULT_SELECTIVITY,
            disorder_bound=bound,
            workers=workers if workers > 1 else None,
            worker_transport="inline",
            parallelism=parallelism,
            reoptimize_every=self.EPOCH,
        )
        for rel, window in windows.items():
            session.with_window(rel, window)
        for query in queries:
            session.add_query(query)
        session.push_batch(_fresh_feed(feed))
        session.flush()
        report = session.verify()
        assert report.ok, report.describe()

        controller, twin = self._twin(
            queries, relations, windows, parallelism, bound, solver
        )
        twin.run(_fresh_feed(feed))

        # decision-for-decision: every epoch boundary consulted the
        # optimizer with the same measured statistics → same records
        assert session.decisions, "no epoch boundary was ever crossed"
        assert session.decisions == controller.decisions
        assert session.decisions == twin.metrics.decisions
        # switch-for-switch: changed plans install at identical epochs
        assert [
            (s.epoch, s.time, s.added_stores, s.removed_stores)
            for s in session.rewires
        ] == [
            (s.epoch, s.time, s.added_stores, s.removed_stores)
            for s in twin.switches
        ]
        # result parity (and, driver-exact, the headline counters)
        for query in queries:
            assert result_keys(session.results(query.name)) == result_keys(
                twin.results(query.name)
            ), query.name
        assert (
            session.metrics.inputs_ingested == twin.metrics.inputs_ingested
        )
        assert (
            session.metrics.results_emitted == twin.metrics.results_emitted
        )
        assert session.metrics.late_dropped == twin.metrics.late_dropped
        if workers == 1 or session._runtime.router.metrics_exact:
            for field in (
                "tuples_sent",
                "probes_executed",
                "comparisons",
                "stored_units",
            ):
                assert getattr(session.metrics, field) == getattr(
                    twin.metrics, field
                ), field
        session.close()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_observed_drift_flips_plan_without_churn(self, workers):
        """A deterministic drift scenario: the feed's observed selectivities
        contradict the defaults, so the loop's epoch decision re-optimizes
        and installs a new plan with *no* query churn — and stays exact."""
        from repro import JoinSession

        session = JoinSession(
            window=6.0,
            solver="scipy",
            default_rate=8.0,
            default_selectivity=0.5,  # deliberately wrong: everything joins
            workers=workers if workers > 1 else None,
            worker_transport="inline",
            reoptimize_every=2.0,
        )
        session.add_query("q", "R.a=S.a", "S.b=T.b")
        rng = random.Random(23)
        feed = []
        ts = 0.05
        # R.a=S.a matches almost never, S.b=T.b always — the measured
        # catalog inverts the default ordering pressure
        for i in range(220):
            rel = ("R", "S", "T")[i % 3]
            values = {
                "R": {"a": rng.randrange(50)},
                "S": {"a": rng.randrange(50) + 100, "b": 1},
                "T": {"b": 1, "c": rng.randrange(4)},
            }[rel]
            feed.append((rel, values, ts))
            ts += 0.04
        for rel, values, t in feed:
            session.push(rel, values, t)
        session.flush()
        assert session.decisions, "epochs never closed"
        assert any(d.changed for d in session.decisions)
        assert session.rewires, "the drifted plan was never installed"
        assert session.metrics.rewires == len(session.rewires)
        report = session.verify()
        assert report.ok, report.describe()
        session.close()

    def test_explicit_reoptimize_is_a_recorded_decision(self):
        """``session.reoptimize()`` consults the optimizer immediately:
        unchanged statistics → a DecisionRecord with ``changed=False`` and
        no install; drifted statistics → an immediate live rewire."""
        from repro import JoinSession

        session = JoinSession(
            window=6.0, solver="scipy", default_rate=8.0,
            default_selectivity=0.5,
        )
        session.add_query("q", "R.a=S.a", "S.b=T.b")
        rng = random.Random(29)
        ts = 0.05
        for i in range(40):
            rel = ("R", "S", "T")[i % 3]
            values = {
                "R": {"a": rng.randrange(3)},
                "S": {"a": rng.randrange(3), "b": rng.randrange(3)},
                "T": {"b": rng.randrange(3), "c": rng.randrange(3)},
            }[rel]
            session.push(rel, values, ts)
            ts += 0.05
        first = session.reoptimize()
        assert first is not None
        assert len(session.decisions) == 1
        # drift the stream: S.b=T.b becomes a guaranteed match while
        # R.a=S.a dries up completely
        for i in range(160):
            rel = ("R", "S", "T")[i % 3]
            values = {
                "R": {"a": rng.randrange(50)},
                "S": {"a": rng.randrange(50) + 100, "b": 1},
                "T": {"b": 1, "c": rng.randrange(4)},
            }[rel]
            session.push(rel, values, ts)
            ts += 0.05
        second = session.reoptimize()
        assert second is not None and second.changed
        assert len(session.decisions) == 2
        assert session.rewires and session.rewires[-1].epoch == 0
        report = session.verify()
        assert report.ok, report.describe()
