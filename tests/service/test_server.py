"""Service-front tests: bounded ingress, credit backpressure, protocol.

The backpressure criterion is *real, not advisory*: the ingress queue
is bounded at the configured depth (the observed high water never
exceeds it), PAUSE frames are emitted when producers are about to block,
and no tuple is lost under pressure.  Runs on plain ``asyncio.run`` —
no pytest-asyncio dependency.
"""

import asyncio
import json

import pytest

from repro import JoinServer, JoinSession, ServiceClient
from repro.streams.adapters import replay_async


def tiny_session(**kwargs):
    kwargs.setdefault("window", 5.0)
    return JoinSession(**kwargs).add_query("q1", "R.a=S.a")


def feed_items(n):
    items = []
    for i in range(n):
        items.append(("R", {"a": i % 3}, i * 0.1))
        items.append(("S", {"a": i % 3}, i * 0.1 + 0.01))
    return items


class TestBackpressure:
    def test_queue_bounded_pauses_emitted_zero_loss(self):
        async def scenario():
            session = tiny_session()
            server = JoinServer(session, queue_depth=4, drain_batch=2)
            async with server:
                client = await ServiceClient.connect(*server.address)
                async with client:
                    for relation, values, ts in feed_items(150):
                        await client.push(relation, values, ts)
                    reply = await client.flush()
                    stats = await client.stats()
                return session, server, client, stats, reply

            # unreachable; context managers close everything above

        session, server, client, stats, reply = asyncio.run(scenario())
        # the queue is *bounded*: observed depth never exceeded the bound
        assert 0 < server.queue_high_water <= 4
        assert stats["queue_high_water"] <= 4
        # PAUSE credit frames actually reached the client
        assert server.pauses_sent > 0
        assert client.pauses_seen > 0
        # zero tuple loss under pressure
        assert stats["pushed"] == 300
        assert server.ingested == 300
        # and the counters surfaced through the engine metrics
        assert session.metrics.backpressure_events == server.pauses_sent
        assert 0 < session.metrics.ingress_queue_high_water <= 4
        assert session.verify().ok

    def test_in_process_ingest_also_bounded(self):
        async def scenario():
            session = tiny_session()
            server = JoinServer(session, queue_depth=8, drain_batch=4)
            async with server:
                count = await replay_async(
                    server,
                    (item for item in feed_items(100)),
                    chunk=16,
                )
                await server.drain()
            return session, server, count

        session, server, count = asyncio.run(scenario())
        assert count == 200
        assert server.ingested == 200
        assert 0 < server.queue_high_water <= 8
        assert session.verify().ok


class TestProtocol:
    def test_push_batch_flush_results_stats_roundtrip(self):
        async def scenario():
            session = tiny_session()
            async with JoinServer(session) as server:
                async with await ServiceClient.connect(*server.address) as client:
                    ack = await client.push_batch(feed_items(20))
                    assert ack["pushed"] == 40
                    res = await client.results("q1")
                    stats = await client.stats()
            return session, res, stats

        session, res, stats = asyncio.run(scenario())
        assert res["count"] == len(session.results("q1")) > 0
        assert stats["summary"]["inputs"] == 40.0
        assert session.verify().ok

    def test_error_frames_for_bad_input(self):
        async def scenario():
            session = tiny_session()
            async with JoinServer(session) as server:
                async with await ServiceClient.connect(*server.address) as client:
                    with pytest.raises(RuntimeError, match="not read by any"):
                        await client.push_batch([("NOPE", {"x": 1}, 0.0)])
                    with pytest.raises(RuntimeError, match="never installed"):
                        await client.results("ghost")
            return session

        asyncio.run(scenario())

    def test_malformed_frames_answered_not_fatal(self):
        async def scenario():
            session = tiny_session()
            async with JoinServer(session) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not json\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["kind"] == "error" and "bad frame" in reply["error"]
                writer.write(json.dumps({"op": "teleport", "id": 1}).encode() + b"\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["kind"] == "error" and "unknown op" in reply["error"]
                # the connection survived both errors
                writer.write(
                    json.dumps({"op": "stats", "id": 2}).encode() + b"\n"
                )
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["kind"] == "ok" and reply["id"] == 2
                writer.close()

        asyncio.run(scenario())

    def test_dead_letters_over_the_wire(self):
        async def scenario():
            session = tiny_session(
                disorder_bound=0.5, allowed_lateness=0.5, on_late="dead_letter"
            )
            async with JoinServer(session) as server:
                async with await ServiceClient.connect(*server.address) as client:
                    await client.push_batch(
                        [
                            ("R", {"a": 1}, 5.0),
                            ("S", {"a": 1}, 5.0),
                            ("R", {"a": 1}, 1.0),  # lag 4.0 > D+L
                        ]
                    )
                    return await client.dead_letters()

        reply = asyncio.run(scenario())
        assert reply["count"] == 1
        assert reply["dead_letters"] == [
            {"relation": "R", "ts": 1.0, "values": {"R.a": 1}}
        ]


class TestCheckpointOverTheWire:
    def test_checkpoint_restore_parity(self, tmp_path):
        path = tmp_path / "wire.snap"

        async def interrupted():
            session = tiny_session()
            async with JoinServer(session) as server:
                async with await ServiceClient.connect(*server.address) as client:
                    await client.push_batch(feed_items(30))
                    reply = await client.checkpoint(str(path))
                    assert reply["pushed"] == 60

        asyncio.run(interrupted())

        baseline = tiny_session()
        for relation, values, ts in feed_items(60):
            baseline.push(relation, values, ts)
        restored = JoinSession.restore(path)
        for relation, values, ts in feed_items(60)[60:]:
            restored.push(relation, values, ts)
        assert [r.key() for r in restored.results("q1")] == [
            r.key() for r in baseline.results("q1")
        ]
        assert restored.metrics.summary() == baseline.metrics.summary()
        assert restored.verify().ok
