#!/usr/bin/env python3
"""Quickstart: optimize two overlapping stream join queries and run them.

Reproduces the paper's Section V.2 worked example end to end:

1. register two 3-way queries sharing the S ⋈ T join,
2. jointly optimize them with the ILP (probe orders + partitioning),
3. translate the plan into a topology,
4. push a synthetic stream through the simulated engine,
5. verify the produced join results against a brute-force reference.
"""

from repro import (
    MultiQueryOptimizer,
    Query,
    StatisticsCatalog,
    TopologyRuntime,
    build_topology,
    reference_join,
)
from repro.core import ClusterConfig, JoinPredicate, OptimizerConfig
from repro.engine import RuntimeConfig, result_keys
from repro.streams import StreamSpec, generate_streams, uniform_domain


def main() -> None:
    # --- 1. queries ----------------------------------------------------
    q1 = Query.of("q1", "R.a=S.a", "S.b=T.b")
    q2 = Query.of("q2", "S.b=T.b", "T.c=U.c")

    # --- 2. statistics & joint optimization ----------------------------
    catalog = StatisticsCatalog(default_selectivity=0.01, default_window=10.0)
    for relation in "RSTU":
        catalog.with_rate(relation, 100.0)
    # the S-T join is a bit less selective (the paper's 150 vs 100 example)
    catalog.with_selectivity(JoinPredicate.of("S.b", "T.b"), 0.015)

    config = OptimizerConfig(cluster=ClusterConfig(default_parallelism=1))
    optimizer = MultiQueryOptimizer(catalog, config, solver="own")

    individual = optimizer.optimize_individual([q1, q2])
    result = optimizer.optimize([q1, q2])

    print("=== optimization ===")
    print(f"individually optimal total probe cost: {individual.total_cost:g}")
    print(f"jointly optimized probe cost:          {result.plan.objective:g}")
    print(result.plan.describe())

    # --- 3. topology ----------------------------------------------------
    topology = build_topology(result.plan, catalog, config.cluster)
    print("\n=== topology ===")
    print(topology.describe())

    # --- 4. run a stream ------------------------------------------------
    specs = [
        StreamSpec("R", 20.0, {"a": uniform_domain(8)}),
        StreamSpec("S", 20.0, {"a": uniform_domain(8), "b": uniform_domain(8)}),
        StreamSpec("T", 20.0, {"b": uniform_domain(8), "c": uniform_domain(8)}),
        StreamSpec("U", 20.0, {"c": uniform_domain(8)}),
    ]
    streams, inputs = generate_streams(specs, duration=10.0, seed=42)
    windows = {relation: 10.0 for relation in "RSTU"}
    runtime = TopologyRuntime(topology, windows, RuntimeConfig(mode="logical"))
    runtime.run(inputs)

    print("\n=== execution ===")
    print(f"input tuples:      {runtime.metrics.inputs_ingested}")
    print(f"tuples sent:       {runtime.metrics.tuples_sent} (probe cost)")
    print(f"results q1 / q2:   {len(runtime.results('q1'))} / {len(runtime.results('q2'))}")

    # --- 5. verify -------------------------------------------------------
    for query in (q1, q2):
        expected = result_keys(reference_join(query, streams, windows))
        produced = result_keys(runtime.results(query.name))
        status = "OK" if expected == produced else "MISMATCH"
        print(f"verification {query.name}: {status} ({len(expected)} results)")


if __name__ == "__main__":
    main()
