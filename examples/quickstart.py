#!/usr/bin/env python3
"""Quickstart: optimize two overlapping stream join queries and run them.

Reproduces the paper's Section V.2 worked example end to end through the
:class:`repro.JoinSession` facade — register two 3-way queries sharing the
S ⋈ T join, declare the worked example's statistics, stream synthetic
tuples through the jointly optimized shared plan, and verify against the
brute-force reference.  The facade owns the catalog, optimizer, topology,
and runtime; the pre-facade five-step wiring is shown in
``docs/api.md`` (migration table) and still works unchanged.
"""

from repro import JoinSession
from repro.streams import StreamSpec, generate_into, uniform_domain


def main() -> None:
    # 1+2. queries, declared statistics, joint optimization (lazy: planned
    # at the first push; rates 100 and sel 0.015 are the paper's example)
    session = (
        JoinSession(window=10.0, solver="own", parallelism=1)
        .with_selectivity("S.b=T.b", 0.015)
        .add_query("q1", "R.a=S.a", "S.b=T.b")
        .add_query("q2", "S.b=T.b", "T.c=U.c")
    )
    for relation in "RSTU":
        session.with_rate(relation, 100.0)

    # 3+4. live push-based ingestion (topology built on the first tuple)
    specs = [
        StreamSpec("R", 20.0, {"a": uniform_domain(8)}),
        StreamSpec("S", 20.0, {"a": uniform_domain(8), "b": uniform_domain(8)}),
        StreamSpec("T", 20.0, {"b": uniform_domain(8), "c": uniform_domain(8)}),
        StreamSpec("U", 20.0, {"c": uniform_domain(8)}),
    ]
    generate_into(session, specs, duration=10.0, seed=42)
    session.flush()  # complete the last deferred micro-batch before reading

    print("=== session ===")
    print(session.describe())
    print("\n=== execution ===")
    print(f"input tuples:      {session.metrics.inputs_ingested}")
    print(f"tuples sent:       {session.metrics.tuples_sent} (probe cost)")
    print(
        f"results q1 / q2:   "
        f"{len(session.results('q1'))} / {len(session.results('q2'))}"
    )

    # 5. verify against the brute-force reference (wired automatically)
    print("\n=== verification ===")
    print(session.verify(raise_on_mismatch=True).describe())


if __name__ == "__main__":
    main()
