#!/usr/bin/env python3
"""TPC-H multi-query workload: the paper's Section VII.A scenario.

Compiles the five Figure-7a queries under all five strategies
(Flink/Storm Independent, Flink/Storm Shared, CLASH-MQO), runs each over
the same TPC-H-shaped stream on the timed engine, and prints the
throughput / memory / latency grid of Figures 7b–7d.
"""

from repro.experiments import format_table, ratio_summary, run_fig7


def main() -> None:
    print("compiling and running 5-query TPC-H workload under all strategies...")
    rows = run_fig7(num_queries=5, total_rate=150.0, duration=12.0, solver="scipy")

    print()
    print(
        format_table(
            ["strategy", "throughput t/s", "peak memory", "latency ms", "probe cost"],
            [
                (
                    r.strategy,
                    r.throughput,
                    r.peak_memory_units,
                    r.mean_latency_ms,
                    r.probe_cost,
                )
                for r in rows
            ],
        )
    )

    print()
    for key, value in ratio_summary(rows).items():
        print(f"{key}: {value:.2f}")
    print()
    print("paper reference points: CMQO ~2.6x independent throughput;")
    print("independent memory 3.1x shared (5 queries); CMQO latency +14-16%.")


if __name__ == "__main__":
    main()
