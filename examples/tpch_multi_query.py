#!/usr/bin/env python3
"""TPC-H multi-query workload: the paper's Section VII.A scenario.

Part 1 compiles the five Figure-7a queries under all five strategies
(Flink/Storm Independent, Flink/Storm Shared, CLASH-MQO), runs each over
the same TPC-H-shaped stream on the timed engine, and prints the
throughput / memory / latency grid of Figures 7b–7d.

Part 2 runs the same workload as a *live service*: a
:class:`repro.JoinSession` starts with four of the five queries, streams
TPC-H-shaped tuples through the shared plan, receives the fifth query
mid-stream (state migrates, nothing is rebuilt), and verifies every query
against the brute-force reference over its active interval.
"""

import argparse

from repro import JoinSession
from repro.experiments import format_table, ratio_summary, run_fig7
from repro.streams import five_query_workload, generate_streams, replay, tpch_specs
from repro.streams.tpch import tpch_catalog


def live_session_demo(total_rate: float, duration: float, window: float) -> None:
    queries = five_query_workload()
    session = JoinSession(window=window, solver="scipy", parallelism=2)
    # declared statistics from the TPC-H shape (observed stats take over at
    # the first replan); the catalog object itself remains usable unchanged
    catalog = tpch_catalog(total_rate=total_rate, window=window)
    for query in queries:
        for rel in query.relations:
            session.with_rate(rel, catalog.rate(rel))
        for pred in query.predicates:
            session.with_selectivity(pred, catalog.selectivity(pred))
    for query in queries[:4]:
        session.add_query(query)

    relations = {rel for q in queries for rel in q.relations}
    specs = [s for s in tpch_specs(total_rate=total_rate) if s.relation in relations]
    _, feed = generate_streams(specs, duration, seed=11)
    replay(session, (t for t in feed if t.trigger_ts < duration / 2))
    print(f"four queries live: {session.pushed} tuples pushed, "
          f"{session.metrics.results_emitted} results, "
          f"{session.stored_tuples()} stored")

    session.add_query(queries[4])  # q5 arrives mid-stream
    replay(session, (t for t in feed if t.trigger_ts >= duration / 2))
    record = session.rewires[-1]
    print(f"q5 arrived mid-stream: rewire added {list(record.added_stores)}, "
          f"preserved {session.metrics.preserved_tuples} stored tuples")
    print(session.verify(raise_on_mismatch=True).describe())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: shorter runs"
    )
    args = parser.parse_args()
    duration = 6.0 if args.quick else 12.0

    print("compiling and running 5-query TPC-H workload under all strategies...")
    rows = run_fig7(
        num_queries=5, total_rate=150.0, duration=duration, solver="scipy"
    )

    print()
    print(
        format_table(
            ["strategy", "throughput t/s", "peak memory", "latency ms", "probe cost"],
            [
                (
                    r.strategy,
                    r.throughput,
                    r.peak_memory_units,
                    r.mean_latency_ms,
                    r.probe_cost,
                )
                for r in rows
            ],
        )
    )

    print()
    for key, value in ratio_summary(rows).items():
        print(f"{key}: {value:.2f}")
    print()
    print("paper reference points: CMQO ~2.6x independent throughput;")
    print("independent memory 3.1x shared (5 queries); CMQO latency +14-16%.")

    print()
    print("=== the same workload as a live session (push + online arrival) ===")
    # dimension-heavy rates so PK/FK matches actually occur at demo scale
    live_session_demo(
        total_rate=500.0, duration=4.0 if args.quick else 8.0, window=2.0
    )


if __name__ == "__main__":
    main()
