#!/usr/bin/env python3
"""ILP optimization at scale: the Section VII.C study (Figures 9a-9f).

Generates random 3-way queries over a universe of relations, builds the
multi-query ILP, solves it, and reports probe-cost savings, problem sizes,
and optimization runtimes — the shapes of Figures 9a-9f.

Also cross-checks the in-house branch-and-bound solver against scipy/HiGHS
on a small instance.
"""

from repro.experiments import format_table, run_point


def main() -> None:
    print("=== 10 input relations (Figs. 9a/9b): sharing pays off ===")
    rows = []
    for nq in (20, 40, 60):
        point = run_point(10, nq, seed=nq)
        rows.append(
            (
                nq,
                point.num_distinct,
                point.individual_cost,
                point.mqo_cost,
                f"{100 * point.savings:.0f}%",
                point.num_variables,
                point.num_probe_orders,
                f"{point.optimize_seconds:.2f}s",
            )
        )
    print(
        format_table(
            ["nQ", "distinct", "individual", "MQO", "savings", "vars", "orders", "time"],
            rows,
        )
    )

    print()
    print("=== 100 input relations (Figs. 9c/9d): little overlap, few savings ===")
    rows = []
    for nq in (20, 40, 60):
        point = run_point(100, nq, seed=nq)
        rows.append(
            (
                nq,
                point.num_distinct,
                point.individual_cost,
                point.mqo_cost,
                f"{100 * point.savings:.0f}%",
                point.num_variables,
                point.num_probe_orders,
                f"{point.optimize_seconds:.2f}s",
            )
        )
    print(
        format_table(
            ["nQ", "distinct", "individual", "MQO", "savings", "vars", "orders", "time"],
            rows,
        )
    )

    print()
    print("=== solver cross-check (own branch-and-bound vs scipy/HiGHS) ===")
    own = run_point(10, 4, seed=3, solver="own")
    ref = run_point(10, 4, seed=3, solver="scipy")
    print(f"own B&B optimum:   {own.mqo_cost:g}  ({own.optimize_seconds:.2f}s)")
    print(f"scipy/HiGHS:       {ref.mqo_cost:g}  ({ref.optimize_seconds:.2f}s)")
    assert abs(own.mqo_cost - ref.mqo_cost) < 1e-6, "solvers disagree!"
    print("solvers agree.")


if __name__ == "__main__":
    main()
