#!/usr/bin/env python3
"""Adaptive rewiring under changing data characteristics (Section VI / Fig. 8).

Runs the four-way linear query R(a), S(a,b), T(b,c), U(c) twice over a
stream whose join characteristics flip mid-run:

* with a *static* plan (epoch statistics ignored) — latency climbs after
  the shift until the worker dies of memory overflow,
* with *adaptive* re-optimization — the controller detects the shift from
  epoch statistics, rewires the probe orders two epochs later, and latency
  recovers.

Also demonstrates runtime query arrival/removal (Section VI.B) through the
:class:`repro.JoinSession` facade: a query is added and another removed
*while tuples are flowing*, the shared plan is re-optimized from observed
statistics, and surviving store state migrates across the rewire instead of
being rebuilt.
"""

import argparse

from repro.experiments import run_fig8a, run_fig8b


def show(label, outcome) -> None:
    print(f"--- {label} ({outcome.mode}) ---")
    series = ", ".join(f"{t:.0f}s:{lat*1000:.1f}ms" for t, lat in outcome.latency_timeline)
    print(f"latency timeline: {series}")
    if outcome.failed:
        print(f"FAILED (memory overflow) at ~{outcome.failure_time:.1f}s")
    if outcome.switches:
        print(f"reconfigurations at: {[f'{t:.0f}s' for t in outcome.switches]}")
    print(
        f"mean latency before shift {outcome.mean_latency_before*1000:.1f}ms, "
        f"after {outcome.mean_latency_after*1000:.1f}ms"
    )
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: shorter runs, scipy-backed epoch re-optimization",
    )
    args = parser.parse_args()
    # quick mode routes per-epoch re-optimization through scipy/HiGHS (the
    # in-house solver is ~100x slower; equivalence is guarded separately by
    # tests/ilp/test_cross_validation.py) and shortens the simulated runs
    duration, shift_at = (12.0, 6.0) if args.quick else (24.0, 12.0)
    solver = "scipy" if args.quick else "auto"

    print("=== Fig. 8a: selectivity flip (static dies, adaptive recovers) ===")
    outcomes = run_fig8a(
        rate=40.0,
        duration=duration,
        shift_at=shift_at,
        memory_limit=30_000.0,
        seed=3,
        solver=solver,
    )
    show("static plan", outcomes["static"])
    show("adaptive plan", outcomes["adaptive"])

    print("=== Fig. 8b: rate skew (adaptive introduces an intermediate store) ===")
    outcomes = run_fig8b(
        fast_rate=150.0,
        slow_rate=3.0,
        duration=duration,
        shift_at=shift_at,
        seed=3,
        solver=solver,
    )
    show("static plan", outcomes["static"])
    show("adaptive plan", outcomes["adaptive"])
    if outcomes["adaptive"].mir_installed:
        print("the adaptive run materialized an intermediate (MIR) store\n")

    print("=== live query arrival / expiry over a JoinSession (Sec VI.B) ===")
    from repro import JoinSession
    from repro.streams import StreamSpec, generate_streams, replay, uniform_domain

    session = (
        JoinSession(window=2.0, solver="scipy")
        .add_query("q1", "R.a=S.a", "S.b=T.b")
        .add_query("q2", "S.b=T.b", "T.c=U.c")
    )
    specs = [
        StreamSpec("R", 15.0, {"a": uniform_domain(6)}),
        StreamSpec("S", 15.0, {"a": uniform_domain(6), "b": uniform_domain(6)}),
        StreamSpec("T", 15.0, {"b": uniform_domain(6), "c": uniform_domain(6)}),
        StreamSpec("U", 15.0, {"c": uniform_domain(6)}),
    ]
    _, feed = generate_streams(specs, duration=8.0, seed=7)
    replay(session, (t for t in feed if t.trigger_ts < 4.0))
    print(f"after {session.pushed} tuples: {session.stored_tuples()} stored, "
          f"{len(session.results('q1'))} q1 results")

    # online: a third query joins the running session (shares the S-T join),
    # then q1 expires — both rewires migrate the shared store state
    session.add_query("q3", "S.b=T.b")
    session.remove_query("q1")
    replay(
        session,
        (
            t
            for t in feed
            if t.trigger_ts >= 4.0 and t.trigger in session.relations
        ),
    )
    for record in session.rewires:
        print(f"rewire at τ={record.time:.2f}: +{list(record.added_stores)} "
              f"-{list(record.removed_stores)}")
    print(f"state preserved across rewires: "
          f"{session.metrics.preserved_tuples} tuples (0 would mean a rebuild)")
    print(session.verify(raise_on_mismatch=True).describe())


if __name__ == "__main__":
    main()
