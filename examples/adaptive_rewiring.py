#!/usr/bin/env python3
"""Adaptive rewiring under changing data characteristics (Section VI / Fig. 8).

Runs the four-way linear query R(a), S(a,b), T(b,c), U(c) twice over a
stream whose join characteristics flip mid-run:

* with a *static* plan (epoch statistics ignored) — latency climbs after
  the shift until the worker dies of memory overflow,
* with *adaptive* re-optimization — the controller detects the shift from
  epoch statistics, rewires the probe orders two epochs later, and latency
  recovers.

Also demonstrates runtime query arrival/removal with store refcounting
(Section VI.B).
"""

from repro.core import Query
from repro.experiments import run_fig8a, run_fig8b


def show(label, outcome) -> None:
    print(f"--- {label} ({outcome.mode}) ---")
    series = ", ".join(f"{t:.0f}s:{lat*1000:.1f}ms" for t, lat in outcome.latency_timeline)
    print(f"latency timeline: {series}")
    if outcome.failed:
        print(f"FAILED (memory overflow) at ~{outcome.failure_time:.1f}s")
    if outcome.switches:
        print(f"reconfigurations at: {[f'{t:.0f}s' for t in outcome.switches]}")
    print(
        f"mean latency before shift {outcome.mean_latency_before*1000:.1f}ms, "
        f"after {outcome.mean_latency_after*1000:.1f}ms"
    )
    print()


def main() -> None:
    print("=== Fig. 8a: selectivity flip (static dies, adaptive recovers) ===")
    outcomes = run_fig8a(
        rate=40.0, duration=24.0, shift_at=12.0, memory_limit=30_000.0, seed=3
    )
    show("static plan", outcomes["static"])
    show("adaptive plan", outcomes["adaptive"])

    print("=== Fig. 8b: rate skew (adaptive introduces an intermediate store) ===")
    outcomes = run_fig8b(
        fast_rate=150.0, slow_rate=3.0, duration=24.0, shift_at=12.0, seed=3
    )
    show("static plan", outcomes["static"])
    show("adaptive plan", outcomes["adaptive"])
    if outcomes["adaptive"].mir_installed:
        print("the adaptive run materialized an intermediate (MIR) store\n")

    print("=== query arrival / expiry with store refcounting (Sec VI.B) ===")
    from repro.core import OptimizerConfig, StatisticsCatalog
    from repro.core.adaptive import AdaptiveController

    catalog = StatisticsCatalog(default_selectivity=0.01, default_window=5.0)
    for relation in "RSTU":
        catalog.with_rate(relation, 50.0)
    controller = AdaptiveController(
        catalog, [Query.of("q1", "R.a=S.a", "S.b=T.b")], OptimizerConfig()
    )
    controller.initial_topology()
    print("initial store refcounts:", controller.refcounts())
    controller.add_query(Query.of("q2", "S.b=T.b", "T.c=U.c"))
    controller.decide(0, catalog)
    print("after adding q2:       ", controller.refcounts())
    controller.remove_query("q1")
    controller.decide(1, catalog)
    print("after removing q1:     ", controller.refcounts())
    print("stores with refcount 0 are deregistered at the next switch.")


if __name__ == "__main__":
    main()
