#!/usr/bin/env python
"""Service smoke: crash a live server with SIGKILL, restore, check parity.

The end-to-end drill the CI ``service-smoke`` job runs (and the sharpest
form of the checkpoint contract, because the "crash" is a real
``SIGKILL`` of a real process, not a dropped object):

1. boot a child process serving a fresh ``JoinSession`` over TCP
   (``--serve``), replay the first half of a generated workload through
   ``ServiceClient``, and checkpoint over the wire;
2. ``SIGKILL`` the child — no atexit, no flush, nothing graceful;
3. boot a second child that *restores* the session from the snapshot
   (``--serve --restore``), replay the second half, and collect results,
   metrics, and the built-in oracle verdict;
4. replay the whole workload into an in-process, uninterrupted session
   and assert exact parity: same results in the same order, same
   headline metric summary, ``verify().ok`` on both sides.

Also measures sustained push throughput of phase 3 and writes it (plus
the bench-schema-v6 ``service`` block layout) to ``--json-out``.

Usage: ``PYTHONPATH=src python scripts/service_smoke.py``
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time

from repro import JoinServer, JoinSession, ServiceClient  # noqa: E402

WINDOW = 3.0
QUEUE_DEPTH = 64


def build_session() -> JoinSession:
    return JoinSession(window=WINDOW).add_query("q1", "R.a=S.a", "S.b=T.b")


def make_feed(num_inputs: int):
    """Deterministic 3-stream workload (no RNG: reproducible across runs)."""
    feed = []
    for i in range(num_inputs):
        ts = i * 0.1
        feed.append(("R", {"a": i % 7}, ts))
        feed.append(("S", {"a": i % 7, "b": i % 5}, ts + 0.01))
        feed.append(("T", {"b": i % 5}, ts + 0.02))
    return feed


def serve(port: int, snapshot: str, restore: bool) -> None:
    """Child mode: serve a fresh or restored session until killed."""
    session = JoinSession.restore(snapshot) if restore else build_session()

    async def run() -> None:
        async with JoinServer(session, port=port, queue_depth=QUEUE_DEPTH):
            print("READY", flush=True)
            await asyncio.Event().wait()  # until SIGKILL / SIGTERM

    asyncio.run(run())


def spawn_server(port: int, snapshot: str, restore: bool) -> subprocess.Popen:
    argv = [sys.executable, os.path.abspath(__file__), "--serve",
            "--port", str(port), "--snapshot", snapshot]
    if restore:
        argv.append("--restore")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(argv, env=env, stdout=subprocess.PIPE, text=True)
    line = proc.stdout.readline().strip()
    if line != "READY":
        raise SystemExit(f"server child failed to start (got {line!r})")
    return proc


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


async def replay_phase(port: int, items, *, checkpoint: str = None):
    """Push ``items`` through TCP; optionally checkpoint at the end.

    Returns ``(elapsed_s, results_reply, stats_reply)``.
    """
    client = await ServiceClient.connect("127.0.0.1", port)
    async with client:
        start = time.perf_counter()
        await client.push_batch(items)
        elapsed = time.perf_counter() - start
        if checkpoint is not None:
            await client.checkpoint(checkpoint)
        await client.flush()
        results = await client.results("q1")
        stats = await client.stats()
    return elapsed, results, stats


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--inputs", type=int, default=200,
                        help="workload size in per-stream steps (x3 tuples)")
    parser.add_argument("--json-out", type=str, default=None,
                        help="write the throughput/parity report as JSON")
    parser.add_argument("--serve", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--port", type=int, default=0, help=argparse.SUPPRESS)
    parser.add_argument("--snapshot", type=str, default="", help=argparse.SUPPRESS)
    parser.add_argument("--restore", action="store_true", help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.serve:
        serve(args.port, args.snapshot, args.restore)
        return

    feed = make_feed(args.inputs)
    half = len(feed) // 2
    snapshot = os.path.abspath("service-smoke.snap")

    # phase 1: serve fresh, replay the first half, checkpoint over the wire
    port = free_port()
    child = spawn_server(port, snapshot, restore=False)
    try:
        asyncio.run(replay_phase(port, feed[:half], checkpoint=snapshot))
    finally:
        # phase 2: the crash — SIGKILL, the child gets no chance to clean up
        child.kill() if os.name == "nt" else os.kill(child.pid, signal.SIGKILL)
        child.wait()

    # phase 3: restore into a fresh process, finish the feed
    port = free_port()
    child = spawn_server(port, snapshot, restore=True)
    try:
        elapsed, results, stats = asyncio.run(replay_phase(port, feed[half:]))
    finally:
        child.terminate()
        child.wait()

    # phase 4: the uninterrupted oracle run, in-process
    baseline = build_session()
    for relation, values, ts in feed:
        baseline.push(relation, values, ts)
    baseline.flush()
    want = [
        {"timestamps": dict(r.timestamps), "values": dict(r.values)}
        for r in baseline.results("q1")
    ]
    if results["results"] != want:
        raise SystemExit(
            f"PARITY FAILURE: restored run produced {results['count']} "
            f"results vs {len(want)} uninterrupted (or different order)"
        )
    if stats["summary"] != baseline.metrics.summary():
        raise SystemExit(
            "PARITY FAILURE: metric summaries diverged\n"
            f"  restored:      {stats['summary']}\n"
            f"  uninterrupted: {baseline.metrics.summary()}"
        )
    if not baseline.verify().ok:
        raise SystemExit("PARITY FAILURE: oracle rejected the baseline run")
    restored_check = JoinSession.restore(snapshot)
    for relation, values, ts in feed[half:]:
        restored_check.push(relation, values, ts)
    if not restored_check.verify().ok:
        raise SystemExit("PARITY FAILURE: oracle rejected the restored run")
    os.unlink(snapshot)

    pushed = len(feed) - half
    ops = pushed / elapsed if elapsed > 0 else 0.0
    print(
        f"service smoke OK: {results['count']} results, "
        f"{stats['pushed']} tuples through a SIGKILL + restore, "
        f"{ops:,.0f} pushes/s post-restore"
    )
    if args.json_out is not None:
        payload = {
            "schema_version": 6,
            "service_smoke": {
                "inputs": len(feed),
                "results": results["count"],
                "post_restore_ops_per_s": ops,
                "queue_depth": QUEUE_DEPTH,
                "parity": "ok",
            },
        }
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")


if __name__ == "__main__":
    main()
