"""Topology execution: the simulated scale-out stream processor.

Two modes share all rule/routing logic (Algorithm 3):

* ``logical`` — input tuples are processed strictly in timestamp order and
  every probe cascade runs to completion before the next tuple arrives.
  This is *exact*: the produced result sets equal the brute-force reference
  join.  Probe cost (tuples sent), messages, and state sizes are measured;
  time-related metrics are meaningless here.

* ``timed`` — a discrete-event simulation: every store task is a FIFO
  server with service times from an :class:`~repro.engine.profiles.EngineProfile`;
  messages pay a network delay; queues grow under overload.  Throughput and
  end-to-end latency emerge from the queueing behaviour (the paper's
  Figures 7b/7d/8); a memory limit models the "workers failed due to memory
  overflow" outcome of Figure 8a.

Hot-path design (see docs/engine.md):

* Logical mode drains inputs in micro-batches: consecutive tuples of the
  same relation share one cascade, and every inter-task hop carries a
  *batch* of tuples, so edge/rule lookups, hash-index resolution, predicate
  orientation, and metrics bookkeeping are amortized across the batch.
  Batching is sound because (a) cascades triggered by the same relation
  never interact — probes only target stores whose lineage is disjoint
  from the probing tuple, stores always target lineage-containing stores —
  and (b) the strict ``arrived_before`` order makes same-trigger tuples
  invisible to each other.  Runtimes that override the per-input hooks
  (the adaptive runtime switches plans between inputs) fall back to
  per-tuple cascades automatically.
* Predicate orientation (probe-side vs. stored-side attribute) depends
  only on the probing tuple's lineage, which is fixed per topology edge;
  it is computed once per (rule, lineage) and cached.
* When every relation shares one window length, the pairwise window check
  collapses to an O(1) comparison of precomputed timestamp extrema.

Out-of-order arrivals (watermark mode, logical only): setting
``RuntimeConfig.disorder_bound`` declares that event timestamps within each
input stream lag its arrival order by at most that bound.  The runtime then

* assigns every input a wall-clock arrival sequence number and decides
  probe visibility by it (``seq_visibility`` in :func:`probe_batch`) —
  a stored partner may carry a later event timestamp than the probing
  tuple, as long as it *arrived* earlier,
* tracks a per-stream high-water event timestamp; the global *watermark*
  (min over ingest streams of high water − bound) replaces the current
  event time as the eviction reference, so partners a late straggler still
  needs are retained until the watermark passes them,
* rejects inputs that violate the declared bound (late beyond watermark)
  instead of silently dropping results.

The brute-force reference is defined purely on event timestamps, so the
differential harness proves both modes against the same oracle; with the
distinct event timestamps the generators produce, watermark-mode result
sets are bit-identical to the in-order run.  (Under exact timestamp ties
the modes differ: ordered mode's strict ``arrived_before`` rule hides
simultaneous partners from each other, while seq-based visibility — and
the reference — joins them.)
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.topology import EdgeSpec, ProbeRule, Rule, StoreRule, StoreSpec, Topology
from .columnar import ColumnarContainer, VectorBatch
from .metrics import EngineMetrics
from .profiles import CLASH_PROFILE, EngineProfile
from .routing import stable_hash, target_tasks
from .stores import (
    AUTO_PROBE_THRESHOLD,
    AUTO_WIDTH_THRESHOLD,
    StoreTask,
    check_backend_name,
    orient_predicates,
    probe_batch,
)
from .tuples import StreamTuple

#: timed-mode event heap entry: (event time, tie-break seq, kind, payload)
#: where payload is the coalesced input group for ``"input"`` events and
#: ``(edge label, store id, task index, tuple)`` for ``"msg"`` events
_TimedEvent = Tuple[float, int, str, Tuple[Any, ...]]

__all__ = [
    "LateArrivalError",
    "RuntimeConfig",
    "TopologyRuntime",
    "MemoryOverflowError",
    "global_watermark",
    "validate_arrival",
]


class MemoryOverflowError(RuntimeError):
    """A worker exceeded its memory budget (stored state + queued tuples)."""


class LateArrivalError(ValueError):
    """An input violated the arrival-order contract (see
    :func:`validate_arrival`).

    A distinct type so callers with a drop-straggler policy (the session's
    ``on_late="drop"``) can suppress exactly this rejection without
    swallowing unrelated ``ValueError``\\ s from the processing cascade.
    """


def validate_arrival(
    trigger: str,
    ts: float,
    last_ts: float,
    stream_high: Dict[str, float],
    bound: Optional[float],
) -> None:
    """The arrival-order contract, shared by the runtime and the session.

    Ordered mode (``bound is None``): event timestamps must be
    non-decreasing.  Watermark mode: a tuple may lag its *own* stream's
    high-water event timestamp by at most ``bound`` — a straggler beyond
    that would silently lose results, so it is rejected loudly instead.
    Raises :class:`LateArrivalError` (a ``ValueError``); callers update
    their order state only after this passes.
    """
    if bound is None:
        if ts < last_ts:
            raise LateArrivalError("inputs must be sorted by timestamp")
    else:
        high = stream_high.get(trigger)
        if high is not None and ts < high - bound:
            raise LateArrivalError(
                f"tuple of {trigger!r} at τ={ts:g} arrived "
                f"{high - ts:g} behind the stream high water "
                f"{high:g}, exceeding disorder_bound={bound:g}"
            )


def global_watermark(
    ingest: Iterable[str], stream_high: Dict[str, float], bound: Optional[float]
) -> float:
    """Low watermark over ``ingest`` streams given per-stream high waters.

    Shared by the single-process runtime and the sharded driver (which owns
    the authoritative high waters and ships snapshots to its workers): the
    minimum high water minus the disorder bound, or ``-inf`` while any
    ingest stream has not produced a tuple yet.
    """
    mark = float("inf")
    for relation in ingest:
        seen = stream_high.get(relation)
        if seen is None:
            return float("-inf")
        if seen < mark:
            mark = seen
    if mark == float("inf"):
        return float("-inf")
    return mark - (bound or 0.0)


@dataclass
class RuntimeConfig:
    """Execution knobs of the simulated engine."""

    mode: str = "logical"  # "logical" | "timed"
    profile: EngineProfile = CLASH_PROFILE
    collect_outputs: bool = True
    #: total memory budget in 'tuple units' (Σ width); None = unlimited
    memory_limit_units: Optional[float] = None
    #: run window eviction every N processed inputs/messages
    evict_every: int = 256
    #: fixed worker pool: tasks are multiplexed onto this many machines
    #: (paper: 96 workers on 8 nodes); None gives every task its own server,
    #: which removes contention between duplicated stores
    num_machines: Optional[int] = None
    #: logical mode: maximum number of consecutive same-relation inputs
    #: drained into one shared cascade (1 disables input batching)
    batch_size: int = 64
    #: logical mode: tolerate out-of-order arrivals whose event timestamp
    #: lags each stream's high water by at most this bound (watermark mode);
    #: None requires timestamp-sorted inputs
    disorder_bound: Optional[float] = None
    #: container implementation behind every store task: "python" keeps the
    #: dict/hash-index :class:`~repro.engine.stores.Container`, "columnar"
    #: selects the numpy-vectorized
    #: :class:`~repro.engine.columnar.ColumnarContainer`, and "auto" lets
    #: every task pick between the two from observed live-width and
    #: probe-rate statistics (re-evaluated at each
    #: :meth:`~repro.engine.rewiring.RewirableRuntime.install`)
    store_backend: str = "python"
    #: ``store_backend="auto"``: a task flips to the columnar container once
    #: its live state holds at least this many tuples (below it, numpy
    #: per-bucket dispatch overhead beats the dict index) ...
    auto_width_threshold: int = AUTO_WIDTH_THRESHOLD
    #: ... *and* it has been probed at least this many times (a store that
    #: only absorbs inserts gains nothing from vectorized probes)
    auto_probe_threshold: int = AUTO_PROBE_THRESHOLD
    #: logical mode: carry probe survivors hop-to-hop as
    #: :class:`~repro.engine.columnar.VectorBatch` index arrays on columnar
    #: stores under a uniform window, materializing merged tuples only at
    #: emission and store/python-backend boundaries.  Results and
    #: ``checked``/flow metrics are exactly invariant to this flag; it only
    #: defers (and often avoids) intermediate-tuple materialization.
    vectorized_cascades: bool = True
    #: policy for inputs that violate the arrival-order contract: "raise"
    #: surfaces :class:`LateArrivalError`, "drop" discards the tuple before
    #: any state mutation and counts it in ``metrics.late_dropped`` (the
    #: dead-letter policy the session facade exposes as ``on_late``)
    on_late: str = "raise"
    #: shard the topology across this many worker processes
    #: (:class:`~repro.engine.sharding.ShardedRuntime`); 1 runs the
    #: single-process engine in this process
    workers: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("logical", "timed"):
            raise ValueError(f"unknown runtime mode {self.mode!r}")
        check_backend_name(self.store_backend)
        if self.auto_width_threshold < 0 or self.auto_probe_threshold < 0:
            raise ValueError("auto-backend thresholds must be >= 0")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.on_late not in ("raise", "drop"):
            raise ValueError(
                f"unknown late-tuple policy {self.on_late!r}; "
                f"expected 'raise' or 'drop'"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.workers > 1:
            if self.mode != "logical":
                raise ValueError(
                    "sharded execution (workers > 1) requires logical mode"
                )
            if self.memory_limit_units is not None:
                raise ValueError(
                    "memory_limit_units is a single-process budget; it does "
                    "not compose with sharded execution (workers > 1)"
                )
        if self.disorder_bound is not None:
            if self.mode != "logical":
                raise ValueError(
                    "out-of-order arrivals (disorder_bound) require logical "
                    "mode: the timed simulator orders its event heap by "
                    "event timestamp"
                )
            if self.disorder_bound < 0:
                raise ValueError("disorder_bound must be >= 0")


class TopologyRuntime:
    """Deploys a topology and pushes input streams through it."""

    def __init__(
        self,
        topology: Topology,
        windows: Dict[str, float],
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.topology = topology
        self.windows = dict(windows)
        self.config = config or RuntimeConfig()
        if self.config.workers > 1:
            raise ValueError(
                "workers > 1 needs the sharded driver: construct a "
                "repro.engine.sharding.ShardedRuntime (or pass workers= to "
                "JoinSession) instead of a TopologyRuntime"
            )
        self.metrics = EngineMetrics()
        self.outputs: Dict[str, List[StreamTuple]] = {}
        self.tasks: Dict[str, List[StoreTask]] = {}
        self._storage_edges: Dict[str, bool] = {}
        self._queue_units = 0.0
        self._ops_since_evict = 0
        self._epoch = 0  # adaptive runtimes override epoch handling
        self._machine_free: List[float] = (
            [0.0] * self.config.num_machines if self.config.num_machines else []
        )
        self._dispatch_counter = 0
        #: (id(rule), probe lineage) -> (rule ref, oriented predicate pairs);
        #: the rule reference keeps the key's id() stable
        self._oriented_cache: Dict[
            Tuple[int, FrozenSet[str]],
            Tuple[ProbeRule, Tuple[Tuple[str, str], ...]],
        ] = {}
        self._uniform_window = self._compute_uniform_window()
        #: watermark mode: seq-based probe visibility + per-stream high water
        self._seq_visibility = self.config.disorder_bound is not None
        self._arrival_seq = 0
        self._stream_high: Dict[str, float] = {}
        # Push-driver state (logical mode): the pending same-relation
        # micro-batch and the strict-order high water.  Cross-input batching
        # requires the default per-input hooks: an overridden boundary hook
        # (adaptive plan switches) must observe a fully processed prefix
        # before every input.  A memory budget also disables it — the seed
        # checked the limit after every input, and deferring cascades would
        # overshoot the failure point by up to a whole batch.
        self._batchable = (
            type(self).on_input_boundary is TopologyRuntime.on_input_boundary
            and type(self).on_ingest is TopologyRuntime.on_ingest
            and type(self).ingest_edges is TopologyRuntime.ingest_edges
            and self.config.memory_limit_units is None
        )
        self._group: List[StreamTuple] = []
        self._group_rel: Optional[str] = None
        self._last_ts = float("-inf")
        self._closed = False
        self._install_stores(topology)
        self._publish_backend_choices()

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    def _new_store_task(
        self, store_id: str, task_index: int, retention: float
    ) -> StoreTask:
        """Construct a task carrying the config's backend + auto thresholds
        (single construction seam for deployment, rewire, and repartition)."""
        return StoreTask(
            store_id=store_id,
            task_index=task_index,
            retention=retention,
            backend=self.config.store_backend,
            auto_width_threshold=self.config.auto_width_threshold,
            auto_probe_threshold=self.config.auto_probe_threshold,
        )

    def _install_stores(self, topology: Topology) -> None:
        for store_id, spec in topology.stores.items():
            if store_id not in self.tasks:
                self.tasks[store_id] = [
                    self._new_store_task(store_id, i, spec.retention)
                    for i in range(spec.parallelism)
                ]
        self._storage_edges = {
            label: any(
                isinstance(rule, StoreRule)
                for rule in topology.rules_for(edge.target_store, label)
            )
            for label, edge in topology.edges.items()
        }

    def _publish_backend_choices(self) -> None:
        """Surface every task's concrete backend in ``metrics.store_backends``.

        With ``store_backend="auto"`` this is how callers observe the
        per-task decisions; fixed configurations tally to a single entry.
        """
        tally: Dict[str, int] = {}
        for tasks in self.tasks.values():
            for task in tasks:
                name = task.effective_backend
                tally[name] = tally.get(name, 0) + 1
        self.metrics.store_backends = tally

    def _compute_uniform_window(self) -> Optional[float]:
        """The shared window length, or ``None`` if windows differ.

        Only relations the topology can ever see matter; a uniform window
        enables the O(1) pairwise check of
        :meth:`~repro.engine.tuples.StreamTuple.within_uniform_window`.
        """
        relations = set(self.topology.ingest)
        for query in self.topology.queries.values():
            relations |= query.relation_set
        for spec in self.topology.stores.values():
            relations |= set(spec.mir.relations)
        if not relations:
            return None
        if not all(rel in self.windows for rel in relations):
            return None
        lengths = {self.windows[rel] for rel in relations}
        if len(lengths) == 1:
            return lengths.pop()
        return None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, inputs: Iterable[StreamTuple]) -> EngineMetrics:
        """Process input tuples in arrival order.

        Without ``disorder_bound`` the arrival order must coincide with the
        event-timestamp order (sorted inputs); in watermark mode the feed
        is consumed as the wall-clock arrival sequence and event timestamps
        may stray behind each stream's high water by up to the bound.
        """
        if self.config.mode == "logical":
            self._run_logical(inputs)
        else:
            self._run_timed(inputs)
        return self.metrics

    def results(self, query_name: str) -> List[StreamTuple]:
        return self.outputs.get(query_name, [])

    def stored_tuples_total(self) -> int:
        return sum(
            task.stored_tuples() for tasks in self.tasks.values() for task in tasks
        )

    def close(self) -> None:
        """Flush deferred work and mark the runtime closed (idempotent).

        The single-process runtime holds no external resources, but the
        session facade and the service shutdown path treat every runtime
        uniformly — ``flush(); close()`` — so this mirrors
        :meth:`~repro.engine.sharding.ShardedRuntime.close` (which *does*
        terminate a worker pool).  Safe to call any number of times.
        """
        if self._closed:
            return
        self._closed = True
        if not self.metrics.failed:
            self.flush()

    def __enter__(self) -> "TopologyRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def dump_tasks(self) -> Dict[str, List[Dict[str, Any]]]:
        """Structural snapshot of every store task (per store id)."""
        return {
            store_id: [task.dump_state() for task in tasks]
            for store_id, tasks in self.tasks.items()
        }

    def load_tasks(self, state: Dict[str, List[Dict[str, Any]]]) -> int:
        """Replace all store tasks from a :meth:`dump_tasks` snapshot.

        Returns the number of live stored tuples reloaded (the caller
        records it through :meth:`EngineMetrics.on_restore`).
        """
        self.tasks = {
            store_id: [StoreTask.from_state(t) for t in task_states]
            for store_id, task_states in state.items()
        }
        self._publish_backend_choices()
        return self.stored_tuples_total()

    def dump_state(self) -> Dict[str, Any]:
        """Full runtime snapshot: store state plus the push-driver counters.

        Deferred micro-batches are flushed first, so the snapshot contains
        no half-processed cascades; the snapshot shares the live metrics
        object and tuple references by design — callers serialize it (one
        pickle preserves the cross-references) before processing resumes.
        """
        self.flush()
        return {
            "kind": "single",
            "tasks": self.dump_tasks(),
            "arrival_seq": self._arrival_seq,
            "stream_high": dict(self._stream_high),
            "last_ts": self._last_ts,
            "epoch": self._epoch,
            "ops_since_evict": self._ops_since_evict,
            "outputs": {q: list(r) for q, r in self.outputs.items()},
            "metrics": self.metrics,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore a freshly constructed runtime from :meth:`dump_state`.

        The runtime must have been built with the *same* topology, windows,
        and configuration the snapshot was taken under; counters, eviction
        cadence, and store structure resume exactly, so the continuation is
        bit-for-bit identical to an uninterrupted run.
        """
        if state.get("kind") != "single":
            raise ValueError(
                f"snapshot kind {state.get('kind')!r} does not fit a "
                "single-process runtime"
            )
        self.metrics = state["metrics"]
        restored = self.load_tasks(state["tasks"])
        self._arrival_seq = int(state["arrival_seq"])
        self._stream_high = dict(state["stream_high"])
        self._last_ts = state["last_ts"]
        self._epoch = int(state["epoch"])
        self._ops_since_evict = int(state["ops_since_evict"])
        self.outputs = {q: list(r) for q, r in state["outputs"].items()}
        self.metrics.on_restore(restored)

    # ------------------------------------------------------------------
    # logical mode (push driver)
    # ------------------------------------------------------------------
    def process(self, tup: StreamTuple) -> None:
        """Push one input tuple through the logical pipeline.

        This is the incremental entry point behind :meth:`run` and the
        :class:`~repro.session.JoinSession` facade: arrival-order validation
        (strict timestamp order, or the watermark bound), arrival-sequence
        assignment, and micro-batch accumulation all happen here.  A cascade
        may be *deferred* until the pending same-relation micro-batch flushes
        (relation change, full batch, or an explicit :meth:`flush`), which
        never changes result sets — only when they materialize.

        A failed runtime (memory overflow) ignores further pushes, matching
        the batch driver's stop-at-failure semantics; inspect
        ``metrics.failed`` / ``metrics.failure_reason``.
        """
        if self.config.mode != "logical":
            raise RuntimeError(
                "push-based processing requires logical mode; the timed "
                "simulator needs the whole feed to build its event heap"
            )
        if self.metrics.failed:
            return
        ts = tup.trigger_ts
        bound = self.config.disorder_bound
        try:
            validate_arrival(
                tup.trigger, ts, self._last_ts, self._stream_high, bound
            )
        except LateArrivalError:
            if self.config.on_late == "drop":
                # the rejection precedes any state mutation, so dropping
                # here leaves the engine exactly as if the tuple never
                # arrived; it is not counted in inputs_ingested
                self.metrics.late_dropped += 1
                return
            raise
        if bound is None:
            self._last_ts = ts
        else:
            # Watermark mode: arrival order is the push/feed order.  Assign
            # the arrival sequence (probe visibility) and advance the
            # per-stream high water (eviction watermark).  A nonzero seq was
            # assigned upstream (the sharded driver sequences tuples before
            # fanning them out to workers) and is trusted; the local counter
            # stays monotone so mixed use keeps a total order.
            if tup.seq:
                if tup.seq > self._arrival_seq:
                    self._arrival_seq = tup.seq
            else:
                self._arrival_seq += 1
                tup.seq = self._arrival_seq
            high = self._stream_high.get(tup.trigger)
            if high is None or ts > high:
                self._stream_high[tup.trigger] = ts
        if self._batchable:
            if self._group and (
                tup.trigger != self._group_rel
                or len(self._group) >= self.config.batch_size
            ):
                self.flush()
            if self.metrics.failed:
                return
            self.metrics.on_input(ts)
            self._group_rel = tup.trigger
            self._group.append(tup)
        else:
            self.on_input_boundary(ts)
            self.metrics.on_input(ts)
            self.on_ingest(tup)
            self._maybe_evict(ts)
            for label in self.ingest_edges(tup):
                self._send_logical(label, (tup,), ts)
            self._check_memory()

    def flush(self) -> None:
        """Run any deferred micro-batch cascade to completion.

        After this returns, every pushed tuple's results have been emitted;
        the session facade flushes before reads, verification, and rewires.
        """
        if self._group and not self.metrics.failed:
            group, relation = self._group, self._group_rel
            self._group, self._group_rel = [], None
            self._flush_group(relation, group)

    def _run_logical(self, inputs: Iterable[StreamTuple]) -> None:
        for tup in inputs:
            if self.metrics.failed:
                break
            self.process(tup)
        self.flush()

    def _flush_group(self, relation: str, group: List[StreamTuple]) -> None:
        """Run the shared cascade of consecutive same-relation inputs.

        Eviction runs *after* the group (never between a pending input and
        its cascade), so the horizon can only lag the seed's per-tuple
        cadence — which is safe: lagging eviction keeps extra tuples whose
        window checks fail anyway.
        """
        now = group[-1].trigger_ts
        for label in self.topology.ingest.get(relation, []):
            self._send_logical(label, group, now)
        self._maybe_evict(now, ops=len(group))
        self._check_memory()

    def ingest_edges(self, tup: StreamTuple) -> List[str]:
        """Edges a freshly arrived input tuple is sent along (hook point)."""
        return self.topology.ingest.get(tup.trigger, [])

    def on_input_boundary(self, now: float) -> None:
        """Hook invoked before each input tuple (adaptive: epoch switches)."""

    def on_ingest(self, tup: StreamTuple) -> None:
        """Hook invoked for each input tuple (adaptive: statistics)."""

    def edge_spec(self, label: str) -> EdgeSpec:
        """Edge lookup (adaptive runtimes archive edges across switches)."""
        return self.topology.edges[label]

    def rules_for(self, store_id: str, label: str) -> List[Rule]:
        """Rule lookup (adaptive runtimes archive rules across switches)."""
        return self.topology.rules_for(store_id, label)

    def _send_logical(
        self,
        label: str,
        tups: Union[Sequence[StreamTuple], VectorBatch],
        now: float,
    ) -> None:
        """Deliver a batch of same-lineage tuples along one edge.

        ``tups`` is either a tuple sequence or a
        :class:`~repro.engine.columnar.VectorBatch` carrying unmaterialized
        probe survivors from the previous hop.  Vector form survives a hop
        only while the target store is a single-task columnar container
        under a uniform window; every other boundary (per-tuple routing,
        raw storage, python-backend probes, query emission) materializes —
        with identical results, order, and metrics either way.
        """
        edge = self.edge_spec(label)
        store_id = edge.target_store
        spec = self._store_spec(store_id)
        tasks = self.tasks[store_id]
        rules = self.rules_for(store_id, label)

        vector = tups if isinstance(tups, VectorBatch) else None
        per_task: Dict[int, object]
        if spec.parallelism <= 1:
            self.metrics.on_send(len(tups))
            per_task = {0: vector if vector is not None else list(tups)}
        else:
            if vector is not None:
                tups = vector.materialize()
            per_task = {}
            fanout = 0
            for tup in tups:
                targets = self._resolve_targets(label, edge, spec, tup)
                fanout += len(targets)
                for task_index in targets:
                    bucket = per_task.get(task_index)
                    if bucket is None:
                        per_task[task_index] = [tup]
                    else:
                        bucket.append(tup)
            self.metrics.on_send(fanout)

        vectorize = (
            self.config.vectorized_cascades and self._uniform_window is not None
        )
        out_batches: Dict[str, object] = {}
        for task_index, batch in per_task.items():
            task = tasks[task_index]
            vbatch = batch if isinstance(batch, VectorBatch) else None
            for rule in rules:
                if isinstance(rule, StoreRule):
                    container = task.container(self._epoch)
                    width = 0
                    rows = vbatch.materialize() if vbatch is not None else batch
                    for tup in rows:
                        container.insert(tup)
                        width += tup.width
                    self.metrics.on_store(width)
                elif isinstance(rule, ProbeRule):
                    task.probes_seen += len(batch)
                    container = task.container(self._epoch)
                    lineage = (
                        vbatch.lineage if vbatch is not None else batch[0].lineage
                    )
                    oriented = self._oriented_for(rule, lineage)
                    if vectorize and isinstance(container, ColumnarContainer):
                        vb_in = (
                            vbatch
                            if vbatch is not None
                            else VectorBatch.from_tuples(batch)
                        )
                        matches, checked = container.probe_batch_vector(
                            vb_in,
                            oriented,
                            self._uniform_window,
                            self._seq_visibility,
                        )
                    else:
                        rows = (
                            vbatch.materialize() if vbatch is not None else batch
                        )
                        matches, checked = probe_batch(
                            container,
                            rows,
                            oriented,
                            self.windows,
                            self._uniform_window,
                            self._seq_visibility,
                        )
                    self.metrics.on_probe_batch(len(batch), checked)
                    if matches is not None and len(matches):
                        if rule.outputs:
                            emitted = (
                                matches.materialize()
                                if isinstance(matches, VectorBatch)
                                else matches
                            )
                            for query in rule.outputs:
                                for match in emitted:
                                    # logical completion is the triggering
                                    # instant itself (latency 0, as unbatched)
                                    self._emit(query, match, match.trigger_ts)
                        for out_label in rule.out_edges:
                            self._append_out(out_batches, out_label, matches)
        for out_label, batch in out_batches.items():
            self._send_logical(out_label, batch, now)

    @staticmethod
    def _append_out(
        out_batches: Dict[str, Union[VectorBatch, List[StreamTuple]]],
        out_label: str,
        matches: Union[VectorBatch, Iterable[StreamTuple]],
    ) -> None:
        """Accumulate one rule's survivors into the pending hop payloads.

        A vector batch stays vectorized only while it is the sole payload
        for its edge; merging with another source materializes both sides
        (rules sharing an out edge are rare — correctness over carriage).
        """
        pending = out_batches.get(out_label)
        if pending is None:
            out_batches[out_label] = (
                matches if isinstance(matches, VectorBatch) else list(matches)
            )
            return
        if isinstance(pending, VectorBatch):
            pending = list(pending.materialize())
            out_batches[out_label] = pending
        if isinstance(matches, VectorBatch):
            pending.extend(matches.materialize())
        else:
            pending.extend(matches)

    def _oriented_for(
        self, rule: ProbeRule, lineage: FrozenSet[str]
    ) -> Tuple[Tuple[str, str], ...]:
        """Cached (probe attr, stored attr) orientation for a rule+lineage."""
        key = (id(rule), lineage)
        entry = self._oriented_cache.get(key)
        if entry is None:
            entry = (rule, orient_predicates(rule.predicates, lineage))
            self._oriented_cache[key] = entry
        return entry[1]

    # ------------------------------------------------------------------
    # timed mode
    # ------------------------------------------------------------------
    def _run_timed(self, inputs: Iterable[StreamTuple]) -> None:
        # Consecutive same-stream arrivals coalesce into one heap event
        # (capped at batch_size): inputs are instantaneous — they pay no
        # service time and merely fan messages out — and each tuple in a
        # group is still ingested, boundary-hooked, and fanned out at its
        # *own* event timestamp, so message schedule times are unchanged.
        # What moves is only the interleaving against already-queued
        # messages, which the simulation never promised (in-flight messages
        # always race event time).  batch_size=1 restores the seed's
        # per-tuple heap exactly; the same guard as logical micro-batching
        # applies — overridden per-input hooks (adaptive epoch switches must
        # not reorder in-flight messages across an install) or a memory
        # budget (the overflow point is defined per event) force it.
        heap: List[_TimedEvent] = []
        seq = itertools.count()
        cap = self.config.batch_size if self._batchable else 1
        group: List[StreamTuple] = []
        for tup in inputs:
            if group and (tup.trigger != group[0].trigger or len(group) >= cap):
                heapq.heappush(
                    heap, (group[0].trigger_ts, next(seq), "input", tuple(group))
                )
                group = []
            group.append(tup)
        if group:
            heapq.heappush(
                heap, (group[0].trigger_ts, next(seq), "input", tuple(group))
            )

        profile = self.config.profile
        while heap:
            if self.metrics.failed:
                break
            now, _, kind, payload = heapq.heappop(heap)
            if kind == "input":
                for tup in payload:
                    if self.metrics.failed:
                        break
                    at = tup.trigger_ts
                    self.on_input_boundary(at)
                    self.metrics.on_input(at)
                    self.on_ingest(tup)
                    for label in self.ingest_edges(tup):
                        self._send_timed(heap, seq, label, tup, at)
                    self._maybe_evict(at)
                    self._check_memory()
                continue
            else:  # message at a task
                label, store_id, task_index, tup = payload
                task = self.tasks[store_id][task_index]
                self._queue_units -= tup.width
                # With a fixed pool, work is dispatched round-robin over the
                # machines (a processor-sharing proxy for a load-balanced
                # cluster): saturation is governed by aggregate work, which
                # is what distinguishes shared from redundant execution.
                machine = None
                if self._machine_free:
                    machine = self._dispatch_counter % len(self._machine_free)
                    self._dispatch_counter += 1
                    busy_until = self._machine_free[machine]
                else:
                    busy_until = task.next_free
                start = max(now, busy_until)
                service = profile.per_message
                emissions = []
                for result, queries, out_edges in self._apply_rules(
                    task, label, store_id, tup
                ):
                    service += profile.per_result
                    emissions.append((result, queries, out_edges))
                service += self._last_probe_cost * profile.per_comparison
                if self._last_stored:
                    service += profile.per_store
                done = start + service
                task.next_free = done
                if machine is not None:
                    self._machine_free[machine] = done
                self.metrics.last_completion = max(
                    self.metrics.last_completion, done
                )
                for result, queries, out_edges in emissions:
                    for query in queries:
                        self._emit(query, result, done)
                    for out_label in out_edges:
                        self._send_timed(heap, seq, out_label, result, done)
            self._maybe_evict(now)
            self._check_memory()

    def _send_timed(
        self,
        heap: List[_TimedEvent],
        seq: Iterator[int],
        label: str,
        tup: StreamTuple,
        now: float,
    ) -> None:
        edge = self.edge_spec(label)
        spec = self._store_spec(edge.target_store)
        targets = self._resolve_targets(label, edge, spec, tup)
        self.metrics.on_send(len(targets))
        arrival = now + self.config.profile.network_delay
        for task_index in targets:
            self._queue_units += tup.width
            heapq.heappush(
                heap,
                (
                    arrival,
                    next(seq),
                    "msg",
                    (label, edge.target_store, task_index, tup),
                ),
            )

    # ------------------------------------------------------------------
    # shared rule execution
    # ------------------------------------------------------------------
    _last_probe_cost: int = 0
    _last_stored: bool = False

    def _apply_rules(
        self, task: StoreTask, label: str, store_id: str, tup: StreamTuple
    ) -> List[Tuple[StreamTuple, Tuple[str, ...], Tuple[str, ...]]]:
        """Execute Algorithm 3 for one delivered tuple (timed mode).

        Returns ``(result, completed queries, out edges)`` triples; raw
        storage produces no emissions.
        """
        self._last_probe_cost = 0
        self._last_stored = False
        emissions: List[Tuple[StreamTuple, Tuple[str, ...], Tuple[str, ...]]] = []
        for rule in self.rules_for(store_id, label):
            if isinstance(rule, StoreRule):
                task.insert(self._epoch, tup)
                self.metrics.on_store(tup.width)
                self._last_stored = True
            elif isinstance(rule, ProbeRule):
                task.probes_seen += 1
                oriented = self._oriented_for(rule, tup.lineage)
                matches, checked = probe_batch(
                    task.container(self._epoch),
                    (tup,),
                    oriented,
                    self.windows,
                    self._uniform_window,
                    self._seq_visibility,
                )
                self.metrics.on_probe(checked)
                self._last_probe_cost += checked
                for match in matches:
                    emissions.append((match, rule.outputs, rule.out_edges))
        return emissions

    def _store_spec(self, store_id: str) -> StoreSpec:
        """Store-spec lookup (archived across switches by adaptive runtimes)."""
        return self.topology.stores[store_id]

    def _resolve_targets(
        self, label: str, edge: EdgeSpec, spec: StoreSpec, tup: StreamTuple
    ) -> List[int]:
        targets = target_tasks(edge, spec, tup)
        if len(targets) > 1 and self._storage_edges.get(label):
            # A storage edge must place each tuple on exactly one task;
            # an unroutable storage edge falls back to a stable tuple hash.
            return [stable_hash(tup.key()) % spec.parallelism]
        return targets

    def _emit(self, query: str, result: StreamTuple, completion_ts: float) -> None:
        self.metrics.on_result(query, completion_ts, result.trigger_ts)
        if self.config.collect_outputs:
            self.outputs.setdefault(query, []).append(result)

    # ------------------------------------------------------------------
    # housekeeping
    # ------------------------------------------------------------------
    def _maybe_evict(self, now: float, ops: int = 1) -> None:
        self._ops_since_evict += ops
        if self._ops_since_evict < self.config.evict_every:
            return
        self._ops_since_evict = 0
        if self._seq_visibility:
            # Watermark mode: the current input's event time may lie ahead
            # of a straggler still to come; evict against the watermark,
            # which every future arrival's timestamps are guaranteed to
            # dominate.
            now = self.watermark()
            if now == float("-inf"):
                return
        for tasks in self.tasks.values():
            for task in tasks:
                freed = task.evict(now)
                if freed:
                    self.metrics.on_evict(freed)

    def watermark(self) -> float:
        """Global low watermark: no future event timestamp can be below it.

        Per stream, bounded disorder guarantees future arrivals at or above
        ``high water − disorder_bound``; the global watermark is the minimum
        over every ingest stream.  Streams that have not produced a tuple
        yet pin it at ``-inf`` (nothing can be evicted safely).
        """
        return global_watermark(
            self.topology.ingest, self._stream_high, self.config.disorder_bound
        )

    def _check_memory(self) -> None:
        limit = self.config.memory_limit_units
        if limit is None:
            return
        usage = self.metrics.stored_units + self._queue_units
        if usage > limit:
            self.metrics.on_failure(
                f"memory overflow: {usage:.0f} units > limit {limit:.0f}"
            )
