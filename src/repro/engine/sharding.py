"""Sharded multi-core execution: hash-partitioned worker processes.

The single-process engine executes one tuple cascade at a time; this module
runs the *same* cascade machinery on every core by hash-partitioning the
input streams across a pool of worker processes, each owning one shard of
every store in the shared topology (see docs/engine.md, "Sharded
execution").

Partitioning model
------------------
:class:`ShardRouter` picks one equivalence class of join attributes (the
transitive closure of the topology's equality predicates) as the *partition
class*.  Relations binding an attribute of the class are hash-partitioned
by that attribute's value; all other relations are *broadcast* — fully
replicated on every shard — so predicates that do not bind the partition
key stay exact.  A per-query/per-MIR safety fixpoint demotes relations to
broadcast whenever a query (or stored intermediate) contains two
partitioned relations that its *own* predicates do not chain together
through the class: only predicate chains applied inside a unit guarantee
equal routing values, i.e. co-location of join partners.  This invariant
makes sharding exact:

* partitioned relations are disjoint across shards, broadcast relations are
  replicated, so every cascade finds all of its candidates locally;
* a join result containing at least one partitioned component materializes
  in exactly one shard (all its partitioned components hash to the same
  shard); results with all-broadcast lineage materialize identically on
  every shard and are attributed to shard 0 (other shards suppress the
  emission — the cascade itself still runs, feeding replicated MIR stores).

Driver/worker split
-------------------
:class:`ShardedRuntime` is the driver.  It owns global arrival order:
arrival validation (ordered or watermark contract, honouring
``RuntimeConfig.on_late``), arrival-sequence assignment, and the
authoritative per-stream high waters.  Tuples are fanned out in batches
over ``multiprocessing`` pipes together with a high-water snapshot; workers
max-merge the snapshot *after* processing the batch (never before — an
early snapshot could advance the eviction watermark past a tuple still in
the batch), so worker-local eviction horizons only ever lag the globally
safe watermark.  On ``flush`` the driver drains every worker and merges
their emission logs deterministically, ordered by ``(result seq, shard,
local order)``, so outputs are reproducible run over run and exactly equal
to the single-process result sets.

Rewires reuse the sticky router: while the routing of surviving relations
is unchanged (the common case — the partition class is kept if it still
exists), ``install`` is broadcast and each worker rewires its shard locally
(backfill from co-located state is exact under the invariant above).  When
the partition class changes, the driver drains and dumps all shard state,
dedupes broadcast replicas, backfills new MIR stores centrally
(:func:`~repro.engine.rewiring.compute_backfill`), and re-routes everything
under the new router.

Failure semantics: a dead or wedged worker surfaces a typed
:class:`ShardFailedError` on the next interaction (no hang — receives are
bounded by ``sync_timeout`` and liveness checks), the runtime marks itself
failed and terminates the pool, and no partial results are merged for the
failed sync.  ``REPRO_SHARD_TEST_HOOKS=1`` arms a crash-on-Nth-tuple hook
used by the fault-injection tests.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
import weakref
from dataclasses import replace
from multiprocessing.connection import Connection
from multiprocessing.context import BaseContext
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    NoReturn,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core.adaptive import TopologyDiff, diff_topologies
from ..core.predicates import JoinPredicate
from ..core.schema import Attribute
from ..core.topology import Topology
from .metrics import EngineMetrics
from .rewiring import RewirableRuntime, SwitchRecord, compute_backfill
from .routing import stable_hash
from .runtime import (
    LateArrivalError,
    RuntimeConfig,
    global_watermark,
    validate_arrival,
)
from .statistics import EpochStatistics
from .tuples import StreamTuple

#: driver <-> worker protocol message: ("batch", ...), ("drain",),
#: ("dump",), ("error", traceback), ... — a command tag plus payload
_Msg = Tuple[Any, ...]

__all__ = ["ShardFailedError", "ShardRouter", "ShardedRuntime"]

#: environment gate for the crash-on-Nth-tuple fault-injection hook
TEST_HOOK_ENV = "REPRO_SHARD_TEST_HOOKS"

#: worker metric counters folded into the driver's aggregate: pure flow
#: counters are summed across shards (and accumulated across worker resets);
#: stored_units/peak_stored_units are levels read live from the workers.
#: Driver-owned counters (inputs, results, late_dropped, rewires, ...) are
#: never folded — workers count their local view, the driver the global one.
_FLOW_FIELDS = (
    "messages_sent",
    "tuples_sent",
    "probes_executed",
    "comparisons",
    "migrated_tuples",
)


class ShardFailedError(RuntimeError):
    """A shard worker died or stopped responding.

    Raised by the sharded driver on the interaction that detected the
    failure; the runtime is marked failed (``metrics.failed``), the worker
    pool is terminated, and no partial results of the failed sync are
    merged.  Sessions surface this directly from ``push``/reads and reject
    every later push with :class:`~repro.session.EngineFailedError`.
    """


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
class ShardRouter:
    """key → shard routing for one topology.

    ``route_attrs`` maps each *partitioned* relation to the qualified
    attribute whose value is hashed; relations absent from it are broadcast
    to every shard.  Stored intermediates route by the partitioned relation
    in their lineage (all partitioned components of one tuple agree on the
    routing value by construction — see the module docstring).
    """

    def __init__(
        self,
        num_shards: int,
        partition_class: FrozenSet[Attribute],
        route_attrs: Dict[str, str],
        relations: FrozenSet[str],
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.partition_class = frozenset(partition_class)
        self.route_attrs = dict(route_attrs)
        self.partitioned: FrozenSet[str] = frozenset(route_attrs)
        self.broadcast: FrozenSet[str] = frozenset(relations) - self.partitioned

    # ------------------------------------------------------------------
    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        num_shards: int,
        prefer_class: Optional[FrozenSet[str]] = None,
    ) -> "ShardRouter":
        """Choose the partition class and the partitioned relation set.

        Candidates are the equivalence classes of the global equality graph;
        each is scored by how many relations survive the per-unit safety
        fixpoint, and the largest partitioned set wins (deterministic
        tie-break on the sorted attribute names).  ``prefer_class`` — the
        previous router's class, as qualified-name strings — wins whenever
        it still exists and still partitions something, which keeps routing
        stable across rewires.
        """
        relations = set(topology.ingest)
        predicates = set()
        units: List[Tuple[FrozenSet[str], Tuple[JoinPredicate, ...]]] = []
        for query in topology.queries.values():
            relations |= set(query.relation_set)
            predicates |= set(query.predicates)
            units.append((frozenset(query.relation_set), tuple(query.predicates)))
        for spec in topology.stores.values():
            relations |= set(spec.mir.relations)
            if len(spec.mir.relations) > 1:
                units.append(
                    (frozenset(spec.mir.relations), tuple(spec.mir.predicates))
                )

        # attribute equivalence classes under the global equality graph
        parent: Dict[Attribute, Attribute] = {}

        def find(attr: Attribute) -> Attribute:
            root = attr
            while parent.get(root, root) != root:
                root = parent[root]
            while parent.get(attr, attr) != root:
                parent[attr], attr = root, parent[attr]
            return root

        for pred in predicates:
            a, b = find(pred.left), find(pred.right)
            if a != b:
                parent[max(a, b)] = min(a, b)
        classes: Dict[Attribute, Set[Attribute]] = {}
        for pred in predicates:
            for attr in (pred.left, pred.right):
                classes.setdefault(find(attr), set()).add(attr)

        candidates = sorted(
            (frozenset(members) for members in classes.values()),
            key=lambda c: tuple(sorted(c)),
        )
        best: Optional[ShardRouter] = None
        preferred: Optional[ShardRouter] = None
        for class_attrs in candidates:
            route = cls._routing_for(class_attrs, units)
            router = cls(num_shards, class_attrs, route, frozenset(relations))
            if prefer_class is not None and router.class_key == prefer_class:
                preferred = router
            if best is None or len(router.partitioned) > len(best.partitioned):
                best = router
        if preferred is not None and preferred.partitioned:
            return preferred
        if best is not None and best.partitioned:
            return best
        # no usable equality class: everything broadcast (still exact —
        # shard 0 owns every emission)
        return cls(num_shards, frozenset(), {}, frozenset(relations))

    @staticmethod
    def _routing_for(
        class_attrs: FrozenSet[Attribute],
        units: Sequence[Tuple[FrozenSet[str], Tuple[JoinPredicate, ...]]],
    ) -> Dict[str, str]:
        """Partitioned relations (and routing attrs) safe for one class.

        A relation routes by its smallest class attribute.  Within every
        query and every stored MIR, the partitioned relations present must
        form one connected component under *supporting* predicates — unit
        predicates equating exactly the two routing attributes, the only
        equalities that guarantee equal routing values in every joined
        tuple.  Violating relations are demoted to broadcast (smallest
        component first, deterministic) until a fixpoint is reached.
        """
        route: Dict[str, Attribute] = {}
        for attr in sorted(class_attrs):
            route.setdefault(attr.relation, attr)
        part = set(route)
        changed = True
        while changed:
            changed = False
            for unit_relations, unit_predicates in units:
                live = part & unit_relations
                if len(live) < 2:
                    continue
                adjacency = {rel: set() for rel in live}
                for pred in unit_predicates:
                    ra, rb = pred.left.relation, pred.right.relation
                    if (
                        ra in live
                        and rb in live
                        and route.get(ra) == pred.left
                        and route.get(rb) == pred.right
                    ):
                        adjacency[ra].add(rb)
                        adjacency[rb].add(ra)
                components = _components(live, adjacency)
                if len(components) > 1:
                    keep = sorted(
                        components, key=lambda c: (-len(c), tuple(sorted(c)))
                    )[0]
                    for rel in live - keep:
                        part.discard(rel)
                    changed = True
        return {rel: str(route[rel]) for rel in sorted(part)}

    # ------------------------------------------------------------------
    @property
    def class_key(self) -> FrozenSet[str]:
        """The partition class as qualified-name strings (sticky-rewire key)."""
        return frozenset(str(attr) for attr in self.partition_class)

    @property
    def metrics_exact(self) -> bool:
        """True when no relation is broadcast: every flow counter of the
        sharded run sums exactly to the single-process value.  Broadcast
        replication inflates sends/stores, and partitioned probes through a
        non-routing index may scan *fewer* candidates than the global
        bucket, so parity of comparison counts is only guaranteed here."""
        return not self.broadcast

    def shard_of(self, tup: StreamTuple) -> Optional[int]:
        """Owning shard of a tuple, or ``None`` for broadcast-to-all."""
        lineage = tup.lineage
        if len(lineage) == 1:
            attr = self.route_attrs.get(tup.trigger)
        else:
            attr = None
            for rel in sorted(lineage):
                candidate = self.route_attrs.get(rel)
                if candidate is not None:
                    attr = candidate
                    break
        if attr is None:
            return None
        return stable_hash(tup.values.get(attr)) % self.num_shards

    def shards_for(self, tup: StreamTuple) -> Tuple[int, ...]:
        shard = self.shard_of(tup)
        if shard is None:
            return tuple(range(self.num_shards))
        return (shard,)

    def stable_over(self, old: "ShardRouter") -> bool:
        """True iff every relation both routers know keeps its routing —
        the condition for the in-place (per-worker) rewire fast path."""
        if self.num_shards != old.num_shards:
            return False
        shared = (self.partitioned | self.broadcast) & (
            old.partitioned | old.broadcast
        )
        return all(
            self.route_attrs.get(rel) == old.route_attrs.get(rel)
            for rel in shared
        )

    def describe(self) -> str:
        key = ", ".join(sorted(str(a) for a in self.partition_class)) or "-"
        return (
            f"ShardRouter({self.num_shards} shards, class [{key}], "
            f"partitioned {sorted(self.partitioned)}, "
            f"broadcast {sorted(self.broadcast)})"
        )

    __repr__ = describe


def _components(
    nodes: Iterable[str], adjacency: Dict[str, Set[str]]
) -> List[FrozenSet[str]]:
    seen: Set[str] = set()
    out: List[FrozenSet[str]] = []
    for node in sorted(nodes):
        if node in seen:
            continue
        stack, comp = [node], set()
        while stack:
            cur = stack.pop()
            if cur in comp:
                continue
            comp.add(cur)
            stack.extend(adjacency.get(cur, ()) - comp)
        seen |= comp
        out.append(frozenset(comp))
    return out


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _ShardWorkerRuntime(RewirableRuntime):
    """One shard's runtime: pre-assigned seqs, shard-0 emission attribution."""

    def __init__(
        self,
        topology: Topology,
        windows: Dict[str, float],
        config: RuntimeConfig,
        shard: int,
        partitioned: FrozenSet[str],
    ) -> None:
        super().__init__(topology, windows, config)
        self._shard = shard
        self._partitioned: FrozenSet[str] = partitioned
        #: (query, result) in local completion order, merged by the driver
        self.emission_log: List[Tuple[str, StreamTuple]] = []

    def _emit(self, query: str, result: StreamTuple, completion_ts: float) -> None:
        # all-broadcast results materialize identically on every shard;
        # shard 0 owns their emission (the cascade itself still ran here —
        # replicated MIR stores stay complete)
        if self._shard and not (result.lineage & self._partitioned):
            return
        super()._emit(query, result, completion_ts)
        self.emission_log.append((query, result))


class _SimulatedCrash(RuntimeError):
    """Inline-transport stand-in for a worker process dying mid-batch."""


class _WorkerState:
    """Command handler shared by the process worker and inline transport."""

    def __init__(
        self,
        shard: int,
        router: ShardRouter,
        topology: Topology,
        windows: Dict[str, float],
        config: RuntimeConfig,
        inline: bool = False,
        collect_stats: bool = False,
    ) -> None:
        self.shard = shard
        self.router = router
        self.config = config
        self.inline = inline
        self.collect_stats = collect_stats
        #: inputs observed shard-side since the last drain (adaptivity
        #: fold-back); partitioned relations are observed wherever they
        #: land (exactly one shard), broadcast relations only on shard 0,
        #: so globally every accepted input is observed exactly once
        self.stats = EpochStatistics(epoch=0)
        self._crash_countdown: Optional[int] = None
        self.runtime: _ShardWorkerRuntime
        self._build(topology, windows, {}, {})

    def _build(
        self,
        topology: Topology,
        windows: Dict[str, float],
        highs: Dict[str, float],
        state: Dict[str, List[StreamTuple]],
    ) -> None:
        self.runtime = _ShardWorkerRuntime(
            topology, windows, self.config, self.shard, self.router.partitioned
        )
        runtime = self.runtime
        runtime._stream_high.update(highs)
        width = 0
        for store_id, tuples in state.items():
            spec = topology.stores[store_id]
            tasks = runtime.tasks[store_id]
            for tup in tuples:
                tasks[runtime._task_for(spec, tup)].insert(runtime._epoch, tup)
                width += tup.width
        # migrated-in state is a level, not flow: track stored units without
        # inflating the flow counters the driver folds
        runtime.metrics.stored_units = width
        runtime.metrics.peak_stored_units = width

    # ------------------------------------------------------------------
    def handle(self, msg: _Msg) -> Optional[_Msg]:
        cmd = msg[0]
        if cmd == "batch":
            _, tuples, highs = msg
            runtime = self.runtime
            collect = self.collect_stats
            partitioned = self.router.partitioned
            for tup in tuples:
                if self._crash_countdown is not None:
                    self._crash_countdown -= 1
                    if self._crash_countdown <= 0:
                        if self.inline:
                            raise _SimulatedCrash(
                                f"injected crash on shard {self.shard}"
                            )
                        os._exit(3)
                runtime.process(tup)
                if collect and (tup.trigger in partitioned or self.shard == 0):
                    self.stats.observe(tup)
            # apply the driver's high-water snapshot only after the batch:
            # every tuple shipped later was validated against highs at least
            # this recent, so the advanced eviction watermark stays safe
            if highs:
                self._apply_highs(highs)
            return None
        if cmd == "drain":
            _, highs = msg
            runtime = self.runtime
            runtime.flush()
            if highs:
                self._apply_highs(highs)
            log, runtime.emission_log = runtime.emission_log, []
            metrics = runtime.metrics
            flow = {name: getattr(metrics, name) for name in _FLOW_FIELDS}
            flow["stored_units"] = metrics.stored_units
            flow["peak_stored_units"] = metrics.peak_stored_units
            delta = None
            if self.collect_stats:
                delta, self.stats = self.stats, EpochStatistics(epoch=0)
            return ("drained", log, flow, runtime.stored_tuples_total(), delta)
        if cmd == "install":
            _, topology, windows, now, router = msg
            # the sticky router is stable for surviving relations, but a new
            # plan may introduce relations whose routing (and therefore
            # emission attribution + stats dedup) only the fresh router knows
            self.router = router
            self.runtime._partitioned = router.partitioned
            metrics = self.runtime.metrics
            pre_preserved = metrics.preserved_tuples
            pre_backfilled = metrics.backfilled_tuples
            self.runtime.install(topology, now=now, windows=windows)
            return (
                "installed",
                metrics.preserved_tuples - pre_preserved,
                metrics.backfilled_tuples - pre_backfilled,
            )
        if cmd == "dump":
            runtime = self.runtime
            runtime.flush()
            state: Dict[str, List[StreamTuple]] = {}
            for store_id, tasks in runtime.tasks.items():
                tuples: List[StreamTuple] = []
                for task in tasks:
                    for container in task.containers.values():
                        tuples.extend(container.iter_tuples())
                state[store_id] = tuples
            return ("state", state)
        if cmd == "reset":
            _, topology, windows, highs, state, router = msg
            # a reshard changed the partition class: without the new router
            # the worker would attribute emissions (and observe stats) by
            # the retired partitioned set
            self.router = router
            self._build(topology, windows, highs, state)
            return ("reset",)
        if cmd == "snapshot":
            # structural per-task dump (checkpoint): unlike "dump", store
            # *structure* (buckets, hash-index candidate order, columnar
            # code tables) and the push-driver counters survive, so a
            # restored worker continues bit-for-bit
            runtime = self.runtime
            runtime.flush()
            return (
                "snapshot",
                {
                    "tasks": runtime.dump_tasks(),
                    "arrival_seq": runtime._arrival_seq,
                    "stream_high": dict(runtime._stream_high),
                    "last_ts": runtime._last_ts,
                    "epoch": runtime._epoch,
                    "ops_since_evict": runtime._ops_since_evict,
                    "stored_units": runtime.metrics.stored_units,
                    "peak_stored_units": runtime.metrics.peak_stored_units,
                },
            )
        if cmd == "restore":
            _, topology, windows, shard_state, router = msg
            self.router = router
            self.stats = EpochStatistics(epoch=0)
            runtime = _ShardWorkerRuntime(
                topology, windows, self.config, self.shard, router.partitioned
            )
            restored = runtime.load_tasks(shard_state["tasks"])
            runtime._arrival_seq = int(shard_state["arrival_seq"])
            runtime._stream_high = dict(shard_state["stream_high"])
            runtime._last_ts = shard_state["last_ts"]
            runtime._epoch = int(shard_state["epoch"])
            runtime._ops_since_evict = int(shard_state["ops_since_evict"])
            # restored stored state is a level, not flow (same convention
            # as _build's migration accounting); flow counters restart at
            # zero and the driver banks the checkpoint totals
            runtime.metrics.stored_units = shard_state["stored_units"]
            runtime.metrics.peak_stored_units = shard_state["peak_stored_units"]
            self.runtime = runtime
            return ("restored", restored)
        if cmd == "crash_after":
            if os.environ.get(TEST_HOOK_ENV) != "1":
                raise RuntimeError(
                    f"crash_after is a fault-injection hook; set "
                    f"{TEST_HOOK_ENV}=1 to arm it"
                )
            self._crash_countdown = int(msg[1])
            return ("armed",)
        raise RuntimeError(f"unknown shard command {cmd!r}")

    def _apply_highs(self, highs: Dict[str, float]) -> None:
        stream_high = self.runtime._stream_high
        for relation, ts in highs.items():
            current = stream_high.get(relation)
            if current is None or ts > current:
                stream_high[relation] = ts


def _shard_worker_main(
    conn: Connection,
    shard: int,
    router: ShardRouter,
    topology: Topology,
    windows: Dict[str, float],
    config: RuntimeConfig,
    collect_stats: bool = False,
) -> None:
    """Process entry point: a recv/handle/reply loop over one pipe."""
    try:
        state = _WorkerState(
            shard, router, topology, windows, config,
            collect_stats=collect_stats,
        )
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg[0] == "stop":
                conn.send(("bye",))
                break
            try:
                reply = state.handle(msg)
            except Exception:
                # surface the traceback instead of dying silently; the
                # driver turns this into a ShardFailedError
                try:
                    conn.send(("error", traceback.format_exc()))
                finally:
                    break
            if reply is not None:
                conn.send(reply)
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------
class _InlineShard:
    """In-process transport: same protocol, no pipes (tests, debugging)."""

    def __init__(
        self,
        shard: int,
        router: ShardRouter,
        topology: Topology,
        windows: Dict[str, float],
        config: RuntimeConfig,
        collect_stats: bool = False,
    ) -> None:
        self._state = _WorkerState(
            shard, router, topology, windows, config, inline=True,
            collect_stats=collect_stats,
        )
        self._reply: Optional[_Msg] = None

    def send(self, msg: _Msg) -> None:
        if msg[0] == "stop":
            self._reply = ("bye",)
            return
        try:
            self._reply = self._state.handle(msg)
        except _SimulatedCrash as exc:
            raise BrokenPipeError(str(exc)) from exc

    def recv(self, timeout: float) -> _Msg:
        reply, self._reply = self._reply, None
        if reply is None:
            raise EOFError("no pending reply")
        return reply

    def alive(self) -> bool:
        return True

    def terminate(self) -> None:
        pass


class _ProcessShard:
    """One worker process plus its duplex pipe."""

    def __init__(
        self,
        ctx: BaseContext,
        shard: int,
        router: ShardRouter,
        topology: Topology,
        windows: Dict[str, float],
        config: RuntimeConfig,
        collect_stats: bool = False,
    ) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.proc = ctx.Process(
            target=_shard_worker_main,
            args=(
                child_conn, shard, router, topology, windows, config,
                collect_stats,
            ),
            daemon=True,
            name=f"repro-shard-{shard}",
        )
        self.proc.start()
        child_conn.close()

    def send(self, msg: _Msg) -> None:
        self.conn.send(msg)

    def recv(self, timeout: float) -> _Msg:
        """Bounded receive: polls in small steps so a dead worker is
        detected promptly instead of blocking forever."""
        deadline = (
            time.monotonic()  # repro: allow[DET001] liveness deadline on the driver-worker pipe only; never feeds results
            + timeout
        )
        while True:
            if self.conn.poll(0.05):
                return self.conn.recv()
            if not self.proc.is_alive() and not self.conn.poll(0.0):
                raise EOFError("worker process died")
            if time.monotonic() > deadline:  # repro: allow[DET001] same liveness deadline; timing out fails the run loudly
                raise TimeoutError(f"no reply within {timeout:g}s")

    def alive(self) -> bool:
        return self.proc.is_alive()

    def terminate(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5.0)


_Transport = Union[_InlineShard, "_ProcessShard"]


def _terminate_pool(shards: Iterable[_Transport]) -> None:
    for shard in shards:
        try:
            shard.terminate()
        except Exception:
            pass


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
class ShardedRuntime:
    """Driver for hash-partitioned multi-process topology execution.

    Mirrors the push-driver protocol of
    :class:`~repro.engine.runtime.TopologyRuntime` /
    :class:`~repro.engine.rewiring.RewirableRuntime` (``process`` /
    ``flush`` / ``run`` / ``results`` / ``install`` / ``watermark`` /
    ``stored_tuples_total``), so the session facade and the differential
    harness drive it unchanged.  ``config.workers`` fixes the pool size;
    ``transport="inline"`` runs the shard states in-process (deterministic,
    fork-free — the semantics under test, minus the IPC).
    """

    #: bound on any single worker sync (seconds); exceeding it fails the shard
    sync_timeout: float = 120.0

    def __init__(
        self,
        topology: Topology,
        windows: Dict[str, float],
        config: Optional[RuntimeConfig] = None,
        transport: str = "process",
        stats_sink: Optional[Callable[[EpochStatistics], None]] = None,
    ) -> None:
        """``stats_sink`` enables shard-side statistics fold-back: each
        worker observes its accepted inputs into an
        :class:`~repro.engine.statistics.EpochStatistics` delta (broadcast
        relations deduped to shard 0) and every :meth:`flush` hands the
        per-worker deltas to the callable — how the adaptivity loop sees
        sharded traffic.  ``None`` (default) disables collection."""
        self.config = config or RuntimeConfig(workers=2)
        if self.config.mode != "logical":
            raise ValueError("sharded execution supports logical mode only")
        if self.config.memory_limit_units is not None:
            raise ValueError(
                "memory_limit_units does not compose with sharded execution"
            )
        if transport not in ("process", "inline"):
            raise ValueError(f"unknown transport {transport!r}")
        self.transport = transport
        self.topology = topology
        self.windows = dict(windows)
        self.metrics = EngineMetrics()
        self.outputs: Dict[str, List[StreamTuple]] = {}
        self.switches: List[SwitchRecord] = []
        self.router = ShardRouter.from_topology(topology, self.config.workers)
        self.num_shards = self.router.num_shards

        self._seq_visibility = self.config.disorder_bound is not None
        self._arrival_seq = 0
        self._last_ts = float("-inf")
        self._stream_high: Dict[str, float] = {}
        self._pending: List[List[StreamTuple]] = [
            [] for _ in range(self.num_shards)
        ]
        self._flow_base: Dict[str, int] = {name: 0 for name in _FLOW_FIELDS}
        self._worker_flow: List[Dict[str, float]] = [
            {} for _ in range(self.num_shards)
        ]
        self._stored: List[int] = [0] * self.num_shards
        self._stats_sink = stats_sink
        self._closed = False
        # a worker runs the plain single-process engine on its shard
        self._worker_config = replace(
            self.config, workers=1, collect_outputs=False, on_late="raise"
        )
        self._shards = self._spawn_pool()
        self._finalizer = weakref.finalize(
            self, _terminate_pool, list(self._shards)
        )

    def _spawn_pool(self) -> List[_Transport]:
        collect = self._stats_sink is not None
        if self.transport == "inline":
            return [
                _InlineShard(
                    idx, self.router, self.topology, self.windows,
                    self._worker_config, collect_stats=collect,
                )
                for idx in range(self.num_shards)
            ]
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        return [
            _ProcessShard(
                ctx, idx, self.router, self.topology, self.windows,
                self._worker_config, collect_stats=collect,
            )
            for idx in range(self.num_shards)
        ]

    # ------------------------------------------------------------------
    # push driver (mirrors TopologyRuntime.process/flush/run)
    # ------------------------------------------------------------------
    def process(self, tup: StreamTuple) -> None:
        """Validate, sequence, and route one input tuple to its shard(s).

        The driver owns the global arrival contract: late decisions are
        made here against the authoritative per-stream high waters (workers
        only ever see accepted tuples), and the assigned arrival seq is
        trusted by every worker, so seq-based probe visibility is globally
        consistent.
        """
        if self.metrics.failed:
            return
        ts = tup.trigger_ts
        bound = self.config.disorder_bound
        try:
            validate_arrival(
                tup.trigger, ts, self._last_ts, self._stream_high, bound
            )
        except LateArrivalError:
            if self.config.on_late == "drop":
                self.metrics.late_dropped += 1
                return
            raise
        if bound is None:
            self._last_ts = ts
        else:
            high = self._stream_high.get(tup.trigger)
            if high is None or ts > high:
                self._stream_high[tup.trigger] = ts
        self._arrival_seq += 1
        tup.seq = self._arrival_seq
        self.metrics.on_input(ts)
        shard = self.router.shard_of(tup)
        if shard is None:
            for idx in range(self.num_shards):
                self._enqueue(idx, tup)
        else:
            self._enqueue(shard, tup)

    def _enqueue(self, idx: int, tup: StreamTuple) -> None:
        pending = self._pending[idx]
        pending.append(tup)
        if len(pending) >= self.config.batch_size:
            self._ship(idx)

    def _ship(self, idx: int) -> None:
        pending = self._pending[idx]
        if not pending:
            return
        self._pending[idx] = []
        snapshot = dict(self._stream_high) if self._seq_visibility else None
        self._send(idx, ("batch", pending, snapshot))

    def flush(self) -> None:
        """Ship all pending batches, drain every worker, merge emissions.

        The merge is deterministic: emissions sort by ``(result seq, shard
        index, local completion order)``, so the driver's output order is
        reproducible regardless of worker scheduling.
        """
        if self.metrics.failed or self._closed:
            return
        for idx in range(self.num_shards):
            self._ship(idx)
        snapshot = dict(self._stream_high) if self._seq_visibility else None
        replies = self._broadcast_collect(("drain", snapshot))
        merged: List[Tuple[int, int, int, str, StreamTuple]] = []
        for idx, reply in enumerate(replies):
            _, log, flow, stored, stats_delta = reply
            self._worker_flow[idx] = flow
            self._stored[idx] = stored
            if stats_delta is not None and self._stats_sink is not None:
                self._stats_sink(stats_delta)
            for pos, (query, result) in enumerate(log):
                merged.append((result.seq, idx, pos, query, result))
        merged.sort(key=lambda entry: entry[:3])
        for _, _, _, query, result in merged:
            self._emit(query, result, result.trigger_ts)
        self._refresh_counters()

    def run(self, inputs: Iterable[StreamTuple]) -> EngineMetrics:
        """Process input tuples in arrival order, then flush."""
        for tup in inputs:
            if self.metrics.failed:
                break
            self.process(tup)
        self.flush()
        return self.metrics

    def results(self, query_name: str) -> List[StreamTuple]:
        return self.outputs.get(query_name, [])

    def stored_tuples_total(self) -> int:
        """Live tuples across all shards (broadcast stores count once per
        replica — replication is real memory)."""
        self.flush()
        return sum(self._stored)

    def watermark(self) -> float:
        return global_watermark(
            self.topology.ingest, self._stream_high, self.config.disorder_bound
        )

    def _emit(self, query: str, result: StreamTuple, completion_ts: float) -> None:
        self.metrics.on_result(query, completion_ts, result.trigger_ts)
        if self.config.collect_outputs:
            self.outputs.setdefault(query, []).append(result)

    def _refresh_counters(self) -> None:
        metrics = self.metrics
        for name in _FLOW_FIELDS:
            setattr(
                metrics,
                name,
                self._flow_base[name]
                + sum(int(flow.get(name, 0)) for flow in self._worker_flow),
            )
        metrics.stored_units = sum(
            flow.get("stored_units", 0.0) for flow in self._worker_flow
        )
        metrics.peak_stored_units = max(
            metrics.peak_stored_units,
            sum(flow.get("peak_stored_units", 0.0) for flow in self._worker_flow),
        )

    # ------------------------------------------------------------------
    # rewiring
    # ------------------------------------------------------------------
    def install(
        self,
        topology: Topology,
        now: float,
        epoch: int = 0,
        windows: Optional[Dict[str, float]] = None,
    ) -> SwitchRecord:
        """Replace the deployed topology across all shards.

        Fast path (routing of surviving relations unchanged — the sticky
        router keeps the partition class whenever it still exists): each
        worker rewires its shard in place, migrating/backfilling locally.
        Slow path (partition class changed): drain, dump and dedupe all
        shard state, backfill new MIR stores centrally, re-route everything
        under the new router, and reset the workers with their new shards.
        """
        self.flush()
        if self.metrics.failed:
            raise ShardFailedError(
                f"cannot rewire a failed sharded runtime "
                f"({self.metrics.failure_reason})"
            )
        if windows:
            self.windows.update(windows)
        # same high-water floor for returning/new ingest streams as the
        # single-process install (the driver owns the authoritative highs;
        # workers re-derive theirs from the drain snapshot + local install)
        if self._seq_visibility:
            mark = self.watermark()
            if mark != float("-inf"):
                bound = self.config.disorder_bound or 0.0
                for relation in topology.ingest:
                    self._stream_high[relation] = max(
                        self._stream_high.get(relation, float("-inf")),
                        mark + bound,
                    )
        new_router = ShardRouter.from_topology(
            topology, self.config.workers, prefer_class=self.router.class_key
        )
        diff = diff_topologies(self.topology, topology)
        if new_router.stable_over(self.router):
            replies = self._broadcast_collect(
                ("install", topology, dict(self.windows), now, new_router)
            )
            # worker-local preserved counts sum to the global count:
            # partitioned store state is disjoint, broadcast state counts
            # once per replica it is actually preserved on
            preserved = sum(reply[1] for reply in replies)
            self.metrics.backfilled_tuples += sum(reply[2] for reply in replies)
        else:
            preserved = self._reshard(topology, new_router, diff, now)
        self.router = new_router
        self.topology = topology
        self.metrics.on_rewire(preserved)
        record = SwitchRecord(
            epoch=epoch,
            time=now,
            added_stores=diff.added,
            removed_stores=diff.removed,
        )
        self.switches.append(record)
        return record

    def _reshard(
        self,
        topology: Topology,
        new_router: ShardRouter,
        diff: TopologyDiff,
        now: float,
    ) -> int:
        """Stop-the-world re-partition under a changed partition class."""
        dumps = self._broadcast_collect(("dump",))
        # the workers restart with fresh metrics: bank their flow counters
        for idx in range(self.num_shards):
            flow = self._worker_flow[idx]
            for name in _FLOW_FIELDS:
                self._flow_base[name] += int(flow.get(name, 0))
            self._worker_flow[idx] = {}
        # merge global state, deduping broadcast replicas (every shard holds
        # an identical copy of all-broadcast-lineage tuples; shard 0's wins)
        old_partitioned = self.router.partitioned
        state: Dict[str, List[StreamTuple]] = {}
        for idx, reply in enumerate(dumps):
            _, dump = reply
            for store_id, tuples in dump.items():
                bucket = state.setdefault(store_id, [])
                if idx == 0:
                    bucket.extend(tuples)
                else:
                    bucket.extend(
                        tup for tup in tuples if tup.lineage & old_partitioned
                    )
        for store_id in diff.removed:
            state.pop(store_id, None)
        preserved = sum(len(state.get(sid, ())) for sid in diff.surviving)
        migrated = sum(len(tuples) for tuples in state.values())
        for store_id in diff.added:
            spec = topology.stores[store_id]
            if spec.mir.is_input:
                state.setdefault(store_id, [])
            else:
                streams = {
                    rel: sorted(
                        state.get(rel, []), key=lambda t: t.latest_ts
                    )
                    for rel in spec.mir.relations
                }
                intermediates = compute_backfill(spec, streams, self.windows)
                state[store_id] = intermediates
                self.metrics.backfilled_tuples += len(intermediates)
        highs = dict(self._stream_high)
        for idx in range(self.num_shards):
            shard_state = {
                store_id: [
                    tup
                    for tup in tuples
                    if new_router.shard_of(tup) in (None, idx)
                ]
                for store_id, tuples in state.items()
            }
            self._send(
                idx,
                (
                    "reset", topology, dict(self.windows), highs,
                    shard_state, new_router,
                ),
            )
        self._collect_all()
        # driver-side migration counts like banked worker flow — folded into
        # the aggregate on every refresh, not overwritten by it
        self._flow_base["migrated_tuples"] += migrated
        self._refresh_counters()
        return preserved

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def dump_state(self) -> Dict[str, Any]:
        """Full driver snapshot: per-shard structural state plus the
        driver-owned arrival contract, outputs, and aggregate metrics.

        Every worker dumps its shard *structurally* (bucket layout, hash
        index candidate order, columnar code tables, eviction cadence), so
        a restore is bit-for-bit — same results, same order, same flow
        counters — as an uninterrupted run.  The runtime flushes first;
        snapshots never contain un-merged emissions.
        """
        self.flush()
        if self.metrics.failed:
            raise ShardFailedError(
                f"cannot snapshot a failed sharded runtime "
                f"({self.metrics.failure_reason})"
            )
        replies = self._broadcast_collect(("snapshot",))
        return {
            "kind": "sharded",
            "workers": self.num_shards,
            "router_class": self.router.class_key,
            "shards": [reply[1] for reply in replies],
            "arrival_seq": self._arrival_seq,
            "stream_high": dict(self._stream_high),
            "last_ts": self._last_ts,
            "outputs": {q: list(r) for q, r in self.outputs.items()},
            "metrics": self.metrics,
            "switches": list(self.switches),
            "stored": list(self._stored),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore a freshly constructed driver from :meth:`dump_state`.

        The driver must have been built with the same topology, windows,
        and configuration (including ``workers``) the snapshot was taken
        under.  Each worker is reset from its own shard's structural dump;
        the sticky partition class is re-preferred, so routing matches the
        stored placement exactly.
        """
        if state.get("kind") != "sharded":
            raise ValueError(
                f"snapshot kind {state.get('kind')!r} does not fit a "
                "sharded runtime"
            )
        if int(state["workers"]) != self.num_shards:
            raise ValueError(
                f"snapshot was taken with workers={state['workers']}, "
                f"this runtime has workers={self.num_shards}"
            )
        router = ShardRouter.from_topology(
            self.topology, self.config.workers,
            prefer_class=state["router_class"],
        )
        for idx in range(self.num_shards):
            self._send(
                idx,
                (
                    "restore", self.topology, dict(self.windows),
                    state["shards"][idx], router,
                ),
            )
        replies = self._collect_all()
        self.router = router
        self._arrival_seq = int(state["arrival_seq"])
        self._stream_high = dict(state["stream_high"])
        self._last_ts = state["last_ts"]
        self.outputs = {q: list(r) for q, r in state["outputs"].items()}
        self.metrics = state["metrics"]
        self.switches = list(state["switches"])
        self._stored = list(state["stored"])
        # reset workers restart with fresh flow counters: bank the
        # checkpoint-time aggregates so _refresh_counters resumes exactly
        # (the same convention _reshard uses for its worker restarts)
        for name in _FLOW_FIELDS:
            self._flow_base[name] = int(getattr(self.metrics, name))
        self._worker_flow = [{} for _ in range(self.num_shards)]
        self.metrics.on_restore(sum(int(reply[1]) for reply in replies))

    # ------------------------------------------------------------------
    # fault-injection hook (tests only; see TEST_HOOK_ENV)
    # ------------------------------------------------------------------
    def inject_crash(self, shard: int, after: int) -> None:
        """Arm the crash-on-Nth-tuple hook on one worker (test builds only:
        requires ``REPRO_SHARD_TEST_HOOKS=1`` in the worker environment)."""
        self._send(shard, ("crash_after", after))
        self._collect(shard)

    # ------------------------------------------------------------------
    # transport plumbing + failure detection
    # ------------------------------------------------------------------
    def _send(self, idx: int, msg: _Msg) -> None:
        try:
            self._shards[idx].send(msg)
        except (BrokenPipeError, EOFError, OSError) as exc:
            self._shard_failed(idx, f"send failed: {exc}")

    def _collect(self, idx: int) -> _Msg:
        try:
            reply = self._shards[idx].recv(self.sync_timeout)
        except (EOFError, OSError) as exc:
            self._shard_failed(idx, f"worker died ({exc})")
        except TimeoutError as exc:
            self._shard_failed(idx, str(exc))
        if reply[0] == "error":
            self._shard_failed(idx, f"worker error:\n{reply[1]}")
        return reply

    def _broadcast_collect(self, msg: _Msg) -> List[_Msg]:
        """Send one command to every shard, then collect all replies (the
        workers run the command concurrently)."""
        for idx in range(self.num_shards):
            self._send(idx, msg)
        return self._collect_all()

    def _collect_all(self) -> List[_Msg]:
        return [self._collect(idx) for idx in range(self.num_shards)]

    def _shard_failed(self, idx: int, reason: str) -> NoReturn:
        message = f"shard {idx}/{self.num_shards} failed: {reason}"
        self.metrics.on_failure(message)
        self.close()
        raise ShardFailedError(message)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Terminate the worker pool (idempotent).

        A clean close asks live workers to stop first; anything still
        running afterwards is terminated.
        """
        if self._closed:
            return
        self._closed = True
        if not self.metrics.failed:
            for shard in self._shards:
                try:
                    if shard.alive():
                        shard.send(("stop",))
                        shard.recv(2.0)
                except Exception:
                    pass
        _terminate_pool(self._shards)
        self._finalizer.detach()

    def __enter__(self) -> "ShardedRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
