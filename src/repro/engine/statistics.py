"""Online statistics gathering (Figure 2's "Samples/Measurements/Stats").

During each epoch the runtime records per-relation arrival counts and
bounded per-attribute value histograms.  At the epoch boundary these yield:

* arrival rates — ``count / epoch length``,
* join selectivities — for an equi predicate ``A = B``, the histogram dot
  product  ``Σ_v freq_A(v)·freq_B(v) / (n_A · n_B)``,

which is exactly what the cost model consumes.  The estimates are folded
into a copy of the base catalog so unobserved relations/predicates keep
their previous values (the paper's bootstrap concern, Section VI.B).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple

from ..core.catalog import StatisticsCatalog
from ..core.predicates import JoinPredicate
from ..core.query import Query
from .tuples import StreamTuple

__all__ = ["EpochStatistics"]

#: per-attribute histogram size bound (memory guard for high-cardinality data)
MAX_HISTOGRAM_ENTRIES = 50_000


@dataclass
class EpochStatistics:
    """Mutable statistics accumulator for one epoch."""

    epoch: int
    counts: Dict[str, int] = field(default_factory=dict)
    histograms: Dict[str, "Counter[object]"] = field(default_factory=dict)
    _saturated: Set[str] = field(default_factory=set)
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None

    def observe(self, tup: StreamTuple) -> None:
        """Record an arriving *input* tuple (not intermediates)."""
        relation = tup.trigger
        self.counts[relation] = self.counts.get(relation, 0) + 1
        if self.first_ts is None:
            self.first_ts = tup.trigger_ts
        if self.last_ts is None or tup.trigger_ts > self.last_ts:
            self.last_ts = tup.trigger_ts
        for attr, value in tup.values.items():
            if attr in self._saturated:
                continue
            hist = self.histograms.setdefault(attr, Counter())
            hist[value] += 1
            if len(hist) > MAX_HISTOGRAM_ENTRIES:
                self._saturated.add(attr)

    def merge(self, other: "EpochStatistics") -> None:
        """Fold another accumulator into this one (shard fold-back)."""
        for relation, count in other.counts.items():
            self.counts[relation] = self.counts.get(relation, 0) + count
        self._saturated |= other._saturated
        for attr, hist in other.histograms.items():
            if attr in self._saturated:
                continue
            mine = self.histograms.setdefault(attr, Counter())
            mine.update(hist)
            if len(mine) > MAX_HISTOGRAM_ENTRIES:
                self._saturated.add(attr)
        if other.first_ts is not None and (
            self.first_ts is None or other.first_ts < self.first_ts
        ):
            self.first_ts = other.first_ts
        if other.last_ts is not None and (
            self.last_ts is None or other.last_ts > self.last_ts
        ):
            self.last_ts = other.last_ts

    # ------------------------------------------------------------------
    def rate(self, relation: str, epoch_length: float) -> Optional[float]:
        count = self.counts.get(relation)
        if not count:
            return None
        return count / epoch_length

    def selectivity(self, predicate: JoinPredicate) -> Optional[float]:
        hist_a = self.histograms.get(str(predicate.left))
        hist_b = self.histograms.get(str(predicate.right))
        if not hist_a or not hist_b:
            return None
        n_a = sum(hist_a.values())
        n_b = sum(hist_b.values())
        if n_a == 0 or n_b == 0:
            return None
        smaller, larger = (
            (hist_a, hist_b) if len(hist_a) <= len(hist_b) else (hist_b, hist_a)
        )
        matches = sum(freq * larger.get(value, 0) for value, freq in smaller.items())
        selectivity = matches / (n_a * n_b)
        return min(max(selectivity, 1e-12), 1.0)

    # ------------------------------------------------------------------
    def fold_into(
        self,
        base: StatisticsCatalog,
        queries: Iterable[Query],
        epoch_length: float,
    ) -> StatisticsCatalog:
        """A catalog copy updated with this epoch's measurements."""
        catalog = base.copy()
        for relation in self.counts:
            rate = self.rate(relation, epoch_length)
            if rate:
                catalog.with_rate(relation, rate)
        seen: Set[JoinPredicate] = set()
        for query in queries:
            for pred in query.predicates:
                if pred in seen:
                    continue
                seen.add(pred)
                estimate = self.selectivity(pred)
                if estimate is not None:
                    catalog.with_selectivity(pred, estimate)
        return catalog
