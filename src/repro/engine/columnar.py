"""Columnar store backend: numpy-vectorized windowed containers.

:class:`ColumnarContainer` is a drop-in alternative to the dict-backed
:class:`~repro.engine.stores.Container` (both satisfy the
:class:`~repro.engine.stores.StoreBackend` protocol).  Instead of hash
indexes over per-tuple ``values`` dicts, it lays state out as numpy arrays
per (time bucket, attribute):

* **interned key columns** — each join-attribute value is mapped to a
  small integer *code* through a per-attribute interning dict; equality
  probes become ``codes == probe_code`` array comparisons resolved with
  ``np.flatnonzero`` instead of per-tuple predicate evaluation,
* **timestamp columns** — ``latest_ts`` / ``earliest_ts`` per row back the
  O(1) uniform-window check; per-relation event-timestamp columns (NaN
  where a row's lineage lacks the relation) back the general pairwise
  window mask,
* **seq column** — the runtime-assigned arrival sequence, so watermark
  mode's visibility rule is a vectorized comparison too.

Layout and growth policy:

* rows live in coarse ``latest_ts`` buckets (same geometry as the python
  backend: ``retention / BUCKETS_PER_WINDOW``), each bucket owning its
  column arrays plus the parallel :class:`StreamTuple` row list used to
  materialize matches,
* arrays grow **append-only in chunks** (capacity doubling, never below
  :data:`MIN_CAPACITY`); an insert writes one scalar per active column,
* attribute columns are **lazily activated** by the first probe that needs
  them (``column_builds`` counts the one-off backfills, the analogue of
  ``Container.index_rebuilds``) and maintained incrementally afterwards,
* **eviction is bucket-sliced**: whole expired buckets are dropped in one
  ``del``, only the boundary bucket is compressed (boolean-mask fancy
  indexing over its columns) — active columns survive every pass, they are
  never rebuilt from a container scan.

The vectorized probe path lives in :meth:`ColumnarContainer.probe_batch`,
which :func:`repro.engine.stores.probe_batch` dispatches to whenever the
stored side is columnar — callers (runtime, session, benchmarks) are
oblivious to the backend.
"""

from __future__ import annotations

import io
from math import isinf
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np
import numpy.typing as npt

from .tuples import StreamTuple, intern_attr

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]
BoolArray = npt.NDArray[np.bool_]

__all__ = ["ColumnarContainer", "ColumnBucket", "VectorBatch", "MIN_CAPACITY"]

#: smallest per-bucket array allocation; doubles as the growth quantum for
#: tiny buckets so chunked growth never degenerates into per-insert resizes
MIN_CAPACITY = 64


def _array_bytes(arr: npt.NDArray[Any]) -> bytes:
    """Serialize an array to raw ``.npy`` bytes (``np.save`` format)."""
    buf = io.BytesIO()
    np.save(buf, arr, allow_pickle=False)
    return buf.getvalue()


def _array_from(data: bytes) -> npt.NDArray[Any]:
    """Inverse of :func:`_array_bytes`."""
    out: npt.NDArray[Any] = np.load(io.BytesIO(data), allow_pickle=False)
    return out


class VectorBatch:
    """A micro-batch travelling hop-to-hop in vectorized (unmaterialized) form.

    The tuple-at-a-time cascade materializes a merged :class:`StreamTuple`
    (two dict unions) for *every* intermediate match, even those that die at
    the next hop.  A :class:`VectorBatch` defers that work: each element is a
    *component chain* — the probe's original parts plus one stored row per
    survived hop — alongside numpy columns for exactly the per-element
    scalars the next hop needs (``trigger_ts`` / ``latest_ts`` /
    ``earliest_ts`` / ``seq``).  Chains share their common prefix
    structurally, so carrying a survivor costs one tuple concatenation and
    four array slots instead of two dict unions.

    :meth:`materialize` folds each chain left-to-right through
    :meth:`StreamTuple.merge`, reproducing the tuple path's results exactly
    (same trigger, same last-writer-wins value union, same timestamp extrema
    and max-``seq``); the fold is cached so emission and store boundaries
    within one hop share it.
    """

    __slots__ = (
        "chains",
        "trigger",
        "latest",
        "earliest",
        "seq",
        "lineage",
        "_rows",
    )

    def __init__(
        self,
        chains: List[Tuple[StreamTuple, ...]],
        trigger: FloatArray,
        latest: FloatArray,
        earliest: FloatArray,
        seq: IntArray,
        lineage: FrozenSet[str],
    ) -> None:
        self.chains = chains
        self.trigger = trigger
        self.latest = latest
        self.earliest = earliest
        self.seq = seq
        self.lineage = lineage
        self._rows: Optional[List[StreamTuple]] = None

    @classmethod
    def from_tuples(cls, tups: Sequence[StreamTuple]) -> "VectorBatch":
        """Lift a homogeneous-lineage tuple batch into vector form."""
        n = len(tups)
        trigger = np.empty(n, dtype=np.float64)
        latest = np.empty(n, dtype=np.float64)
        earliest = np.empty(n, dtype=np.float64)
        seq = np.empty(n, dtype=np.int64)
        chains: List[Tuple[StreamTuple, ...]] = []
        for pos, tup in enumerate(tups):
            trigger[pos] = tup.trigger_ts
            latest[pos] = tup.latest_ts
            earliest[pos] = tup.earliest_ts
            seq[pos] = tup.seq
            chains.append((tup,))
        batch = cls(chains, trigger, latest, earliest, seq, tups[0].lineage)
        # single-part chains materialize to the inputs themselves
        batch._rows = list(tups)
        return batch

    def __len__(self) -> int:
        return len(self.chains)

    def values_of(self, attr: str) -> List[object]:
        """Per-element value of a qualified attribute (``None`` if absent).

        Chains have pairwise-disjoint part lineages, so a qualified
        attribute lives in at most one part; scanning parts last-to-first
        reproduces the merged dict union's last-writer-wins ``.get`` exactly
        (including explicit ``None`` values, which are joinable keys).
        """
        out: List[object] = []
        for chain in self.chains:
            value = None
            for part in reversed(chain):
                if attr in part.values:
                    value = part.values[attr]
                    break
            out.append(value)
        return out

    def materialize(self) -> List[StreamTuple]:
        """Fold every chain into a concrete :class:`StreamTuple` (cached)."""
        rows = self._rows
        if rows is None:
            rows = []
            for chain in self.chains:
                tup = chain[0]
                for part in chain[1:]:
                    tup = tup.merge(part)
                rows.append(tup)
            self._rows = rows
        return rows


class ColumnBucket:
    """One ``latest_ts`` slice of a columnar container.

    Owns the row list plus one array per core column (``latest``,
    ``earliest``, ``seq``, ``width``) and per active attribute/relation
    column.  Arrays are over-allocated (``size <= capacity``); views are
    always taken as ``arr[:size]``.
    """

    __slots__ = (
        "rows",
        "size",
        "capacity",
        "latest",
        "earliest",
        "seq",
        "width",
        "codes",
        "rel_ts",
    )

    def __init__(self, capacity: int = MIN_CAPACITY) -> None:
        self.rows: List[StreamTuple] = []
        self.size = 0
        self.capacity = capacity
        self.latest = np.empty(capacity, dtype=np.float64)
        self.earliest = np.empty(capacity, dtype=np.float64)
        self.seq = np.empty(capacity, dtype=np.int64)
        self.width = np.empty(capacity, dtype=np.int64)
        #: attribute -> int64 code column (lazily activated)
        self.codes: Dict[str, IntArray] = {}
        #: relation -> float64 event-timestamp column (NaN = not in lineage)
        self.rel_ts: Dict[str, FloatArray] = {}

    def _grow(self) -> None:
        new_capacity = max(self.capacity * 2, MIN_CAPACITY)
        for name in ("latest", "earliest", "seq", "width"):
            old = getattr(self, name)
            fresh = np.empty(new_capacity, dtype=old.dtype)
            fresh[: self.size] = old[: self.size]
            setattr(self, name, fresh)
        for table in (self.codes, self.rel_ts):
            for key, old in table.items():
                fresh = np.empty(new_capacity, dtype=old.dtype)
                fresh[: self.size] = old[: self.size]
                table[key] = fresh
        self.capacity = new_capacity

    def compress(self, keep: BoolArray) -> None:
        """Keep only the rows selected by the boolean mask ``keep``."""
        kept = int(np.count_nonzero(keep))
        for name in ("latest", "earliest", "seq", "width"):
            arr = getattr(self, name)
            arr[:kept] = arr[: self.size][keep]
        for table in (self.codes, self.rel_ts):
            for key, arr in table.items():
                arr[:kept] = arr[: self.size][keep]
        self.rows = [row for row, k in zip(self.rows, keep) if k]
        self.size = kept


class ColumnarContainer:
    """Numpy-backed tuple container (columnar :class:`StoreBackend`).

    Construction mirrors :class:`~repro.engine.stores.Container`:
    ``bucket_width`` is the coarse ``latest_ts`` slice (``None`` keeps one
    bucket, used for infinite retention).
    """

    __slots__ = (
        "_buckets",
        "_bucket_width",
        "_count",
        "_value_codes",
        "_active_attrs",
        "_active_rels",
        "column_builds",
    )

    def __init__(self, bucket_width: Optional[float] = None) -> None:
        if bucket_width is not None and (bucket_width <= 0 or isinf(bucket_width)):
            bucket_width = None
        self._bucket_width = bucket_width
        self._buckets: Dict[int, ColumnBucket] = {}
        self._count = 0
        #: attribute -> {value -> code}; shared by every bucket so a code is
        #: stable for the container's lifetime (codes of evicted values
        #: linger — bounded by the distinct values ever seen per attribute)
        self._value_codes: Dict[str, Dict[object, int]] = {}
        self._active_attrs: List[str] = []
        self._active_rels: List[str] = []
        #: diagnostic: one-off full backfills of lazily activated columns
        #: (tests assert eviction never forces one, mirroring
        #: ``Container.index_rebuilds``)
        self.column_builds = 0

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def iter_tuples(self) -> Iterator[StreamTuple]:
        """All stored tuples, bucket-ordered then arrival-ordered."""
        for bucket_id in sorted(self._buckets):
            yield from self._buckets[bucket_id].rows

    @property
    def tuples(self) -> List[StreamTuple]:
        return list(self.iter_tuples())

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _bucket_for(self, latest_ts: float) -> ColumnBucket:
        width = self._bucket_width
        bucket_id = 0 if width is None else int(latest_ts // width)
        bucket = self._buckets.get(bucket_id)
        if bucket is None:
            bucket = self._buckets[bucket_id] = ColumnBucket()
            # fresh buckets carry every already-active column from birth
            for attr in self._active_attrs:
                bucket.codes[attr] = np.empty(bucket.capacity, dtype=np.int64)
            for rel in self._active_rels:
                bucket.rel_ts[rel] = np.full(
                    bucket.capacity, np.nan, dtype=np.float64
                )
        return bucket

    def _code_of(self, attr: str, value: object) -> int:
        table = self._value_codes.setdefault(attr, {})
        code = table.get(value)
        if code is None:
            code = table[value] = len(table)
        return code

    def insert(self, tup: StreamTuple) -> None:
        bucket = self._bucket_for(tup.latest_ts)
        if bucket.size >= bucket.capacity:
            bucket._grow()
        pos = bucket.size
        bucket.rows.append(tup)
        bucket.latest[pos] = tup.latest_ts
        bucket.earliest[pos] = tup.earliest_ts
        bucket.seq[pos] = tup.seq
        bucket.width[pos] = tup.width
        values = tup.values
        for attr in self._active_attrs:
            # None is a joinable value, exactly like the dict backend's
            # ``index[None]`` entry — it interns to an ordinary code
            bucket.codes[attr][pos] = self._code_of(attr, values.get(attr))
        timestamps = tup.timestamps
        for rel in self._active_rels:
            ts = timestamps.get(rel)
            bucket.rel_ts[rel][pos] = np.nan if ts is None else ts
        new_rels = [rel for rel in timestamps if rel not in bucket.rel_ts]
        if new_rels:
            self._activate_relations(new_rels)
            for rel in new_rels:
                bucket.rel_ts[rel][pos] = timestamps[rel]
        bucket.size = pos + 1
        self._count += 1

    def _activate_relations(self, rels: List[str]) -> None:
        """First sighting of new lineage relations: add NaN-padded columns.

        Stores are lineage-homogeneous in practice, so this runs once per
        relation of the store's MIR (at the first insert) and never again.
        Rows inserted before a relation existed cannot carry it, so the NaN
        padding is exact, not an approximation.
        """
        for rel in rels:
            self._active_rels.append(rel)
            for bucket in self._buckets.values():
                bucket.rel_ts[rel] = np.full(
                    bucket.capacity, np.nan, dtype=np.float64
                )

    def ensure_column(self, attr: str) -> None:
        """Activate (and backfill once) the code column for ``attr``.

        The probe path calls this lazily, exactly like ``Container.index_on``
        builds a hash index on first use; afterwards inserts maintain the
        column incrementally and eviction only compresses it.
        """
        attr = intern_attr(attr)
        if attr in self._active_attrs:
            return
        self._active_attrs.append(attr)
        code_of = self._code_of
        for bucket in self._buckets.values():
            col = np.empty(bucket.capacity, dtype=np.int64)
            for pos, row in enumerate(bucket.rows):
                col[pos] = code_of(attr, row.values.get(attr))
            bucket.codes[attr] = col
        self.column_builds += 1

    def evict_older_than(self, horizon: float) -> int:
        """Drop rows whose latest component is older than ``horizon``.

        Whole expired buckets are dropped; the single boundary bucket is
        compressed in place.  Returns the summed width of evicted rows.
        """
        if not self._count:
            return 0
        freed = 0
        evicted = 0
        width = self._bucket_width
        if width is None:
            boundary = 0
        else:
            boundary = int(horizon // width)
            for bucket_id in [b for b in self._buckets if b < boundary]:
                bucket = self._buckets.pop(bucket_id)
                freed += int(np.sum(bucket.width[: bucket.size]))
                evicted += bucket.size
        bucket = self._buckets.get(boundary)
        if bucket is not None and bucket.size:
            keep = bucket.latest[: bucket.size] >= horizon
            kept = int(np.count_nonzero(keep))
            if kept != bucket.size:
                freed += int(np.sum(bucket.width[: bucket.size][~keep]))
                evicted += bucket.size - kept
                if kept:
                    bucket.compress(keep)
                else:
                    del self._buckets[boundary]
        self._count -= evicted
        return freed

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def dump_state(self) -> Dict[str, Any]:
        """Structural snapshot of the container (checkpoint support).

        Column arrays are serialized as raw ``.npy`` buffers
        (:func:`numpy.save` with ``allow_pickle=False``), sliced to their
        live ``size`` — over-allocated capacity is not persisted.  The
        value-code interning tables, active column lists, and
        ``column_builds`` all survive, so a restored container probes with
        byte-identical code comparisons, ``checked`` counts, and result
        order.
        """
        buckets: Dict[int, Dict[str, Any]] = {}
        for bucket_id, bucket in self._buckets.items():
            size = bucket.size
            buckets[bucket_id] = {
                "rows": list(bucket.rows),
                "size": size,
                "latest": _array_bytes(bucket.latest[:size]),
                "earliest": _array_bytes(bucket.earliest[:size]),
                "seq": _array_bytes(bucket.seq[:size]),
                "width": _array_bytes(bucket.width[:size]),
                "codes": {
                    attr: _array_bytes(col[:size])
                    for attr, col in bucket.codes.items()
                },
                "rel_ts": {
                    rel: _array_bytes(col[:size])
                    for rel, col in bucket.rel_ts.items()
                },
            }
        return {
            "backend": "columnar",
            "bucket_width": self._bucket_width,
            "buckets": buckets,
            "value_codes": {
                attr: dict(table) for attr, table in self._value_codes.items()
            },
            "active_attrs": list(self._active_attrs),
            "active_rels": list(self._active_rels),
            "count": self._count,
            "column_builds": self.column_builds,
        }

    @classmethod
    def load_state(cls, state: Mapping[str, Any]) -> "ColumnarContainer":
        """Rebuild a container from :meth:`dump_state` output."""
        cont = cls(bucket_width=state["bucket_width"])
        cont._value_codes = {
            intern_attr(attr): dict(table)
            for attr, table in state["value_codes"].items()
        }
        cont._active_attrs = [intern_attr(a) for a in state["active_attrs"]]
        cont._active_rels = list(state["active_rels"])
        cont.column_builds = int(state["column_builds"])
        for bucket_id, bstate in state["buckets"].items():
            size = int(bstate["size"])
            bucket = ColumnBucket(capacity=max(MIN_CAPACITY, size))
            bucket.rows = list(bstate["rows"])
            bucket.size = size
            bucket.latest[:size] = _array_from(bstate["latest"])
            bucket.earliest[:size] = _array_from(bstate["earliest"])
            bucket.seq[:size] = _array_from(bstate["seq"])
            bucket.width[:size] = _array_from(bstate["width"])
            for attr, data in bstate["codes"].items():
                col = np.empty(bucket.capacity, dtype=np.int64)
                col[:size] = _array_from(data)
                bucket.codes[intern_attr(attr)] = col
            for rel, data in bstate["rel_ts"].items():
                rcol = np.full(bucket.capacity, np.nan, dtype=np.float64)
                rcol[:size] = _array_from(data)
                bucket.rel_ts[rel] = rcol
            cont._buckets[int(bucket_id)] = bucket
        cont._count = int(state["count"])
        return cont

    # ------------------------------------------------------------------
    # vectorized probing
    # ------------------------------------------------------------------
    def probe_batch(
        self,
        probes: Sequence[StreamTuple],
        oriented: Tuple[Tuple[str, str], ...],
        windows: Mapping[str, float],
        uniform_window: Optional[float] = None,
        seq_visibility: bool = False,
    ) -> Tuple[List[StreamTuple], int]:
        """Vectorized join-partner search (semantics of
        :func:`repro.engine.stores.probe_batch`).

        Per probe and bucket the first predicate is resolved as one
        ``np.flatnonzero`` over the attribute's code column; remaining
        predicates, arrival visibility, and the window check narrow the
        survivor index array with O(survivors) gathered comparisons.
        ``checked`` counts first-predicate matches (the python backend's
        index-bucket candidates), or full scans for predicate-free probes.
        """
        results: List[StreamTuple] = []
        checked = 0
        if not self._count or not probes:
            return results, checked
        if oriented:
            first_probe_attr, first_stored_attr = oriented[0]
            rest = oriented[1:]
            self.ensure_column(first_stored_attr)
            for _, stored_attr in rest:
                self.ensure_column(stored_attr)
            first_codes = self._value_codes.get(first_stored_attr, {})
        buckets = [b for _, b in sorted(self._buckets.items()) if b.size]
        for probe in probes:
            probe_values = probe.values
            if oriented:
                code = first_codes.get(probe_values.get(first_probe_attr))
                if code is None:
                    # value never stored: the python backend's index lookup
                    # comes back empty too (0 candidates checked)
                    continue
                # a *secondary* value never stored still scans the first
                # column (parity with the python backend, which checks every
                # first-index candidate); -1 can never equal an interned code
                rest_codes = [
                    (
                        stored_attr,
                        self._value_codes[stored_attr].get(
                            probe_values.get(probe_attr), -1
                        ),
                    )
                    for probe_attr, stored_attr in rest
                ]
            trigger_ts = probe.trigger_ts
            probe_seq = probe.seq
            for bucket in buckets:
                size = bucket.size
                if oriented:
                    idx = np.flatnonzero(bucket.codes[first_stored_attr][:size] == code)
                    checked += len(idx)
                    for stored_attr, rcode in rest_codes:
                        if not len(idx):
                            break
                        idx = idx[bucket.codes[stored_attr][idx] == rcode]
                else:
                    idx = np.arange(size)
                    checked += size
                if not len(idx):
                    continue
                if seq_visibility:
                    idx = idx[bucket.seq[idx] < probe_seq]
                else:
                    idx = idx[bucket.latest[idx] < trigger_ts]
                if not len(idx):
                    continue
                if uniform_window is not None:
                    latest = bucket.latest[idx]
                    earliest = bucket.earliest[idx]
                    idx = idx[
                        (probe.latest_ts - earliest <= uniform_window)
                        & (latest - probe.earliest_ts <= uniform_window)
                    ]
                else:
                    idx = self._window_mask(probe, bucket, idx, windows)
                if len(idx):
                    merge = probe.merge
                    rows = bucket.rows
                    results.extend(merge(rows[i]) for i in idx)
        return results, checked

    def probe_batch_vector(
        self,
        batch: VectorBatch,
        oriented: Tuple[Tuple[str, str], ...],
        uniform_window: float,
        seq_visibility: bool = False,
    ) -> Tuple[Optional[VectorBatch], int]:
        """One vectorized cascade hop: probe with a :class:`VectorBatch`.

        Semantically identical to :meth:`probe_batch` over
        ``batch.materialize()`` — same ``checked`` count (first-predicate
        index candidates), same arrival-visibility and uniform-window
        narrowing, same probe-major / bucket-major / row-ascending result
        order — but survivors stay unmaterialized: each match extends its
        probe's component chain by the stored row and gathers the merged
        scalars (``max`` latest / ``min`` earliest / ``max`` seq, probe's
        trigger) straight from the bucket columns.

        Only the uniform-window regime is supported; the runtime falls back
        to the materializing path otherwise.  Returns ``(None, checked)``
        when no row survives, without activating any lazy column on an
        empty store.
        """
        checked = 0
        if not self._count or not len(batch):
            return None, checked
        if oriented:
            first_probe_attr, first_stored_attr = oriented[0]
            rest = oriented[1:]
            self.ensure_column(first_stored_attr)
            for _, stored_attr in rest:
                self.ensure_column(stored_attr)
            first_codes = self._value_codes.get(first_stored_attr, {})
            first_vals = batch.values_of(first_probe_attr)
            rest_lookups = [
                (
                    stored_attr,
                    self._value_codes[stored_attr],
                    batch.values_of(probe_attr),
                )
                for probe_attr, stored_attr in rest
            ]
        # Hoist per-bucket column views out of the probe loop: one dict
        # lookup per bucket for the whole batch instead of one per
        # (probe, bucket) pair.
        if oriented:
            bucket_views = [
                (
                    b.codes[first_stored_attr][: b.size],
                    [b.codes[a] for a, _, _ in rest_lookups],
                    b.latest,
                    b.earliest,
                    b.seq,
                    b.rows,
                    b.size,
                )
                for _, b in sorted(self._buckets.items())
                if b.size
            ]
        else:
            bucket_views = [
                (None, [], b.latest, b.earliest, b.seq, b.rows, b.size)
                for _, b in sorted(self._buckets.items())
                if b.size
            ]
        chains = batch.chains
        trig_col = batch.trigger
        lat_col = batch.latest
        ear_col = batch.earliest
        seq_col = batch.seq
        out_chains: List[Tuple[StreamTuple, ...]] = []
        # Per-segment raw slices plus the probe-side scalars; the merged
        # columns are computed once at batch assembly (np.repeat of the
        # scalars against the concatenated slices) rather than with four
        # numpy calls on each tiny segment.
        seg_latest: List[FloatArray] = []
        seg_earliest: List[FloatArray] = []
        seg_seq: List[IntArray] = []
        seg_counts: List[int] = []
        seg_trig_s: List[float] = []
        seg_lat_s: List[float] = []
        seg_ear_s: List[float] = []
        seg_seq_s: List[int] = []
        for j in range(len(chains)):
            if oriented:
                code = first_codes.get(first_vals[j])
                if code is None:
                    # value never stored: empty index lookup, 0 checked
                    continue
                rest_codes = [
                    table.get(vals[j], -1)
                    for _, table, vals in rest_lookups
                ]
            t_trig = trig_col[j]
            t_lat = lat_col[j]
            t_ear = ear_col[j]
            t_seq = seq_col[j]
            chain = chains[j]
            for (
                first_col,
                rest_cols,
                b_latest,
                b_earliest,
                b_seq,
                rows,
                size,
            ) in bucket_views:
                if oriented:
                    idx = np.flatnonzero(first_col == code)
                    checked += len(idx)
                    for col, rcode in zip(rest_cols, rest_codes):
                        if not len(idx):
                            break
                        idx = idx[col[idx] == rcode]
                else:
                    idx = np.arange(size)
                    checked += size
                if not len(idx):
                    continue
                if seq_visibility:
                    idx = idx[b_seq[idx] < t_seq]
                else:
                    idx = idx[b_latest[idx] < t_trig]
                if not len(idx):
                    continue
                s_lat = b_latest[idx]
                s_ear = b_earliest[idx]
                keep = (t_lat - s_ear <= uniform_window) & (
                    s_lat - t_ear <= uniform_window
                )
                idx = idx[keep]
                n = len(idx)
                if not n:
                    continue
                out_chains.extend(chain + (rows[i],) for i in idx.tolist())
                seg_latest.append(s_lat[keep])
                seg_earliest.append(s_ear[keep])
                seg_seq.append(b_seq[idx])
                seg_counts.append(n)
                seg_trig_s.append(t_trig)
                seg_lat_s.append(t_lat)
                seg_ear_s.append(t_ear)
                seg_seq_s.append(t_seq)
        if not out_chains:
            return None, checked
        counts = np.asarray(seg_counts)
        out = VectorBatch(
            out_chains,
            np.repeat(np.asarray(seg_trig_s, dtype=np.float64), counts),
            np.maximum(
                np.concatenate(seg_latest),
                np.repeat(np.asarray(seg_lat_s, dtype=np.float64), counts),
            ),
            np.minimum(
                np.concatenate(seg_earliest),
                np.repeat(np.asarray(seg_ear_s, dtype=np.float64), counts),
            ),
            np.maximum(
                np.concatenate(seg_seq),
                np.repeat(np.asarray(seg_seq_s), counts),
            ),
            batch.lineage | out_chains[0][-1].lineage,
        )
        return out, checked

    def _window_mask(
        self,
        probe: StreamTuple,
        bucket: ColumnBucket,
        idx: IntArray,
        windows: Mapping[str, float],
    ) -> BoolArray:
        """Per-pair window check over the survivor rows (non-uniform case).

        For each (probe relation, stored relation) pair the bound is
        ``min(window_a, window_b)``; rows whose lineage lacks the stored
        relation carry NaN, and ``~(|Δ| > bound)`` passes NaN rows — the
        pair simply does not exist for them, matching
        :meth:`StreamTuple.within_windows`.
        """
        inf = float("inf")
        for rel_a, ts_a in probe.timestamps.items():
            w_a = windows.get(rel_a, inf)
            for rel_b, col in bucket.rel_ts.items():
                bound = min(w_a, windows.get(rel_b, inf))
                if isinf(bound):
                    continue
                idx = idx[~(np.abs(ts_a - col[idx]) > bound)]
                if not len(idx):
                    return idx
        return idx
