"""Partitioned, windowed, indexed relation stores.

Each :class:`StoreTask` simulates one worker task of a store (one partition).
It keeps per-epoch containers (Algorithm 4: "for each epoch, an independent
container is created on each worker together with all aforementioned
indexes"), hash indexes per accessed attribute ("For each distinct attribute
access in a store, indices are created locally"), and evicts tuples that
fell out of the retention window.

Eviction is *incremental*: a container buckets its tuples by coarse
``latest_ts`` slices, so an eviction pass drops whole expired buckets (plus
a filter over the single boundary bucket) and removes exactly the evicted
tuples from the existing hash indexes in place — the indexes survive the
pass instead of being rebuilt from a full container scan.  The seed
implementation re-scanned every tuple and discarded all indexes on every
pass, which made long runs quadratic in the stored-state size.

The container contract is explicit: :class:`StoreBackend` is the protocol
every container implementation satisfies, :func:`make_backend` the
configuration-name factory.  :class:`Container` (this module) is the
dict/hash-index implementation; the numpy-vectorized columnar layout lives
in :mod:`repro.engine.columnar` and is selected with
``RuntimeConfig(store_backend="columnar")``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import isinf
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..core.predicates import JoinPredicate
from .tuples import StreamTuple, intern_attr

__all__ = [
    "Container",
    "STORE_BACKENDS",
    "StoreBackend",
    "StoreTask",
    "load_container",
    "make_backend",
    "probe_container",
    "probe_batch",
    "orient_predicates",
]

#: number of coarse time slices a retention window is divided into; eviction
#: drops whole slices, so larger values evict in finer (cheaper) steps at the
#: price of more bucket bookkeeping.
BUCKETS_PER_WINDOW = 16


@runtime_checkable
class StoreBackend(Protocol):
    """The container contract every store backend implements.

    This is the (previously implicit) interface the runtime, the rewiring
    subsystem, and the probe path rely on.  Two implementations ship:

    * :class:`Container` — per-attribute hash indexes over tuple dicts
      (``store_backend="python"``, the default),
    * :class:`~repro.engine.columnar.ColumnarContainer` — numpy columns per
      (time bucket, attribute) with vectorized probes
      (``store_backend="columnar"``).

    Probing is an either/or obligation the protocol cannot express: a
    backend must *either* expose its own ``probe_batch(probes, oriented,
    windows, uniform_window, seq_visibility)`` method — :func:`probe_batch`
    dispatches to it when present, which is how the columnar backend routes
    probes through its vectorized path without the runtime knowing about
    backends at all — *or* implement ``index_on(attr)`` (a hash index like
    :meth:`Container.index_on`), which the generic fallback path requires.
    """

    def insert(self, tup: StreamTuple) -> None: ...

    def iter_tuples(self) -> Iterator[StreamTuple]: ...

    @property
    def tuples(self) -> List[StreamTuple]: ...

    def evict_older_than(self, horizon: float) -> int: ...

    def __len__(self) -> int: ...

    def dump_state(self) -> Dict[str, Any]: ...


def check_backend_name(name: str) -> str:
    """Validate a backend *configuration* name.

    Accepts every registered backend plus ``"auto"`` (per-task selection
    from observed statistics); ``"auto"`` is a configuration-level policy,
    not a container class, so :func:`make_backend` still rejects it — tasks
    resolve it to a concrete backend first.
    """
    if name == "auto" or name in STORE_BACKENDS:
        return name
    raise ValueError(
        f"unknown store backend {name!r}; "
        f"expected one of {sorted(STORE_BACKENDS) + ['auto']}"
    )


def make_backend(name: str, bucket_width: Optional[float]) -> "StoreBackend":
    """Instantiate a store backend by concrete configuration name.

    The single registry behind every backend-name surface
    (:data:`STORE_BACKENDS`): ``RuntimeConfig`` validation, task
    construction, and the benchmark/experiment CLIs all consume it, so a
    new backend registers exactly once.
    """
    if name not in STORE_BACKENDS:
        raise ValueError(
            f"unknown store backend {name!r}; "
            f"expected one of {sorted(STORE_BACKENDS)}"
        )
    return STORE_BACKENDS[name](bucket_width=bucket_width)


class Container:
    """Tuple container with lazy, incrementally-maintained hash indexes.

    ``bucket_width`` is the coarse time-slice used to group tuples by
    ``latest_ts`` (normally ``retention / BUCKETS_PER_WINDOW``); ``None``
    keeps a single bucket, which still evicts correctly but filters the
    whole container per pass (used for infinite retention, where eviction
    never runs anyway).

    Inserts append to a flat ``_recent`` list — exactly the seed's insert
    cost — and tuples are moved into their time buckets lazily at the next
    eviction pass, so bucket bookkeeping is amortized over whole eviction
    intervals instead of paid per insert.
    """

    __slots__ = (
        "_buckets",
        "_recent",
        "indexes",
        "_count",
        "_bucket_width",
        "index_rebuilds",
    )

    def __init__(self, bucket_width: Optional[float] = None) -> None:
        if bucket_width is not None and (bucket_width <= 0 or isinf(bucket_width)):
            bucket_width = None
        self._bucket_width = bucket_width
        self._buckets: Dict[int, List[StreamTuple]] = {}
        self._recent: List[StreamTuple] = []
        self.indexes: Dict[str, Dict[object, List[StreamTuple]]] = {}
        self._count = 0
        #: diagnostic: number of full-scan index (re)builds (tests assert
        #: eviction does not force rebuilds)
        self.index_rebuilds = 0

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def iter_tuples(self) -> Iterator[StreamTuple]:
        """All stored tuples, bucket-ordered then arrival-ordered (deterministic)."""
        for bucket_id in sorted(self._buckets):
            yield from self._buckets[bucket_id]
        yield from self._recent

    @property
    def tuples(self) -> List[StreamTuple]:
        """Materialized list view (compatibility; prefer :meth:`iter_tuples`)."""
        return list(self.iter_tuples())

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, tup: StreamTuple) -> None:
        self._recent.append(tup)
        self._count += 1
        values = tup.values
        for attr, index in self.indexes.items():
            value = values.get(attr)
            entries = index.get(value)
            if entries is None:
                index[value] = [tup]
            else:
                entries.append(tup)

    def _flush_recent(self) -> None:
        """Move freshly inserted tuples into their time buckets."""
        width = self._bucket_width
        buckets = self._buckets
        if width is None:
            bucket = buckets.get(0)
            if bucket is None:
                buckets[0] = list(self._recent)
            else:
                bucket.extend(self._recent)
        else:
            for tup in self._recent:
                # int(x // w) floors (floats carry exact integers far beyond
                # any realistic bucket id) and beats a math.floor call here
                bucket_id = int(tup.latest_ts // width)
                bucket = buckets.get(bucket_id)
                if bucket is None:
                    buckets[bucket_id] = [tup]
                else:
                    bucket.append(tup)
        self._recent = []

    def index_on(self, attr: str) -> Dict[object, List[StreamTuple]]:
        """Create (on first use) and return the hash index for ``attr``."""
        index = self.indexes.get(attr)
        if index is None:
            index = {}
            for tup in self.iter_tuples():
                value = tup.values.get(attr)
                entries = index.get(value)
                if entries is None:
                    index[value] = [tup]
                else:
                    entries.append(tup)
            self.indexes[attr] = index
            self.index_rebuilds += 1
        return index

    def evict_older_than(self, horizon: float) -> int:
        """Drop tuples whose latest component is older than ``horizon``.

        Returns the summed width of evicted tuples (memory accounting).
        Whole expired buckets are dropped; only the boundary bucket is
        filtered; indexes are updated in place with exactly the evicted
        tuples (no rebuild).
        """
        if not self._count:
            return 0
        if self._recent:
            self._flush_recent()
        evicted: List[StreamTuple] = []
        width = self._bucket_width
        if width is None:
            bucket = self._buckets.get(0)
            if bucket:
                keep = [t for t in bucket if t.latest_ts >= horizon]
                if len(keep) != len(bucket):
                    evicted = [t for t in bucket if t.latest_ts < horizon]
                    if keep:
                        self._buckets[0] = keep
                    else:
                        del self._buckets[0]
        else:
            boundary = int(horizon // width)
            expired = [b for b in self._buckets if b < boundary]
            for bucket_id in expired:
                evicted.extend(self._buckets.pop(bucket_id))
            bucket = self._buckets.get(boundary)
            if bucket:
                keep = [t for t in bucket if t.latest_ts >= horizon]
                if len(keep) != len(bucket):
                    evicted.extend(t for t in bucket if t.latest_ts < horizon)
                    if keep:
                        self._buckets[boundary] = keep
                    else:
                        del self._buckets[boundary]
        if not evicted:
            return 0
        self._count -= len(evicted)
        if self._count == 0:
            # container emptied: empty indexes are cheap to recreate and
            # clearing drops any large dict shells in one go
            self.indexes = {attr: {} for attr in self.indexes}
        else:
            self._unindex(evicted)
        return sum(t.width for t in evicted)

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def dump_state(self) -> Dict[str, Any]:
        """Structural snapshot of the container (checkpoint support).

        The dump is *structural*, not a tuple list: buckets, the pending
        ``_recent`` list, and every hash index's candidate-list order are
        captured verbatim, so a restored container probes candidates in
        exactly the original order — result order and ``checked`` counts
        are bit-for-bit identical after :meth:`load_state`.  Tuples are
        shared by reference between buckets and index entries; a single
        pickle of the dump preserves that identity (``_unindex`` relies
        on it).
        """
        return {
            "backend": "python",
            "bucket_width": self._bucket_width,
            "buckets": {bid: list(tups) for bid, tups in self._buckets.items()},
            "recent": list(self._recent),
            "indexes": {
                attr: {value: list(entries) for value, entries in index.items()}
                for attr, index in self.indexes.items()
            },
            "count": self._count,
            "index_rebuilds": self.index_rebuilds,
        }

    @classmethod
    def load_state(cls, state: Mapping[str, Any]) -> "Container":
        """Rebuild a container from :meth:`dump_state` output."""
        cont = cls(bucket_width=state["bucket_width"])
        cont._buckets = {
            int(bid): list(tups) for bid, tups in state["buckets"].items()
        }
        cont._recent = list(state["recent"])
        cont.indexes = {
            attr: {value: list(entries) for value, entries in index.items()}
            for attr, index in state["indexes"].items()
        }
        cont._count = int(state["count"])
        cont.index_rebuilds = int(state["index_rebuilds"])
        return cont

    def _unindex(self, evicted: Sequence[StreamTuple]) -> None:
        """Remove exactly ``evicted`` from every maintained index, in place."""
        if not self.indexes:
            return
        dead = {id(t) for t in evicted}
        for attr, index in self.indexes.items():
            counts: Dict[object, int] = {}
            for tup in evicted:
                value = tup.values.get(attr)
                counts[value] = counts.get(value, 0) + 1
            for value, n_dead in counts.items():
                entries = index.get(value)
                if entries is None:
                    continue
                if len(entries) <= n_dead:
                    del index[value]
                else:
                    entries[:] = [t for t in entries if id(t) not in dead]
                    if not entries:
                        del index[value]


#: backend-name registry (name -> container class); ``"python"`` is the
#: dict/hash-index :class:`Container`, ``"columnar"`` the numpy-vectorized
#: :class:`~repro.engine.columnar.ColumnarContainer` (imported here, below
#: ``Container``, to register it — columnar depends only on ``tuples``)
from .columnar import ColumnarContainer  # noqa: E402  (needs Container first)

STORE_BACKENDS: Dict[str, Callable[..., "StoreBackend"]] = {
    "python": Container,
    "columnar": ColumnarContainer,
}

def load_container(state: Mapping[str, Any]) -> "StoreBackend":
    """Rebuild a container from a ``dump_state`` snapshot (any backend).

    The snapshot's ``"backend"`` tag selects the implementation; each
    backend's ``load_state`` reconstructs its own structural dump exactly
    (see :meth:`Container.dump_state` /
    :meth:`~repro.engine.columnar.ColumnarContainer.dump_state`).
    """
    backend = state.get("backend")
    if backend == "python":
        return Container.load_state(state)
    if backend == "columnar":
        return ColumnarContainer.load_state(state)
    raise ValueError(f"unknown container snapshot backend {backend!r}")


#: ``store_backend="auto"`` switches a task to the columnar backend once its
#: live state is at least this many tuples — below it, numpy per-bucket
#: dispatch overhead beats the dict index's O(1) candidate lists
AUTO_WIDTH_THRESHOLD = 256
#: ...and once the task has actually been probed this many times; a store
#: that only absorbs inserts gains nothing from vectorized probes
AUTO_PROBE_THRESHOLD = 32


@dataclass
class StoreTask:
    """One partition (worker task) of a store."""

    store_id: str
    task_index: int
    retention: float
    containers: Dict[int, StoreBackend] = field(default_factory=dict)
    #: timed-mode queueing state: when this server is next idle
    next_free: float = 0.0
    #: configured container implementation ("python"|"columnar"|"auto")
    backend: str = "python"
    #: concrete choice for ``backend="auto"`` tasks (set at install time;
    #: ``None`` until the first statistics-driven selection runs)
    resolved_backend: Optional[str] = None
    #: probe tuples routed through this task (drives the auto heuristic)
    probes_seen: int = 0
    #: upper bound of actually-evicted history: retention growth past this
    #: horizon would silently join against dropped state (see
    #: :class:`~repro.engine.rewiring.WindowGrowthError`)
    evicted_through: float = float("-inf")
    #: per-task copies of the auto-selection thresholds; the runtime threads
    #: :class:`~repro.engine.runtime.RuntimeConfig` knobs here so deployments
    #: tune the heuristic without monkeypatching the module constants
    auto_width_threshold: int = AUTO_WIDTH_THRESHOLD
    auto_probe_threshold: int = AUTO_PROBE_THRESHOLD

    @property
    def effective_backend(self) -> str:
        """The concrete backend new containers use (``"auto"`` resolved)."""
        if self.resolved_backend is not None:
            return self.resolved_backend
        return "python" if self.backend == "auto" else self.backend

    def preferred_backend(self) -> str:
        """Statistics-driven choice for ``backend="auto"`` tasks: columnar
        once live state is wide *and* the store is actually probed."""
        if (
            self.stored_tuples() >= self.auto_width_threshold
            and self.probes_seen >= self.auto_probe_threshold
        ):
            return "columnar"
        return "python"

    def switch_backend(self, name: str) -> bool:
        """Resolve the task to backend ``name``, migrating live state.

        Every epoch container is rebuilt under the new backend (tuples
        re-inserted in deterministic iteration order).  Returns ``True``
        iff a migration actually happened.
        """
        changed = name != self.effective_backend
        self.resolved_backend = name
        if changed:
            width = self._bucket_width()
            for epoch, old in list(self.containers.items()):
                fresh = make_backend(name, width)
                for tup in old.iter_tuples():
                    fresh.insert(tup)
                self.containers[epoch] = fresh
        return changed

    def _bucket_width(self) -> Optional[float]:
        if isinf(self.retention) or self.retention <= 0:
            return None
        return self.retention / BUCKETS_PER_WINDOW

    def container(self, epoch: int) -> StoreBackend:
        cont = self.containers.get(epoch)
        if cont is None:
            cont = make_backend(self.effective_backend, self._bucket_width())
            self.containers[epoch] = cont
        return cont

    def insert(self, epoch: int, tup: StreamTuple) -> None:
        self.container(epoch).insert(tup)

    def evict(self, now: float) -> int:
        """Window-based eviction across all epoch containers.

        ``now`` is the eviction reference instant: the current event time
        under ordered arrivals, or the runtime's global *watermark* under
        bounded out-of-order arrivals.  In both cases every future probe
        carries event timestamps ≥ ``now``, so tuples whose latest component
        is older than ``now - retention`` can never pass another pairwise
        window check and are safe to drop.
        """
        if self.retention == float("inf"):
            return 0
        horizon = now - self.retention
        freed = 0
        for cont in self.containers.values():
            freed += cont.evict_older_than(horizon)
        if freed and horizon > self.evicted_through:
            # record history as lost only when tuples were actually dropped
            self.evicted_through = horizon
        return freed

    def drop_epochs_before(self, epoch: int) -> int:
        """Bulk-drop whole epoch containers (epoch-aligned state release)."""
        freed = 0
        for key in [e for e in self.containers if e < epoch]:
            freed += sum(t.width for t in self.containers[key].iter_tuples())
            del self.containers[key]
        return freed

    def stored_tuples(self) -> int:
        return sum(len(c) for c in self.containers.values())

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def dump_state(self) -> Dict[str, Any]:
        """Snapshot of the task: configuration plus per-epoch containers."""
        return {
            "store_id": self.store_id,
            "task_index": self.task_index,
            "retention": self.retention,
            "next_free": self.next_free,
            "backend": self.backend,
            "resolved_backend": self.resolved_backend,
            "probes_seen": self.probes_seen,
            "evicted_through": self.evicted_through,
            "auto_width_threshold": self.auto_width_threshold,
            "auto_probe_threshold": self.auto_probe_threshold,
            "containers": {
                epoch: cont.dump_state()
                for epoch, cont in self.containers.items()
            },
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "StoreTask":
        """Rebuild a task from :meth:`dump_state` output (exact restore).

        ``probes_seen``/``resolved_backend`` survive, so the
        ``store_backend="auto"`` heuristic resumes mid-decision, and
        ``evicted_through`` survives, so window-growth safety checks keep
        their history after a restore.
        """
        task = cls(
            store_id=state["store_id"],
            task_index=int(state["task_index"]),
            retention=state["retention"],
            next_free=state["next_free"],
            backend=state["backend"],
            resolved_backend=state["resolved_backend"],
            probes_seen=int(state["probes_seen"]),
            evicted_through=state["evicted_through"],
            auto_width_threshold=int(state["auto_width_threshold"]),
            auto_probe_threshold=int(state["auto_probe_threshold"]),
        )
        task.containers = {
            int(epoch): load_container(cont_state)
            for epoch, cont_state in state["containers"].items()
        }
        return task


def orient_predicates(
    predicates: Tuple[JoinPredicate, ...], probe_lineage: Iterable[str]
) -> Tuple[Tuple[str, str], ...]:
    """Pre-orient predicates as ``(probe-side attr, stored-side attr)`` pairs.

    Orientation depends only on which relations the probing tuple carries,
    which is fixed per topology edge — callers cache the result instead of
    re-deriving it per stored candidate (as the seed's ``_orient`` did).
    """
    lineage = set(probe_lineage)
    oriented = []
    for pred in predicates:
        if pred.left.relation in lineage:
            pair = (str(pred.left), str(pred.right))
        else:
            pair = (str(pred.right), str(pred.left))
        # interned names make the per-candidate values.get() lookups hit
        # the pointer-equality fast path of tuples built by input_tuple
        oriented.append((intern_attr(pair[0]), intern_attr(pair[1])))
    return tuple(oriented)


def probe_batch(
    container: StoreBackend,
    probes: Sequence[StreamTuple],
    oriented: Tuple[Tuple[str, str], ...],
    windows: Dict[str, float],
    uniform_window: Optional[float] = None,
    seq_visibility: bool = False,
) -> Tuple[List[StreamTuple], int]:
    """Find join partners for a batch of same-lineage probe tuples.

    The hash-index resolution, predicate orientation, and window-mode
    dispatch are amortized over the batch; returns ``(merged results in
    probe order, candidates checked)``.  Matches the local probe handling
    of Algorithm 3.

    Backends that implement their own ``probe_batch`` (the columnar
    backend's vectorized path) are dispatched to directly — same
    semantics, different candidate-filtering machinery.

    ``seq_visibility`` selects the arrival-visibility rule.  The default
    (event-time) rule assumes timestamp order doubles as arrival order and
    admits partners with ``latest_ts`` strictly before the probe's trigger.
    Under bounded out-of-order arrival that assumption breaks — a stored
    partner may carry a *later* event timestamp yet have arrived earlier —
    so watermark mode decides visibility by the runtime-assigned arrival
    sequence number instead: partners must have ``seq`` strictly below the
    probe's.  Each result combination is still produced exactly once (by
    the cascade of its last-arriving component); windows remain event-time
    based in both modes.
    """
    vectorized = getattr(container, "probe_batch", None)
    if vectorized is not None:
        return vectorized(probes, oriented, windows, uniform_window, seq_visibility)
    results: List[StreamTuple] = []
    checked = 0
    if not probes or not len(container):
        # nothing to probe (or against): in particular an empty store must
        # not build a hash index it cannot use — a zero-survivor upstream
        # hop would otherwise inflate ``index_rebuilds`` on untouched stores
        return results, checked
    if not oriented:
        candidates = container.tuples
        for probe in probes:
            trigger_ts = probe.trigger_ts
            probe_seq = probe.seq
            for stored in candidates:
                checked += 1
                if seq_visibility:
                    if stored.seq >= probe_seq:
                        continue
                elif stored.latest_ts >= trigger_ts:
                    continue
                if uniform_window is not None:
                    if not probe.within_uniform_window(stored, uniform_window):
                        continue
                elif not probe.within_windows(stored, windows):
                    continue
                results.append(probe.merge(stored))
        return results, checked

    first_probe_attr, first_stored_attr = oriented[0]
    index = container.index_on(first_stored_attr)
    rest = oriented[1:]
    for probe in probes:
        candidates = index.get(probe.values.get(first_probe_attr))
        if not candidates:
            continue
        trigger_ts = probe.trigger_ts
        probe_seq = probe.seq
        probe_values = probe.values
        for stored in candidates:
            checked += 1
            if seq_visibility:
                if stored.seq >= probe_seq:
                    continue
            elif stored.latest_ts >= trigger_ts:
                continue
            if rest:
                stored_values = stored.values
                if any(
                    probe_values.get(pa) != stored_values.get(sa)
                    for pa, sa in rest
                ):
                    continue
            if uniform_window is not None:
                if not probe.within_uniform_window(stored, uniform_window):
                    continue
            elif not probe.within_windows(stored, windows):
                continue
            results.append(probe.merge(stored))
    return results, checked


def probe_container(
    container: StoreBackend,
    probe: StreamTuple,
    predicates: Tuple[JoinPredicate, ...],
    windows: Dict[str, float],
    count_comparisons: Optional[Callable[[int], None]] = None,
    seq_visibility: bool = False,
) -> List[StreamTuple]:
    """Find all join partners of ``probe`` in ``container``.

    Single-tuple convenience wrapper over :func:`probe_batch` (kept for the
    public API and tests; the runtime drives the batch path directly).
    Pass ``seq_visibility=True`` when probing state built by a
    watermark-mode runtime, so visibility follows arrival sequence numbers
    the way the runtime's own probe path does.
    """
    oriented = orient_predicates(predicates, probe.lineage)
    results, checked = probe_batch(
        container, (probe,), oriented, windows, seq_visibility=seq_visibility
    )
    if count_comparisons is not None:
        count_comparisons(checked)
    return results
