"""Partitioned, windowed, indexed relation stores.

Each :class:`StoreTask` simulates one worker task of a store (one partition).
It keeps per-epoch containers (Algorithm 4: "for each epoch, an independent
container is created on each worker together with all aforementioned
indexes"), hash indexes per accessed attribute ("For each distinct attribute
access in a store, indices are created locally"), and evicts tuples that
fell out of the retention window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.predicates import JoinPredicate
from .tuples import StreamTuple

__all__ = ["Container", "StoreTask", "probe_container"]


class Container:
    """Tuple container with lazy per-attribute hash indexes."""

    __slots__ = ("tuples", "indexes")

    def __init__(self) -> None:
        self.tuples: List[StreamTuple] = []
        self.indexes: Dict[str, Dict[object, List[StreamTuple]]] = {}

    def __len__(self) -> int:
        return len(self.tuples)

    def insert(self, tup: StreamTuple) -> None:
        self.tuples.append(tup)
        for attr, index in self.indexes.items():
            index.setdefault(tup.get(attr), []).append(tup)

    def index_on(self, attr: str) -> Dict[object, List[StreamTuple]]:
        """Create (on first use) and return the hash index for ``attr``."""
        index = self.indexes.get(attr)
        if index is None:
            index = {}
            for tup in self.tuples:
                index.setdefault(tup.get(attr), []).append(tup)
            self.indexes[attr] = index
        return index

    def evict_older_than(self, horizon: float) -> int:
        """Drop tuples whose latest component is older than ``horizon``.

        Returns the summed width of evicted tuples (memory accounting).
        """
        if not self.tuples:
            return 0
        keep = [t for t in self.tuples if t.latest_ts >= horizon]
        evicted_width = sum(t.width for t in self.tuples) - sum(
            t.width for t in keep
        )
        if evicted_width:
            self.tuples = keep
            # rebuild the touched indexes lazily next time
            self.indexes = {}
        return evicted_width


@dataclass
class StoreTask:
    """One partition (worker task) of a store."""

    store_id: str
    task_index: int
    retention: float
    containers: Dict[int, Container] = field(default_factory=dict)
    #: timed-mode queueing state: when this server is next idle
    next_free: float = 0.0

    def container(self, epoch: int) -> Container:
        cont = self.containers.get(epoch)
        if cont is None:
            cont = Container()
            self.containers[epoch] = cont
        return cont

    def insert(self, epoch: int, tup: StreamTuple) -> None:
        self.container(epoch).insert(tup)

    def evict(self, now: float) -> int:
        """Window-based eviction across all epoch containers."""
        if self.retention == float("inf"):
            return 0
        freed = 0
        for cont in self.containers.values():
            freed += cont.evict_older_than(now - self.retention)
        return freed

    def drop_epochs_before(self, epoch: int) -> int:
        """Bulk-drop whole epoch containers (epoch-aligned state release)."""
        freed = 0
        for key in [e for e in self.containers if e < epoch]:
            freed += sum(t.width for t in self.containers[key].tuples)
            del self.containers[key]
        return freed

    def stored_tuples(self) -> int:
        return sum(len(c) for c in self.containers.values())


def probe_container(
    container: Container,
    probe: StreamTuple,
    predicates: Tuple[JoinPredicate, ...],
    windows: Dict[str, float],
    count_comparisons: Optional[Callable[[int], None]] = None,
) -> List[StreamTuple]:
    """Find all join partners of ``probe`` in ``container``.

    Uses the hash index of the first predicate, then filters the remaining
    predicates, the strict arrived-before-trigger order, and the pairwise
    window conditions.  Matches the local probe handling of Algorithm 3.
    """
    if not predicates:
        candidates: Iterable[StreamTuple] = container.tuples
    else:
        first = predicates[0]
        probe_attr, stored_attr = _orient(first, probe)
        index = container.index_on(stored_attr)
        candidates = index.get(probe.get(probe_attr), [])

    results: List[StreamTuple] = []
    checked = 0
    for stored in candidates:
        checked += 1
        if not stored.arrived_before(probe.trigger_ts):
            continue
        if not _satisfies(probe, stored, predicates):
            continue
        if not probe.within_windows(stored, windows):
            continue
        results.append(probe.merge(stored))
    if count_comparisons is not None:
        count_comparisons(checked)
    return results


def _orient(pred: JoinPredicate, probe: StreamTuple) -> Tuple[str, str]:
    """Return (probe-side attr, stored-side attr) for a predicate."""
    left_rel = pred.left.relation
    if left_rel in probe.timestamps:
        return str(pred.left), str(pred.right)
    return str(pred.right), str(pred.left)


def _satisfies(
    probe: StreamTuple,
    stored: StreamTuple,
    predicates: Tuple[JoinPredicate, ...],
) -> bool:
    for pred in predicates:
        probe_attr, stored_attr = _orient(pred, probe)
        if probe.get(probe_attr) != stored.get(stored_attr):
            return False
    return True
