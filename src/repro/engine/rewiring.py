"""Live topology rewiring with state migration (Section VI.B).

:class:`RewirableRuntime` is a :class:`~repro.engine.runtime.TopologyRuntime`
whose deployed topology can be *replaced while tuples are flowing*:
:meth:`RewirableRuntime.install` diffs the old and new topologies
(:func:`repro.core.adaptive.diff_topologies`) and

* creates tasks for added stores, *backfilling* freshly introduced MIR
  stores from the windowed input stores they derive from (the atomic-switch
  equivalent of the paper's transition scheme, where old join partners keep
  being probed iteratively while the new store fills up — Figure 8b),
* keeps surviving stores' containers in place — shared state is preserved,
  never rebuilt (``EngineMetrics.preserved_tuples`` counts it) — updating
  their retention when the query mix changed it,
* *repartitions* survivors whose partitioning attribute or task count
  changed (tuples were placed by the old hash function and would be
  invisible to newly routed probes),
* releases the state of removed stores while keeping their tasks resolvable
  for in-flight messages (timed mode),
* archives edges/rules/specs so messages already routed under a retired
  topology still find their behaviour.

Two subsystems drive installs: the epoch-based :class:`~repro.engine.epochs.AdaptiveRuntime`
(statistics-triggered plan switches) and the session facade
(:class:`repro.JoinSession`), whose online ``add_query`` / ``remove_query``
replan between pushed tuples.  Watermark mode composes with rewiring: the
arrival-sequence counter and per-stream high waters live on the runtime and
survive the switch, and backfilled intermediates carry the max-merged
arrival sequence of their components, so seq-based probe visibility stays
exact across a rewire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.adaptive import TopologyDiff, diff_topologies
from ..core.probe_order import maintenance_query
from ..core.topology import EdgeSpec, Rule, StoreSpec, Topology
from .reference import reference_join
from .routing import stable_hash
from .runtime import RuntimeConfig, TopologyRuntime
from .stores import StoreTask
from .tuples import StreamTuple

__all__ = [
    "RewirableRuntime",
    "SwitchRecord",
    "WindowGrowthError",
    "compute_backfill",
]


class WindowGrowthError(ValueError):
    """A rewire widened a store's retention past already-evicted history.

    Retention only ever *grows* across installs (shrink requests keep the
    incumbent horizon as slack — surplus tuples fail the window checks, so
    results stay exact and the wider history is still there if the window
    widens again).  Growth is honest too: if nothing was evicted beyond the
    new horizon yet, the store still holds every tuple the wider window can
    reach and the install proceeds.  Only when history the new window needs
    is *already gone* — the store's eviction high-water mark lies above the
    new horizon — would the runtime silently under-report joins against the
    missing interval; this error rejects that install loudly instead.

    Unreachable through :class:`repro.JoinSession` (per-relation windows are
    frozen at session construction, so every replanned store re-declares the
    same retention); bare :meth:`RewirableRuntime.install` callers that grow
    windows mid-stream must either install the widest window before evicting
    or handle this error.
    """


def compute_backfill(
    spec: StoreSpec,
    streams: Dict[str, List[StreamTuple]],
    windows: Dict[str, float],
) -> List[StreamTuple]:
    """Windowed contents of a freshly introduced MIR store.

    ``streams`` maps each of the MIR's input relations to its *live* stored
    tuples (sorted by event time).  The intermediates carry the max-merged
    arrival sequence of their components, keeping seq-based probe visibility
    exact under watermark mode.  Shared by :meth:`RewirableRuntime.install`
    and the sharded driver's cross-shard re-shard path (which rebuilds new
    MIR stores centrally from the merged shard dumps).
    """
    sub_query = maintenance_query(spec.mir)
    return reference_join(sub_query, streams, windows)


@dataclass
class SwitchRecord:
    """One installed reconfiguration (for tests and experiment plots)."""

    epoch: int
    time: float
    added_stores: Tuple[str, ...]
    removed_stores: Tuple[str, ...]


class RewirableRuntime(TopologyRuntime):
    """A runtime whose topology can be atomically replaced mid-stream."""

    def __init__(
        self,
        topology: Topology,
        windows: Dict[str, float],
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        super().__init__(topology, windows, config)
        self.switches: List[SwitchRecord] = []
        self._edge_archive: Dict[str, EdgeSpec] = dict(topology.edges)
        self._rule_archive: Dict[Tuple[str, str], List[Rule]] = {}
        self._store_archive: Dict[str, StoreSpec] = dict(topology.stores)
        self._archive_rules(topology)

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def dump_state(self) -> Dict[str, Any]:
        """Runtime snapshot plus the rewire history (checkpoint support).

        Archives are *not* persisted: a restored runtime is constructed
        from the snapshot's installed topology, so its archives already
        describe every live edge/rule/store, and in-flight messages (the
        only consumers of stale archive entries, timed mode) cannot exist
        across a logical-mode snapshot boundary.
        """
        state = super().dump_state()
        state["switches"] = list(self.switches)
        return state

    def load_state(self, state: Dict[str, Any]) -> None:
        super().load_state(state)
        self.switches = list(state.get("switches", []))

    # ------------------------------------------------------------------
    # reconfiguration
    # ------------------------------------------------------------------
    def install(
        self,
        topology: Topology,
        now: float,
        epoch: int = 0,
        windows: Optional[Dict[str, float]] = None,
    ) -> SwitchRecord:
        """Replace the deployed topology, migrating live store state.

        ``now`` is the switch instant (event time) recorded on the
        :class:`SwitchRecord`; ``windows`` extends/updates the per-relation
        window map when the new plan covers relations the old one did not.
        Deferred micro-batch cascades are flushed against the *old* plan
        first, so the switch falls exactly between two pushed tuples.
        """
        self.flush()
        diff = diff_topologies(self.topology, topology)
        # Reject widening installs that would join against evicted history
        # *before* any state is mutated (windows map and per-stream high
        # waters included), so a failed install leaves the runtime exactly
        # on its old plan.
        self._check_window_growth(diff, topology, now)
        if windows:
            self.windows.update(windows)
        # Watermark mode: an ingest stream the *old* topology did not read
        # — brand new, or released and now re-added — has no (or a stale)
        # high water, which would pin the global watermark at -inf (or at
        # its pre-removal past), suspending eviction everywhere and
        # accepting stragglers whose join partners are long evicted.  Its
        # floor is the current watermark: no stored state below it exists,
        # so a first/returning push must carry an event timestamp >= the
        # watermark anyway.  Streams the old watermark already covered
        # satisfy high >= mark + bound, so the max() is a no-op for them.
        if self._seq_visibility:
            mark = self.watermark()
            if mark != float("-inf"):
                bound = self.config.disorder_bound or 0.0
                for relation in topology.ingest:
                    self._stream_high[relation] = max(
                        self._stream_high.get(relation, float("-inf")),
                        mark + bound,
                    )
        for store_id in diff.added:
            spec = topology.stores[store_id]
            self.tasks[store_id] = [
                self._new_store_task(store_id, i, spec.retention)
                for i in range(spec.parallelism)
            ]

        # Stores surviving the switch under a different partitioning scheme
        # (or task count) must migrate their state: tuples were placed by the
        # old hash function and would be invisible to newly routed probes.
        for store_id in diff.repartitioned:
            self._repartition(topology.stores[store_id])

        # Surviving stores keep their containers; the retention horizon only
        # ever grows (checked above against evicted history).  A narrower
        # declared window keeps the incumbent horizon as *slack*: surplus
        # tuples fail the window checks anyway, so results stay exact and a
        # later re-widening still finds its history.
        preserved = 0
        for store_id in diff.surviving:
            spec = topology.stores[store_id]
            for task in self.tasks.get(store_id, []):
                preserved += task.stored_tuples()
                if spec.retention > task.retention:
                    task.retention = spec.retention

        self.topology = topology
        self._install_stores(topology)
        # the relation set (and thus window uniformity) may have changed
        self._uniform_window = self._compute_uniform_window()
        # In logical mode no message can be in flight outside a cascade and
        # install() flushed first, so retired edges/rules/specs are
        # unreachable: rebuild the archives from the live topology instead
        # of accumulating every retired entry across a session's churn.
        # Timed mode keeps the cumulative archives for in-flight messages.
        logical = self.config.mode == "logical"
        if logical:
            self._edge_archive = dict(topology.edges)
            self._store_archive = dict(topology.stores)
            self._rule_archive = {}
            self._oriented_cache.clear()
        else:
            self._edge_archive.update(topology.edges)
            self._store_archive.update(topology.stores)
        self._archive_rules(topology)

        for store_id in diff.added:
            spec = topology.stores[store_id]
            if not spec.mir.is_input:
                self._backfill(spec, now)

        # Reference counting: stores no longer serving any query release
        # their state; in timed mode the emptied tasks stay resolvable for
        # in-flight messages, in logical mode they are dropped outright.
        for store_id in diff.removed:
            for task in self.tasks.get(store_id, []):
                freed = sum(
                    sum(t.width for t in cont.iter_tuples())
                    for cont in task.containers.values()
                )
                if freed:
                    self.metrics.on_evict(freed)
                task.containers.clear()
            if logical:
                self.tasks.pop(store_id, None)

        # Hybrid backend selection: with ``store_backend="auto"`` every task
        # re-picks its container implementation from the statistics observed
        # so far (live width, probe traffic); installs are the only switch
        # points, so a cascade never changes backend mid-batch.
        if self.config.store_backend == "auto":
            self._reselect_backends()
        self._publish_backend_choices()

        self.metrics.on_rewire(preserved)
        record = SwitchRecord(
            epoch=epoch,
            time=now,
            added_stores=diff.added,
            removed_stores=diff.removed,
        )
        self.switches.append(record)
        return record

    def _check_window_growth(
        self, diff: TopologyDiff, topology: Topology, now: float
    ) -> None:
        """Raise :class:`WindowGrowthError` if a surviving store's declared
        retention grew past history its tasks have already evicted.

        The reference instant for "history the wider window can still
        reach" is the earliest event time a future probe may carry: ``now``
        under ordered arrivals, the global watermark under bounded
        disorder (a straggler's trigger may lag ``now`` by up to the
        bound; every recorded eviction horizon lay at or below the
        watermark at the time, so the comparison is exact).
        """
        reference = self.watermark() if self._seq_visibility else now
        for store_id in diff.surviving:
            spec = topology.stores[store_id]
            for task in self.tasks.get(store_id, []):
                if (
                    spec.retention > task.retention
                    and task.evicted_through > reference - spec.retention
                ):
                    raise WindowGrowthError(
                        f"store {store_id!r} widens retention "
                        f"{task.retention:g} -> {spec.retention:g} at "
                        f"t={now:g}, but history through "
                        f"τ={task.evicted_through:g} is already evicted "
                        f"(new window needs τ >= {reference - spec.retention:g}); "
                        "results over the missing interval would be silently "
                        "incomplete — install the widest window before "
                        "eviction runs, or declare it upfront"
                    )

    def _repartition(self, spec: StoreSpec) -> None:
        """Redistribute a store's state under a new partitioning scheme.

        This is the only rewire path that *materializes* columnar state back
        into rows: tuples were placed by the old hash function, so they must
        be re-routed individually.  Surviving stores whose partitioning is
        unchanged keep their container objects — columnar arrays migrate
        across installs without any row conversion.  The fresh tasks inherit
        the observed statistics (probe traffic, resolved auto backend,
        eviction high-water) and the incumbent retention slack.
        """
        old_tasks = self.tasks.get(spec.store_id, [])
        tuples: List[StreamTuple] = []
        retention = spec.retention
        evicted_through = float("-inf")
        probes_seen = 0
        resolved = None
        for task in old_tasks:
            for container in task.containers.values():
                tuples.extend(container.iter_tuples())
            retention = max(retention, task.retention)
            evicted_through = max(evicted_through, task.evicted_through)
            probes_seen = max(probes_seen, task.probes_seen)
            if resolved is None:
                resolved = task.resolved_backend
        self.tasks[spec.store_id] = [
            StoreTask(
                store_id=spec.store_id,
                task_index=i,
                retention=retention,
                backend=self.config.store_backend,
                resolved_backend=resolved,
                probes_seen=probes_seen,
                evicted_through=evicted_through,
                auto_width_threshold=self.config.auto_width_threshold,
                auto_probe_threshold=self.config.auto_probe_threshold,
            )
            for i in range(spec.parallelism)
        ]
        for tup in tuples:
            self.tasks[spec.store_id][self._task_for(spec, tup)].insert(
                self._epoch, tup
            )
        self.metrics.migrated_tuples += len(tuples)

    def _reselect_backends(self) -> None:
        """Re-pick every auto task's backend from its observed statistics.

        A flip migrates the task's live containers to the other
        implementation and counts in ``metrics.backend_switches``
        (deliberately not ``migrated_tuples``, which stays invariant
        between fixed and auto configurations).
        """
        for tasks in self.tasks.values():
            for task in tasks:
                if task.backend != "auto":
                    continue
                if task.switch_backend(task.preferred_backend()):
                    self.metrics.backend_switches += 1

    def _task_for(self, spec: StoreSpec, tup: StreamTuple) -> int:
        if spec.parallelism <= 1:
            return 0
        if spec.partition_attr is not None:
            value = tup.get(spec.partition_attr)
            if value is not None:
                return stable_hash(value) % spec.parallelism
        return stable_hash(tup.key()) % spec.parallelism

    def _backfill(self, spec: StoreSpec, now: float) -> None:
        """Seed a new MIR store from the windowed input stores.

        The paper instead keeps supplementary probe orders alive for one
        window; backfilling is the atomic-switch equivalent with identical
        result sets (see :mod:`repro.engine.epochs`).  The intermediates
        carry the max-merged arrival sequence of their components, keeping
        seq-based probe visibility exact under watermark mode.
        """
        streams: Dict[str, List[StreamTuple]] = {}
        for relation in spec.mir.relations:
            live: List[StreamTuple] = []
            for task in self.tasks.get(relation, []):
                for container in task.containers.values():
                    live.extend(container.iter_tuples())
            streams[relation] = sorted(live, key=lambda t: t.latest_ts)
        intermediates = compute_backfill(spec, streams, self.windows)
        for tup in intermediates:
            self.tasks[spec.store_id][self._task_for(spec, tup)].insert(
                self._epoch, tup
            )
            self.metrics.on_store(tup.width)
        self.metrics.backfilled_tuples += len(intermediates)

    # ------------------------------------------------------------------
    # archived lookups (in-flight messages survive switches in timed mode)
    # ------------------------------------------------------------------
    def _archive_rules(self, topology: Topology) -> None:
        for store_id, ruleset in topology.rulesets.items():
            for label, rules in ruleset.items():
                self._rule_archive[(store_id, label)] = rules

    def edge_spec(self, label: str) -> EdgeSpec:
        edge = self.topology.edges.get(label)
        return edge if edge is not None else self._edge_archive[label]

    def rules_for(self, store_id: str, label: str) -> List[Rule]:
        rules = self.topology.rulesets.get(store_id, {}).get(label)
        if rules is not None:
            return rules
        return self._rule_archive.get((store_id, label), [])

    def _store_spec(self, store_id: str) -> StoreSpec:
        spec = self.topology.stores.get(store_id)
        return spec if spec is not None else self._store_archive[store_id]
