"""Execution metrics collected by the simulated engine.

The paper's headline measurements map to:

* ``tuples_sent`` — the probe cost, the very objective the ILP minimizes
  (Section III: "We call the number of tuples sent the probe cost").
* ``throughput`` — processed input tuples / makespan (Section VII.A).
* ``latencies`` — per result, completion time − trigger arrival time.
* ``peak_stored_units`` — peak Σ (stored tuples × width), the memory proxy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.adaptive import DecisionRecord

__all__ = ["EngineMetrics"]


@dataclass
class EngineMetrics:
    """Counter bundle; one instance per engine run."""

    inputs_ingested: int = 0
    messages_sent: int = 0
    tuples_sent: int = 0
    probes_executed: int = 0
    comparisons: int = 0
    results_emitted: int = 0
    results_per_query: Dict[str, int] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)
    latency_samples: List[Tuple[float, float]] = field(
        default_factory=list
    )  # (time, latency)
    stored_units: float = 0.0
    peak_stored_units: float = 0.0
    migrated_tuples: int = 0
    #: topology rewires installed on a live runtime (adaptive epoch switches
    #: and session add/remove_query replans)
    rewires: int = 0
    #: stored tuples sitting in *surviving* stores at rewire instants — the
    #: state a naive restart would have rebuilt; > 0 proves live migration
    preserved_tuples: int = 0
    #: intermediate tuples seeded into freshly introduced MIR stores
    backfilled_tuples: int = 0
    #: stragglers discarded by the session's ``on_late="drop"`` policy
    #: (never counted in ``inputs_ingested`` — they were not processed)
    late_dropped: int = 0
    #: stragglers beyond ``disorder_bound + allowed_lateness`` routed to the
    #: session's subscribable dead-letter side-output instead of being
    #: dropped or raising (``on_late="dead_letter"``)
    dead_lettered: int = 0
    #: stragglers that arrived later than the declared ``disorder_bound``
    #: but inside the ``allowed_lateness`` grace and were still joined
    #: (the eviction watermark is held back by the grace to keep their
    #: partners alive)
    late_admitted: int = 0
    #: PAUSE signals the service ingress emitted to its clients because the
    #: bounded ingress queue crossed its high watermark
    backpressure_events: int = 0
    #: deepest bounded-ingress-queue depth the service front ever observed
    #: (never exceeds the configured queue depth — backpressure is real)
    ingress_queue_high_water: int = 0
    #: live stored tuples reloaded into store containers by a
    #: checkpoint restore (0 on uninterrupted runs)
    restored_tuples: int = 0
    #: concrete container backend per store task, tallied by name — with
    #: ``store_backend="auto"`` this surfaces the per-task decisions, fixed
    #: configurations tally to a single entry (refreshed at every install)
    store_backends: Dict[str, int] = field(default_factory=dict)
    #: auto-selection flips that migrated a live task to the other backend
    #: (deliberately separate from ``migrated_tuples``, which counts
    #: repartitioning moves and is backend-invariant)
    backend_switches: int = 0
    #: every optimizer consultation routed through the adaptivity loop —
    #: epoch boundaries, query churn, and explicit ``reoptimize()`` alike
    #: (:class:`~repro.core.adaptive.DecisionRecord` instances)
    decisions: List["DecisionRecord"] = field(default_factory=list)
    first_arrival: Optional[float] = None
    last_completion: float = 0.0
    failed: bool = False
    failure_reason: str = ""

    # ------------------------------------------------------------------
    def on_input(self, arrival_ts: float) -> None:
        self.inputs_ingested += 1
        if self.first_arrival is None or arrival_ts < self.first_arrival:
            self.first_arrival = arrival_ts
        self.last_completion = max(self.last_completion, arrival_ts)

    def on_send(self, fanout: int) -> None:
        """A tuple shipped to ``fanout`` tasks (broadcast counts χ times)."""
        self.messages_sent += fanout
        self.tuples_sent += fanout

    def on_store(self, width: int) -> None:
        self.stored_units += width
        self.peak_stored_units = max(self.peak_stored_units, self.stored_units)

    def on_evict(self, width: int) -> None:
        self.stored_units -= width

    def on_probe(self, candidates_checked: int) -> None:
        self.probes_executed += 1
        self.comparisons += candidates_checked

    def on_probe_batch(self, probes: int, candidates_checked: int) -> None:
        """Batched bookkeeping: ``probes`` probes scanned ``candidates_checked``
        candidates in total (one call per rule application per batch)."""
        self.probes_executed += probes
        self.comparisons += candidates_checked

    def on_result(self, query: str, completion_ts: float, trigger_ts: float) -> None:
        self.results_emitted += 1
        self.results_per_query[query] = self.results_per_query.get(query, 0) + 1
        latency = completion_ts - trigger_ts
        self.latencies.append(latency)
        self.latency_samples.append((completion_ts, latency))
        self.last_completion = max(self.last_completion, completion_ts)

    def on_decision(self, record: "DecisionRecord") -> None:
        """The adaptivity loop consulted the optimizer (changed or not)."""
        self.decisions.append(record)

    def on_rewire(self, preserved_tuples: int) -> None:
        """A topology switch on a live runtime kept ``preserved_tuples``
        stored tuples in place across surviving stores."""
        self.rewires += 1
        self.preserved_tuples += preserved_tuples

    def on_late_drop(self, count: int = 1) -> None:
        """``count`` stragglers were discarded by the ``on_late="drop"``
        policy (a batch > 1 only when a session folds in tuples dropped
        while warming up, before this metrics object existed).

        The session's validation boundary calls this instead of writing
        the counter directly: counter mutation stays engine-internal
        (enforced by the MET001 analyzer rule).
        """
        self.late_dropped += count

    def on_dead_letter(self, count: int = 1) -> None:
        """``count`` stragglers were routed to the dead-letter side-output
        (``on_late="dead_letter"``; a batch > 1 only when a session folds
        in tuples dead-lettered during warmup).  Like :meth:`on_late_drop`,
        this is the session's MET001-clean mutation path."""
        self.dead_lettered += count

    def on_late_admit(self, count: int = 1) -> None:
        """``count`` stragglers exceeded the declared ``disorder_bound``
        but fell inside the ``allowed_lateness`` grace and were joined."""
        self.late_admitted += count

    def on_backpressure(self) -> None:
        """The service ingress paused its clients (queue high watermark)."""
        self.backpressure_events += 1

    def on_ingress_depth(self, depth: int) -> None:
        """Track the deepest observed bounded-ingress-queue depth."""
        if depth > self.ingress_queue_high_water:
            self.ingress_queue_high_water = depth

    def on_restore(self, tuples: int) -> None:
        """A checkpoint restore reloaded ``tuples`` live stored tuples."""
        self.restored_tuples += tuples

    def on_failure(self, reason: str) -> None:
        self.failed = True
        self.failure_reason = reason

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        if self.first_arrival is None:
            return 0.0
        return max(self.last_completion - self.first_arrival, 0.0)

    @property
    def throughput(self) -> float:
        """Input tuples per simulated second."""
        span = self.makespan
        return self.inputs_ingested / span if span > 0 else 0.0

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    @property
    def p95_latency(self) -> float:
        return float(np.percentile(self.latencies, 95)) if self.latencies else 0.0

    def latency_timeline(self, bucket: float) -> List[Tuple[float, float]]:
        """(bucket_start, mean latency) series for Fig. 8-style plots."""
        if not self.latency_samples:
            return []
        buckets: Dict[int, List[float]] = {}
        for ts, latency in self.latency_samples:
            buckets.setdefault(int(ts // bucket), []).append(latency)
        return [
            (idx * bucket, float(np.mean(vals)))
            for idx, vals in sorted(buckets.items())
        ]

    def summary(self) -> Dict[str, float]:
        return {
            "inputs": float(self.inputs_ingested),
            "tuples_sent": float(self.tuples_sent),
            "results": float(self.results_emitted),
            "throughput": self.throughput,
            "mean_latency": self.mean_latency,
            "peak_stored_units": self.peak_stored_units,
            "failed": float(self.failed),
        }
