"""Epoch-based adaptive execution (Section VI, Figure 5).

The :class:`AdaptiveRuntime` divides time into fixed-length epochs:

* statistics are gathered while an epoch runs,
* at the first tuple of epoch *i+1* the statistics of epoch *i* are folded
  into the catalog and handed to the :class:`~repro.core.adaptive.AdaptiveController`,
* a changed plan is installed at the start of epoch *i+2* (ruleset
  propagation delay of Figure 5).

Reconfiguration is atomic between input tuples, which is where this
simulation simplifies the paper: real Storm workers switch rulesets per
epoch with per-epoch state containers, while here a switch happens at a
single simulated instant.  Consequently a freshly introduced MIR store is
*backfilled* from the (windowed) input stores it derives from — the
simulation-equivalent of the paper's transition scheme where old join
partners keep being probed iteratively while the new store fills up
(Section VI.B / Figure 8b).  DESIGN.md discusses the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.adaptive import AdaptiveController
from ..core.partitioning import ClusterConfig
from ..core.probe_order import maintenance_query
from ..core.topology import EdgeSpec, Rule, StoreSpec, Topology
from .reference import reference_join
from .routing import stable_hash
from .runtime import RuntimeConfig, TopologyRuntime
from .statistics import EpochStatistics
from .stores import StoreTask
from .tuples import StreamTuple

__all__ = ["AdaptiveRuntime", "SwitchRecord"]


@dataclass
class SwitchRecord:
    """One installed reconfiguration (for tests and experiment plots)."""

    epoch: int
    time: float
    added_stores: Tuple[str, ...]
    removed_stores: Tuple[str, ...]


class AdaptiveRuntime(TopologyRuntime):
    """A runtime that re-optimizes itself at epoch boundaries."""

    def __init__(
        self,
        controller: AdaptiveController,
        windows: Dict[str, float],
        config: Optional[RuntimeConfig] = None,
        epoch_length: float = 1.0,
        cluster: Optional[ClusterConfig] = None,
        adapt: bool = True,
    ) -> None:
        if config is not None and config.disorder_bound is not None:
            raise ValueError(
                "AdaptiveRuntime requires timestamp-ordered inputs: epoch "
                "boundaries and MIR backfill are driven by event time, so "
                "out-of-order arrivals (disorder_bound) are not supported"
            )
        self.controller = controller
        self.epoch_length = epoch_length
        self.cluster = cluster or controller.config.cluster
        self.adapt = adapt
        topology = controller.initial_topology(self.cluster)
        super().__init__(topology, windows, config)
        self.current_epoch = 0
        self.stats = EpochStatistics(epoch=0)
        self.pending: Dict[int, Topology] = {}
        self.switches: List[SwitchRecord] = []
        self._edge_archive: Dict[str, EdgeSpec] = dict(topology.edges)
        self._rule_archive: Dict[Tuple[str, str], List[Rule]] = {}
        self._store_archive: Dict[str, StoreSpec] = dict(topology.stores)
        self._archive_rules(topology)

    # ------------------------------------------------------------------
    # epoch machinery
    # ------------------------------------------------------------------
    def on_input_boundary(self, now: float) -> None:
        epoch = int(now // self.epoch_length)
        while self.current_epoch < epoch:
            closing = self.current_epoch
            self._close_epoch(closing)
            self.current_epoch += 1
            topology = self.pending.pop(self.current_epoch, None)
            if topology is not None:
                self._switch(topology, self.current_epoch * self.epoch_length)

    def on_ingest(self, tup: StreamTuple) -> None:
        self.stats.observe(tup)

    def _close_epoch(self, epoch: int) -> None:
        stats = self.stats
        self.stats = EpochStatistics(epoch=epoch + 1)
        if not self.adapt:
            return
        measured = stats.fold_into(
            self.controller.base_catalog,
            self.controller.query_list,
            self.epoch_length,
        )
        topology = self.controller.decide(epoch, measured, self.cluster)
        if topology is not None:
            # decided while epoch+1 runs; in effect from epoch+2 (Fig. 5)
            self.pending[epoch + 2] = topology

    # ------------------------------------------------------------------
    # reconfiguration
    # ------------------------------------------------------------------
    def _switch(self, topology: Topology, now: float) -> None:
        old_specs = dict(self.topology.stores)
        old_ids = set(old_specs)
        new_ids = set(topology.stores)

        added = sorted(new_ids - old_ids)
        removed = sorted(old_ids - new_ids)

        for store_id in added:
            spec = topology.stores[store_id]
            self.tasks[store_id] = [
                StoreTask(store_id=store_id, task_index=i, retention=spec.retention)
                for i in range(spec.parallelism)
            ]

        # Stores surviving the switch under a different partitioning scheme
        # (or task count) must migrate their state: tuples were placed by the
        # old hash function and would be invisible to newly routed probes.
        for store_id in sorted(new_ids & old_ids):
            old_spec, new_spec = old_specs[store_id], topology.stores[store_id]
            if (
                old_spec.partition_attr != new_spec.partition_attr
                or old_spec.parallelism != new_spec.parallelism
            ):
                self._repartition(new_spec)

        self.topology = topology
        self._install_stores(topology)
        self._edge_archive.update(topology.edges)
        self._store_archive.update(topology.stores)
        self._archive_rules(topology)

        for store_id in added:
            spec = topology.stores[store_id]
            if not spec.mir.is_input:
                self._backfill(spec, now)

        # Reference counting: stores no longer serving any query release
        # their state (the tasks stay resolvable for in-flight messages).
        for store_id in removed:
            for task in self.tasks.get(store_id, []):
                freed = sum(
                    sum(t.width for t in cont.iter_tuples())
                    for cont in task.containers.values()
                )
                if freed:
                    self.metrics.on_evict(freed)
                task.containers.clear()

        self.switches.append(
            SwitchRecord(
                epoch=self.current_epoch,
                time=now,
                added_stores=tuple(added),
                removed_stores=tuple(removed),
            )
        )

    def _repartition(self, spec: StoreSpec) -> None:
        """Redistribute a store's state under a new partitioning scheme."""
        old_tasks = self.tasks.get(spec.store_id, [])
        tuples: List[StreamTuple] = []
        for task in old_tasks:
            for container in task.containers.values():
                tuples.extend(container.iter_tuples())
        self.tasks[spec.store_id] = [
            StoreTask(store_id=spec.store_id, task_index=i, retention=spec.retention)
            for i in range(spec.parallelism)
        ]
        for tup in tuples:
            self.tasks[spec.store_id][self._task_for(spec, tup)].insert(
                self._epoch, tup
            )
        self.metrics.migrated_tuples += len(tuples)

    def _task_for(self, spec: StoreSpec, tup: StreamTuple) -> int:
        if spec.parallelism <= 1:
            return 0
        if spec.partition_attr is not None:
            value = tup.get(spec.partition_attr)
            if value is not None:
                return stable_hash(value) % spec.parallelism
        return stable_hash(tup.key()) % spec.parallelism

    def _backfill(self, spec: StoreSpec, now: float) -> None:
        """Seed a new MIR store from the windowed input stores.

        The paper instead keeps supplementary probe orders alive for one
        window; backfilling is the atomic-switch equivalent with identical
        result sets (see module docstring).
        """
        streams: Dict[str, List[StreamTuple]] = {}
        for relation in spec.mir.relations:
            live: List[StreamTuple] = []
            for task in self.tasks.get(relation, []):
                for container in task.containers.values():
                    live.extend(container.iter_tuples())
            streams[relation] = sorted(live, key=lambda t: t.latest_ts)
        sub_query = maintenance_query(spec.mir)
        intermediates = reference_join(sub_query, streams, self.windows)
        for tup in intermediates:
            self.tasks[spec.store_id][self._task_for(spec, tup)].insert(
                self._epoch, tup
            )
            self.metrics.on_store(tup.width)

    # ------------------------------------------------------------------
    # archived lookups (in-flight messages survive switches in timed mode)
    # ------------------------------------------------------------------
    def _archive_rules(self, topology: Topology) -> None:
        for store_id, ruleset in topology.rulesets.items():
            for label, rules in ruleset.items():
                self._rule_archive[(store_id, label)] = rules

    def edge_spec(self, label: str) -> EdgeSpec:
        edge = self.topology.edges.get(label)
        return edge if edge is not None else self._edge_archive[label]

    def rules_for(self, store_id: str, label: str):
        rules = self.topology.rulesets.get(store_id, {}).get(label)
        if rules is not None:
            return rules
        return self._rule_archive.get((store_id, label), [])

    def _store_spec(self, store_id: str) -> StoreSpec:
        spec = self.topology.stores.get(store_id)
        return spec if spec is not None else self._store_archive[store_id]
