"""Epoch-based adaptive execution (Section VI, Figure 5).

The :class:`AdaptiveRuntime` divides time into fixed-length epochs:

* statistics are gathered while an epoch runs,
* at the first tuple of epoch *i+1* the statistics of epoch *i* are folded
  into the catalog and handed to the :class:`~repro.core.adaptive.AdaptiveController`,
* a changed plan is installed at the start of epoch *i+2* (ruleset
  propagation delay of Figure 5).

Reconfiguration is atomic between input tuples, which is where this
simulation simplifies the paper: real Storm workers switch rulesets per
epoch with per-epoch state containers, while here a switch happens at a
single simulated instant.  Consequently a freshly introduced MIR store is
*backfilled* from the (windowed) input stores it derives from — the
simulation-equivalent of the paper's transition scheme where old join
partners keep being probed iteratively while the new store fills up
(Section VI.B / Figure 8b).  DESIGN.md discusses the substitution.

The switch mechanics themselves — plan diffing, state migration,
repartitioning, backfill, archived lookups — live in
:class:`~repro.engine.rewiring.RewirableRuntime`, which this runtime shares
with the session facade's online ``add_query``/``remove_query`` path.

Watermark mode composes: with ``disorder_bound`` set, epoch boundaries are
still crossed on (monotone-filtered) event time — a straggler whose event
timestamp lags the current epoch simply cannot cross a boundary, so the
epoch counter never regresses — and the shared ``install()`` path seeds
per-stream high waters across the switch, keeps seq-carrying backfill
intermediates visibility-exact, and evicts against the watermark rather
than the boundary instant.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.adaptive import AdaptiveController
from ..core.partitioning import ClusterConfig
from ..core.topology import Topology
from .adaptivity import AdaptivityLoop
from .rewiring import RewirableRuntime, SwitchRecord
from .runtime import RuntimeConfig
from .statistics import EpochStatistics
from .tuples import StreamTuple

__all__ = ["AdaptiveRuntime", "SwitchRecord"]


class AdaptiveRuntime(RewirableRuntime):
    """A runtime that re-optimizes itself at epoch boundaries.

    Compatibility shim: the epoch machinery itself lives in
    :class:`~repro.engine.adaptivity.AdaptivityLoop`; this class merely
    wires the runtime's ingest/boundary hooks into the loop and exposes
    the loop's state under the historical attribute names.
    """

    def __init__(
        self,
        controller: AdaptiveController,
        windows: Dict[str, float],
        config: Optional[RuntimeConfig] = None,
        epoch_length: float = 1.0,
        cluster: Optional[ClusterConfig] = None,
        adapt: bool = True,
        stats_window: int = 1,
    ) -> None:
        self.loop = AdaptivityLoop(
            controller,
            epoch_length=epoch_length,
            cluster=cluster or controller.config.cluster,
            adapt=adapt,
            stats_window=stats_window,
        )
        topology = controller.initial_topology(self.loop.cluster)
        super().__init__(topology, windows, config)
        self.loop.attach(self)

    # ------------------------------------------------------------------
    # epoch machinery — delegated to the loop
    # ------------------------------------------------------------------
    def on_input_boundary(self, now: float) -> None:
        self.loop.advance(now)

    def on_ingest(self, tup: StreamTuple) -> None:
        self.loop.observe(tup)

    # ------------------------------------------------------------------
    # historical surface
    # ------------------------------------------------------------------
    @property
    def controller(self) -> AdaptiveController:
        return self.loop.controller

    @property
    def epoch_length(self) -> float:
        return self.loop.epoch_length

    @property
    def cluster(self) -> Optional[ClusterConfig]:
        return self.loop.cluster

    @property
    def adapt(self) -> bool:
        return self.loop.adapt

    @adapt.setter
    def adapt(self, value: bool) -> None:
        self.loop.adapt = value

    @property
    def current_epoch(self) -> int:
        return self.loop.current_epoch

    @property
    def stats(self) -> EpochStatistics:
        return self.loop.stats

    @property
    def pending(self) -> Dict[int, Topology]:
        return self.loop.pending
