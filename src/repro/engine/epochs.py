"""Epoch-based adaptive execution (Section VI, Figure 5).

The :class:`AdaptiveRuntime` divides time into fixed-length epochs:

* statistics are gathered while an epoch runs,
* at the first tuple of epoch *i+1* the statistics of epoch *i* are folded
  into the catalog and handed to the :class:`~repro.core.adaptive.AdaptiveController`,
* a changed plan is installed at the start of epoch *i+2* (ruleset
  propagation delay of Figure 5).

Reconfiguration is atomic between input tuples, which is where this
simulation simplifies the paper: real Storm workers switch rulesets per
epoch with per-epoch state containers, while here a switch happens at a
single simulated instant.  Consequently a freshly introduced MIR store is
*backfilled* from the (windowed) input stores it derives from — the
simulation-equivalent of the paper's transition scheme where old join
partners keep being probed iteratively while the new store fills up
(Section VI.B / Figure 8b).  DESIGN.md discusses the substitution.

The switch mechanics themselves — plan diffing, state migration,
repartitioning, backfill, archived lookups — live in
:class:`~repro.engine.rewiring.RewirableRuntime`, which this runtime shares
with the session facade's online ``add_query``/``remove_query`` path.

Watermark mode composes: with ``disorder_bound`` set, epoch boundaries are
still crossed on (monotone-filtered) event time — a straggler whose event
timestamp lags the current epoch simply cannot cross a boundary, so the
epoch counter never regresses — and the shared ``install()`` path seeds
per-stream high waters across the switch, keeps seq-carrying backfill
intermediates visibility-exact, and evicts against the watermark rather
than the boundary instant.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.adaptive import AdaptiveController
from ..core.partitioning import ClusterConfig
from ..core.topology import Topology
from .rewiring import RewirableRuntime, SwitchRecord
from .runtime import RuntimeConfig
from .statistics import EpochStatistics
from .tuples import StreamTuple

__all__ = ["AdaptiveRuntime", "SwitchRecord"]


class AdaptiveRuntime(RewirableRuntime):
    """A runtime that re-optimizes itself at epoch boundaries."""

    def __init__(
        self,
        controller: AdaptiveController,
        windows: Dict[str, float],
        config: Optional[RuntimeConfig] = None,
        epoch_length: float = 1.0,
        cluster: Optional[ClusterConfig] = None,
        adapt: bool = True,
    ) -> None:
        self.controller = controller
        self.epoch_length = epoch_length
        self.cluster = cluster or controller.config.cluster
        self.adapt = adapt
        topology = controller.initial_topology(self.cluster)
        super().__init__(topology, windows, config)
        self.current_epoch = 0
        self.stats = EpochStatistics(epoch=0)
        self.pending: Dict[int, Topology] = {}

    # ------------------------------------------------------------------
    # epoch machinery
    # ------------------------------------------------------------------
    def on_input_boundary(self, now: float) -> None:
        epoch = int(now // self.epoch_length)
        while self.current_epoch < epoch:
            closing = self.current_epoch
            self._close_epoch(closing)
            self.current_epoch += 1
            topology = self.pending.pop(self.current_epoch, None)
            if topology is not None:
                self.install(
                    topology,
                    now=self.current_epoch * self.epoch_length,
                    epoch=self.current_epoch,
                )

    def on_ingest(self, tup: StreamTuple) -> None:
        self.stats.observe(tup)

    def _close_epoch(self, epoch: int) -> None:
        stats = self.stats
        self.stats = EpochStatistics(epoch=epoch + 1)
        if not self.adapt:
            return
        measured = stats.fold_into(
            self.controller.base_catalog,
            self.controller.query_list,
            self.epoch_length,
        )
        topology = self.controller.decide(epoch, measured, self.cluster)
        if topology is not None:
            # decided while epoch+1 runs; in effect from epoch+2 (Fig. 5)
            self.pending[epoch + 2] = topology
