"""Hash/broadcast routing of tuples to store tasks.

An :class:`~repro.core.topology.EdgeSpec` names the attribute of the
*sending* tuple whose value determines the target partition (``route_by``);
without one the tuple is broadcast to every task of the target store — the
χ > 1 case of the cost model (Section IV, marker 7 in Figure 2).
"""

from __future__ import annotations

import zlib
from typing import List

from ..core.topology import EdgeSpec, StoreSpec
from .tuples import StreamTuple

__all__ = ["target_tasks", "stable_hash"]


def stable_hash(value: object) -> int:
    """Deterministic, process-independent hash for partitioning."""
    return zlib.crc32(repr(value).encode("utf-8"))


def target_tasks(
    edge: EdgeSpec, spec: StoreSpec, tup: StreamTuple
) -> List[int]:
    """Task indices of ``spec`` that must receive ``tup`` along ``edge``."""
    if spec.parallelism <= 1:
        return [0]
    if edge.route_by is None:
        return list(range(spec.parallelism))
    value = tup.get(edge.route_by)
    if value is None:
        # The routing attribute is missing from the tuple (should not happen
        # for well-built topologies); fall back to broadcast for correctness.
        return list(range(spec.parallelism))
    return [stable_hash(value) % spec.parallelism]
