"""Reference (brute-force) windowed multi-way join.

Computes query results directly from recorded input streams with nested
loops — no partitioning, no probe orders, no stores.  This is the oracle the
engine's output is compared against in the integration and property tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set, Tuple

from ..core.query import Query
from .tuples import StreamTuple

__all__ = ["reference_join", "result_keys"]


def reference_join(
    query: Query,
    streams: Mapping[str, List[StreamTuple]],
    windows: Mapping[str, float],
) -> List[StreamTuple]:
    """All result tuples of ``query`` over the recorded ``streams``.

    Semantics mirror the engine: a result exists for each combination of
    tuples (one per relation) that satisfies every predicate and every
    pairwise window constraint; it is triggered by (and timestamped with)
    the latest contributing tuple.
    """
    relations = list(query.relations)
    results: List[StreamTuple] = []

    def extend(partial: StreamTuple, remaining: List[str]) -> None:
        if not remaining:
            results.append(partial)
            return
        relation = remaining[0]
        preds = tuple(
            query.predicates_between(partial.lineage, {relation})
        )
        for candidate in streams.get(relation, []):
            if not _match(partial, candidate, preds):
                continue
            if not partial.within_windows(candidate, windows):
                continue
            extend(partial.merge(candidate), remaining[1:])

    first, rest = relations[0], relations[1:]
    for tup in streams.get(first, []):
        extend(tup, rest)

    # Re-trigger each result by its latest component (the tuple whose
    # arrival completes the join) for latency semantics parity.
    normalized = []
    for res in results:
        latest_rel = max(res.timestamps, key=lambda r: res.timestamps[r])
        normalized.append(
            StreamTuple(
                values=res.values,
                timestamps=res.timestamps,
                trigger=latest_rel,
                trigger_ts=res.timestamps[latest_rel],
            )
        )
    return normalized


def _match(partial: StreamTuple, candidate: StreamTuple, preds) -> bool:
    for pred in preds:
        if pred.left.relation in partial.timestamps:
            mine, theirs = str(pred.left), str(pred.right)
        else:
            mine, theirs = str(pred.right), str(pred.left)
        if partial.get(mine) != candidate.get(theirs):
            return False
    return True


def result_keys(results: Iterable[StreamTuple]) -> Set[Tuple]:
    """Canonical result-set representation for comparisons."""
    return {r.key() for r in results}
