"""Reference (brute-force) windowed multi-way join.

Computes query results directly from recorded input streams with nested
loops — no partitioning, no probe orders, no stores.  This is the oracle the
engine's output is compared against in the integration and property tests.

The semantics are defined purely on *event* timestamps: a result exists for
every combination of tuples (one per query relation) that satisfies all
predicates and all pairwise window constraints.  Arrival order never enters
the definition, which makes the same oracle valid for both engine modes —
timestamp-ordered feeds and bounded out-of-order feeds (watermark mode)
must reproduce exactly this set.  One caveat on ordered mode: its strict
``arrived_before`` rule makes partners with *equal* event timestamps
invisible to each other, so exact oracle parity there assumes distinct
timestamps (which the continuous-time generators guarantee); watermark
mode decides visibility by arrival sequence and carries no such
assumption.  The join graph may be any connected shape (chain, star,
cycle, ...): predicates are looked up between the accumulated prefix and
each extension relation, so cycle-closing predicates are applied as soon
as both endpoints are covered.

Comparison helper: :func:`describe_result_diff` renders differences in
sorted order — raw set iteration order depends on string hash
randomization, so printing un-sorted differences yields failure diffs
that change across runs and Python versions.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Set, Tuple

from ..core.predicates import JoinPredicate
from ..core.query import Query
from .tuples import StreamTuple

#: canonical tuple identity as produced by :meth:`StreamTuple.key`
ResultKey = Tuple[
    Tuple[Tuple[str, float], ...], Tuple[Tuple[str, str], ...]
]

__all__ = [
    "reference_join",
    "result_keys",
    "describe_result_diff",
]


def reference_join(
    query: Query,
    streams: Mapping[str, List[StreamTuple]],
    windows: Mapping[str, float],
) -> List[StreamTuple]:
    """All result tuples of ``query`` over the recorded ``streams``.

    Semantics mirror the engine: a result exists for each combination of
    tuples (one per relation) that satisfies every predicate and every
    pairwise window constraint; it is triggered by (and timestamped with)
    the latest contributing tuple.  Stream lists may be in any order —
    only the event timestamps they carry matter.
    """
    relations = list(query.relations)
    results: List[StreamTuple] = []

    def extend(partial: StreamTuple, remaining: List[str]) -> None:
        if not remaining:
            results.append(partial)
            return
        relation = remaining[0]
        preds = tuple(
            query.predicates_between(partial.lineage, {relation})
        )
        for candidate in streams.get(relation, []):
            if not _match(partial, candidate, preds):
                continue
            if not partial.within_windows(candidate, windows):
                continue
            extend(partial.merge(candidate), remaining[1:])

    first, rest = relations[0], relations[1:]
    for tup in streams.get(first, []):
        extend(tup, rest)

    # Re-trigger each result by its latest component (the tuple whose
    # arrival completes the join) for latency semantics parity.  Timestamp
    # ties are broken by relation name so the trigger is deterministic.
    # The max-merged arrival sequence is carried over: rewire backfill feeds
    # reference results into live watermark-mode stores, where probe
    # visibility is decided by ``seq``.
    normalized = []
    for res in results:
        latest_rel = max(
            sorted(res.timestamps), key=lambda r: res.timestamps[r]
        )
        out = StreamTuple(
            values=res.values,
            timestamps=res.timestamps,
            trigger=latest_rel,
            trigger_ts=res.timestamps[latest_rel],
        )
        out.seq = res.seq
        normalized.append(out)
    return normalized


def _match(
    partial: StreamTuple, candidate: StreamTuple, preds: Sequence[JoinPredicate]
) -> bool:
    for pred in preds:
        if pred.left.relation in partial.timestamps:
            mine, theirs = str(pred.left), str(pred.right)
        else:
            mine, theirs = str(pred.right), str(pred.left)
        if partial.get(mine) != candidate.get(theirs):
            return False
    return True


def result_keys(results: Iterable[StreamTuple]) -> Set[ResultKey]:
    """Canonical result-set representation for comparisons."""
    return {r.key() for r in results}


def describe_result_diff(
    expected: Set[ResultKey], got: Set[ResultKey], limit: int = 3
) -> str:
    """Stable one-line diff between two canonical key sets.

    Both difference sets are sorted before rendering, so the same mismatch
    prints the same diff on every run, interpreter, and ``PYTHONHASHSEED``.
    """
    missing = sorted(expected - got)
    invented = sorted(got - expected)
    parts = []
    if missing:
        parts.append(
            f"missing {len(missing)} (first: {missing[:limit]})"
        )
    if invented:
        parts.append(
            f"invented {len(invented)} (first: {invented[:limit]})"
        )
    return "; ".join(parts) if parts else "result sets equal"
