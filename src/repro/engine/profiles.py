"""Engine cost profiles: per-operation service times for the timed simulator.

The paper compares Apache Flink jobs, plain Apache Storm topologies, and
CLASH's routing layer on Storm.  We model the observed constant-factor
differences (Section VII.A: "Flink's throughput is a smidge higher what can
be explained with the overhead of our routing implementation") as
per-operation service times of the simulated worker tasks.

All times are in simulated seconds per operation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EngineProfile", "FLINK_PROFILE", "STORM_PROFILE", "CLASH_PROFILE"]


@dataclass(frozen=True)
class EngineProfile:
    """Service-time parameters of a worker task."""

    name: str
    #: fixed cost of receiving/deserializing one message
    per_message: float
    #: cost of one index lookup + candidate scan unit during a probe
    per_comparison: float
    #: cost of materializing and shipping one result/intermediate tuple
    per_result: float
    #: cost of inserting one tuple into the local store and its indexes
    per_store: float
    #: network transfer delay between tasks
    network_delay: float

    def scaled(self, factor: float) -> "EngineProfile":
        """A uniformly slower/faster variant (for sensitivity ablations)."""
        return EngineProfile(
            name=f"{self.name}x{factor:g}",
            per_message=self.per_message * factor,
            per_comparison=self.per_comparison * factor,
            per_result=self.per_result * factor,
            per_store=self.per_store * factor,
            network_delay=self.network_delay * factor,
        )


#: Flink: tightest per-tuple path (operator chaining, no rule lookup).
FLINK_PROFILE = EngineProfile(
    name="flink",
    per_message=1.9e-6,
    per_comparison=0.010e-6,
    per_result=0.9e-6,
    per_store=0.75e-6,
    network_delay=180e-6,
)

#: Storm: slightly higher per-message overhead (ack-ing, task dispatch).
STORM_PROFILE = EngineProfile(
    name="storm",
    per_message=2.1e-6,
    per_comparison=0.010e-6,
    per_result=1.0e-6,
    per_store=0.8e-6,
    network_delay=200e-6,
)

#: CLASH on Storm: Storm plus the ruleset-routing layer of Section V.B.
CLASH_PROFILE = EngineProfile(
    name="clash",
    per_message=2.35e-6,
    per_comparison=0.011e-6,
    per_result=1.05e-6,
    per_store=0.85e-6,
    network_delay=200e-6,
)
