"""Simulated scale-out stream processor (the Apache Storm substitute).

* :class:`TopologyRuntime` — executes a :class:`~repro.core.topology.Topology`
  in exact (``logical``) or queueing-simulation (``timed``) mode.
* :class:`AdaptiveRuntime` — epoch-based re-optimizing runtime (Section VI).
* :func:`reference_join` — brute-force oracle used by the test suite.
"""

from .adaptivity import AdaptivityLoop
from .columnar import ColumnarContainer, VectorBatch
from .epochs import AdaptiveRuntime
from .metrics import EngineMetrics
from .profiles import CLASH_PROFILE, FLINK_PROFILE, STORM_PROFILE, EngineProfile
from .reference import describe_result_diff, reference_join, result_keys
from .rewiring import (
    RewirableRuntime,
    SwitchRecord,
    WindowGrowthError,
    compute_backfill,
)
from .routing import stable_hash, target_tasks
from .sharding import ShardFailedError, ShardRouter, ShardedRuntime
from .runtime import (
    LateArrivalError,
    MemoryOverflowError,
    RuntimeConfig,
    TopologyRuntime,
)
from .statistics import EpochStatistics
from .stores import (
    STORE_BACKENDS,
    Container,
    StoreBackend,
    StoreTask,
    make_backend,
    orient_predicates,
    probe_batch,
    probe_container,
)
from .tuples import StreamTuple, input_tuple, intern_attr

__all__ = [
    "AdaptiveRuntime",
    "AdaptivityLoop",
    "CLASH_PROFILE",
    "ColumnarContainer",
    "Container",
    "EngineMetrics",
    "EngineProfile",
    "EpochStatistics",
    "FLINK_PROFILE",
    "LateArrivalError",
    "MemoryOverflowError",
    "STORE_BACKENDS",
    "RewirableRuntime",
    "RuntimeConfig",
    "STORM_PROFILE",
    "ShardFailedError",
    "ShardRouter",
    "ShardedRuntime",
    "StoreBackend",
    "StoreTask",
    "StreamTuple",
    "SwitchRecord",
    "TopologyRuntime",
    "VectorBatch",
    "WindowGrowthError",
    "make_backend",
    "compute_backfill",
    "describe_result_diff",
    "input_tuple",
    "intern_attr",
    "orient_predicates",
    "probe_batch",
    "probe_container",
    "reference_join",
    "result_keys",
    "stable_hash",
    "target_tasks",
]
