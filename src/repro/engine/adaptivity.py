"""The unified adaptivity loop: one observe → decide → install path.

Section VI's adaptivity (epoch statistics → re-optimize → atomic ruleset
switch) and the session facade's query-churn rewires used to live in two
parallel stacks.  :class:`AdaptivityLoop` is the single shared loop:

* it **observes** input tuples into rolling :class:`EpochStatistics`
  windows (``stats_window`` epochs are retained, not one session-long
  blob), and can **absorb** statistics deltas folded back from sharded
  workers,
* it **decides** by consulting :class:`~repro.core.adaptive.AdaptiveController`
  — at epoch boundaries (``advance``) with the Figure-5 two-epoch delay,
  or immediately (``rewire``) for query churn and explicit
  re-optimization,
* it **installs** every resulting plan change through the one
  :meth:`RewirableRuntime.install` path, so state migration, backfill,
  watermark seeding and ``store_backend="auto"`` reselection ride every
  switch regardless of what triggered it.

Layering: :class:`~repro.engine.epochs.AdaptiveRuntime` is a thin
compatibility shim over this loop, and :class:`~repro.session.JoinSession`
drives the same loop for ``reoptimize_every`` epochs, ``add_query`` /
``remove_query`` churn, and ``session.reoptimize()``.  Every optimizer
consultation is mirrored into ``runtime.metrics.decisions`` as a
:class:`~repro.core.adaptive.DecisionRecord`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional

from ..core.adaptive import AdaptiveController, DecisionRecord
from ..core.catalog import StatisticsCatalog
from ..core.partitioning import ClusterConfig
from ..core.topology import Topology
from .statistics import EpochStatistics
from .tuples import StreamTuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .rewiring import RewirableRuntime, SwitchRecord

__all__ = ["AdaptivityLoop"]


class AdaptivityLoop:
    """Owns statistics windows and funnels every plan change into install.

    ``epoch_length=None`` disables periodic epochs: the loop keeps one
    unbounded rolling epoch (the legacy session behavior) and only decides
    when explicitly asked (``rewire``).  With ``epoch_length=E`` the loop
    reproduces the paper's Figure-5 schedule exactly: statistics from epoch
    *i* are folded at the first boundary of epoch *i+1* and a changed plan
    is installed at the start of epoch *i+2*.

    ``measure`` customizes how merged statistics become a catalog (the
    session layers declared overrides on top); the default folds into the
    controller's base catalog.  ``pre_decide`` runs once before boundary
    decisions — the sharded session uses it to drain worker statistics
    deltas so epoch attribution matches the single-process runtime.
    """

    def __init__(
        self,
        controller: Optional[AdaptiveController] = None,
        *,
        epoch_length: Optional[float] = None,
        cluster: Optional[ClusterConfig] = None,
        adapt: bool = True,
        stats_window: int = 1,
        measure: Optional[
            Callable[[EpochStatistics, Optional[float]], StatisticsCatalog]
        ] = None,
        pre_decide: Optional[Callable[[], None]] = None,
    ) -> None:
        if stats_window < 1:
            raise ValueError("stats_window must be >= 1")
        if epoch_length is not None and epoch_length <= 0:
            raise ValueError("epoch_length must be positive")
        self.controller = controller
        self.epoch_length = epoch_length
        self.cluster = cluster
        self.adapt = adapt
        self.stats_window = stats_window
        self.measure = measure
        self.pre_decide = pre_decide
        self.runtime: Optional["RewirableRuntime"] = None
        #: invoked after an epoch-boundary decision *changed* the plan
        #: (the session refreshes its introspection state here)
        self.on_change: Optional[Callable[[], None]] = None
        self.current_epoch = 0
        self.stats = EpochStatistics(epoch=0)
        self.closed: Deque[EpochStatistics] = deque(maxlen=stats_window)
        self.pending: Dict[int, Topology] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, runtime: "RewirableRuntime") -> None:
        """Bind the runtime whose ``install()`` every change routes through."""
        self.runtime = runtime

    def bind(
        self,
        controller: AdaptiveController,
        cluster: Optional[ClusterConfig] = None,
    ) -> None:
        """Late-bind the controller (the session plans lazily)."""
        self.controller = controller
        if cluster is not None:
            self.cluster = cluster

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe(self, tup: StreamTuple) -> None:
        """Record an arriving input tuple into the live epoch."""
        self.stats.observe(tup)

    def absorb(self, delta: EpochStatistics) -> None:
        """Merge a worker-observed statistics delta (sharded fold-back)."""
        self.stats.merge(delta)

    def snapshot(self) -> EpochStatistics:
        """Merged statistics over the retained window plus the live epoch."""
        if not self.closed:
            return self.stats
        merged = EpochStatistics(epoch=self.stats.epoch)
        for item in self.closed:
            merged.merge(item)
        merged.merge(self.stats)
        return merged

    def elapsed(self) -> Optional[float]:
        """Event-time span covered by :meth:`snapshot` (None: no rates yet)."""
        if self.epoch_length is None:
            stats = self.stats
            if stats.first_ts is None or stats.last_ts is None:
                return None
            span = stats.last_ts - stats.first_ts
            return span if span > 0 else None
        span = float(len(self.closed)) * self.epoch_length
        if self.stats.first_ts is not None and self.stats.last_ts is not None:
            # the live epoch contributes only its *observed* span, so a
            # lone first tuple yields no rate estimate (matching both the
            # legacy session and AdaptiveRuntime's base-catalog bootstrap)
            span += max(0.0, self.stats.last_ts - self.stats.first_ts)
        return span if span > 0 else None

    # ------------------------------------------------------------------
    # epoch machinery (periodic decisions)
    # ------------------------------------------------------------------
    def advance(self, now: float) -> None:
        """Cross any epoch boundaries ≤ ``now``: close, decide, install."""
        if self.epoch_length is None:
            return
        epoch = int(now // self.epoch_length)
        if epoch <= self.current_epoch:
            return
        if self.pre_decide is not None:
            self.pre_decide()
        while self.current_epoch < epoch:
            self._close_epoch(self.current_epoch)
            self.current_epoch += 1
            topology = self.pending.pop(self.current_epoch, None)
            if topology is not None:
                self.install(
                    topology,
                    now=self.current_epoch * self.epoch_length,
                    epoch=self.current_epoch,
                )

    def _close_epoch(self, epoch: int) -> None:
        stats = self.stats
        self.stats = EpochStatistics(epoch=epoch + 1)
        self.closed.append(stats)
        if not self.adapt or self.controller is None:
            return
        if len(self.closed) == 1:
            merged = self.closed[0]
        else:
            merged = EpochStatistics(epoch=stats.epoch)
            for item in self.closed:
                merged.merge(item)
        elapsed = float(len(self.closed)) * self.epoch_length
        measured = self._measured(merged, elapsed)
        topology = self._decide(epoch, measured)
        if topology is not None:
            # decided while epoch+1 runs; in effect from epoch+2 (Fig. 5)
            self.pending[epoch + 2] = topology
            if self.on_change is not None:
                self.on_change()

    # ------------------------------------------------------------------
    # immediate decisions (churn / explicit reoptimize)
    # ------------------------------------------------------------------
    def rewire(
        self,
        now: float,
        windows: Optional[Dict[str, float]] = None,
        measured: Optional[StatisticsCatalog] = None,
    ) -> Optional[DecisionRecord]:
        """Decide from the freshest statistics and install immediately.

        Used for query churn (the controller is dirty, so a topology is
        always produced) and for explicit ``session.reoptimize()`` (a
        topology is produced only when the plan actually changed).  Any
        pending epoch-scheduled topology is superseded.
        """
        if measured is None:
            measured = self._measured(self.snapshot(), self.elapsed())
        before = len(self.controller.decisions)
        topology = self._decide(self.current_epoch, measured)
        if topology is not None:
            self.pending.clear()
            self.install(topology, now=now, epoch=self.current_epoch, windows=windows)
        after = self.controller.decisions
        return after[-1] if len(after) > before else None

    # ------------------------------------------------------------------
    # the single funnel
    # ------------------------------------------------------------------
    def install(
        self,
        topology: Topology,
        now: float,
        epoch: int = 0,
        windows: Optional[Dict[str, float]] = None,
    ) -> "SwitchRecord":
        """Every plan change — epoch, churn, or manual — lands here."""
        if self.runtime is None:
            raise RuntimeError("AdaptivityLoop has no attached runtime")
        return self.runtime.install(topology, now=now, epoch=epoch, windows=windows)

    # ------------------------------------------------------------------
    def _measured(
        self, merged: EpochStatistics, elapsed: Optional[float]
    ) -> StatisticsCatalog:
        if self.measure is not None:
            return self.measure(merged, elapsed)
        return merged.fold_into(
            self.controller.base_catalog,
            self.controller.query_list,
            elapsed if elapsed else 1.0,
        )

    def _decide(
        self, epoch: int, measured: StatisticsCatalog
    ) -> Optional[Topology]:
        before = len(self.controller.decisions)
        topology = self.controller.decide(epoch, measured, self.cluster)
        if self.runtime is not None:
            for record in self.controller.decisions[before:]:
                self.runtime.metrics.on_decision(record)
        return topology
