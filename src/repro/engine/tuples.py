"""Stream tuples flowing through the simulated topology.

A :class:`StreamTuple` is either a raw input tuple or a partial join result
(the concatenation ``r ◦ s ◦ t`` of the paper).  It carries:

* ``values`` — qualified attribute name → value,
* ``timestamps`` — per contributing relation, the arrival timestamp τ,
* ``trigger`` / ``trigger_ts`` — the input relation/timestamp that initiated
  the probe chain; join partners must all have arrived strictly before it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Tuple

__all__ = ["StreamTuple", "input_tuple"]


class StreamTuple:
    """Immutable-by-convention tuple with lineage and timestamps."""

    __slots__ = ("values", "timestamps", "trigger", "trigger_ts")

    def __init__(
        self,
        values: Dict[str, object],
        timestamps: Dict[str, float],
        trigger: str,
        trigger_ts: float,
    ) -> None:
        self.values = values
        self.timestamps = timestamps
        self.trigger = trigger
        self.trigger_ts = trigger_ts

    # ------------------------------------------------------------------
    @property
    def lineage(self) -> FrozenSet[str]:
        return frozenset(self.timestamps)

    @property
    def width(self) -> int:
        """Number of contributing relations (tuple size proxy for memory)."""
        return len(self.timestamps)

    @property
    def latest_ts(self) -> float:
        return max(self.timestamps.values())

    @property
    def earliest_ts(self) -> float:
        return min(self.timestamps.values())

    def get(self, qualified_attr: str):
        return self.values.get(qualified_attr)

    def merge(self, other: "StreamTuple") -> "StreamTuple":
        """Concatenate with a stored partner; keeps this tuple's trigger."""
        if self.timestamps.keys() & other.timestamps.keys():
            raise ValueError("cannot merge tuples with overlapping lineage")
        values = dict(self.values)
        values.update(other.values)
        timestamps = dict(self.timestamps)
        timestamps.update(other.timestamps)
        return StreamTuple(
            values=values,
            timestamps=timestamps,
            trigger=self.trigger,
            trigger_ts=self.trigger_ts,
        )

    def arrived_before(self, other_trigger_ts: float) -> bool:
        """True if *all* components arrived strictly before the trigger."""
        return all(ts < other_trigger_ts for ts in self.timestamps.values())

    def within_windows(
        self, other: "StreamTuple", windows: Mapping[str, float]
    ) -> bool:
        """Pairwise window check between all components of both tuples.

        Components i, j are joinable iff |τi − τj| ≤ min(window_i, window_j)
        (Section I.A: per-relation windows bound the maximal time distance).
        """
        for rel_a, ts_a in self.timestamps.items():
            w_a = windows.get(rel_a, float("inf"))
            for rel_b, ts_b in other.timestamps.items():
                w_b = windows.get(rel_b, float("inf"))
                if abs(ts_a - ts_b) > min(w_a, w_b):
                    return False
        return True

    def key(self) -> Tuple:
        """Canonical identity (used for result-set comparisons in tests)."""
        return (
            tuple(sorted(self.timestamps.items())),
            tuple(sorted((k, repr(v)) for k, v in self.values.items())),
        )

    def __repr__(self) -> str:
        rels = "+".join(sorted(self.timestamps))
        return f"Tuple[{rels}@{self.trigger_ts:g}]"


def input_tuple(
    relation: str, tau: float, values: Mapping[str, object]
) -> StreamTuple:
    """Create a raw input tuple; ``values`` keys are unqualified attr names."""
    qualified = {f"{relation}.{name}": value for name, value in values.items()}
    return StreamTuple(
        values=qualified,
        timestamps={relation: tau},
        trigger=relation,
        trigger_ts=tau,
    )
