"""Stream tuples flowing through the simulated topology.

A :class:`StreamTuple` is either a raw input tuple or a partial join result
(the concatenation ``r ◦ s ◦ t`` of the paper).  It carries:

* ``values`` — qualified attribute name → value,
* ``timestamps`` — per contributing relation, the event timestamp τ,
* ``trigger`` / ``trigger_ts`` — the input relation/timestamp that initiated
  the probe chain; join partners must all have arrived strictly before it,
* ``seq`` — the wall-clock *arrival* sequence number assigned by the runtime
  at ingest (0 until assigned).  With perfectly ordered arrivals the event
  timestamp doubles as the arrival order, but under bounded out-of-order
  arrival (watermark mode) the two diverge: probe visibility is then decided
  by ``seq`` while windows and eviction stay event-time based.

Hot-path notes: the engine touches every tuple many times (routing, probe
candidate filtering, eviction ordering), so the timestamp extrema and the
lineage set are computed once at construction instead of per access, and
qualified attribute names are interned so the per-probe dict lookups hit
CPython's pointer-equality fast path.
"""

from __future__ import annotations

from sys import intern
from typing import Dict, FrozenSet, Mapping, Tuple

__all__ = ["StreamTuple", "input_tuple", "intern_attr"]


#: cache of interned qualified attribute names ("R.a" -> interned "R.a")
_ATTR_CACHE: Dict[str, str] = {}


def intern_attr(name: str) -> str:
    """Intern a qualified attribute name (stable across the process)."""
    cached = _ATTR_CACHE.get(name)
    if cached is None:
        cached = _ATTR_CACHE[name] = intern(name)
    return cached


class StreamTuple:
    """Immutable-by-convention tuple with lineage and timestamps."""

    __slots__ = (
        "values",
        "timestamps",
        "trigger",
        "trigger_ts",
        "latest_ts",
        "earliest_ts",
        "lineage",
        "seq",
    )

    def __init__(
        self,
        values: Dict[str, object],
        timestamps: Dict[str, float],
        trigger: str,
        trigger_ts: float,
    ) -> None:
        self.values = values
        self.timestamps = timestamps
        self.trigger = trigger
        self.trigger_ts = trigger_ts
        ts_values = timestamps.values()
        self.latest_ts: float = max(ts_values)
        self.earliest_ts: float = min(ts_values)
        self.lineage: FrozenSet[str] = frozenset(timestamps)
        self.seq: int = 0

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Number of contributing relations (tuple size proxy for memory)."""
        return len(self.timestamps)

    def get(self, qualified_attr: str) -> object:
        return self.values.get(qualified_attr)

    def merge(self, other: "StreamTuple") -> "StreamTuple":
        """Concatenate with a stored partner; keeps this tuple's trigger.

        The timestamp extrema and lineage of the concatenation are derived
        from the parents instead of re-scanned — merging is the single
        hottest allocation site of the engine (one per join result).
        """
        if not self.lineage.isdisjoint(other.lineage):
            raise ValueError("cannot merge tuples with overlapping lineage")
        merged = StreamTuple.__new__(StreamTuple)
        values = dict(self.values)
        values.update(other.values)
        timestamps = dict(self.timestamps)
        timestamps.update(other.timestamps)
        merged.values = values
        merged.timestamps = timestamps
        merged.trigger = self.trigger
        merged.trigger_ts = self.trigger_ts
        merged.latest_ts = (
            self.latest_ts if self.latest_ts >= other.latest_ts else other.latest_ts
        )
        merged.earliest_ts = (
            self.earliest_ts
            if self.earliest_ts <= other.earliest_ts
            else other.earliest_ts
        )
        merged.lineage = self.lineage | other.lineage
        # last-arriving component: decides visibility under out-of-order mode
        merged.seq = self.seq if self.seq >= other.seq else other.seq
        return merged

    def arrived_before(self, other_trigger_ts: float) -> bool:
        """True if *all* components arrived strictly before the trigger."""
        return self.latest_ts < other_trigger_ts

    def within_windows(
        self, other: "StreamTuple", windows: Mapping[str, float]
    ) -> bool:
        """Pairwise window check between all components of both tuples.

        Components i, j are joinable iff |τi − τj| ≤ min(window_i, window_j)
        (Section I.A: per-relation windows bound the maximal time distance).
        """
        for rel_a, ts_a in self.timestamps.items():
            w_a = windows.get(rel_a, float("inf"))
            for rel_b, ts_b in other.timestamps.items():
                w_b = windows.get(rel_b, float("inf"))
                if abs(ts_a - ts_b) > min(w_a, w_b):
                    return False
        return True

    def within_uniform_window(self, other: "StreamTuple", window: float) -> bool:
        """O(1) window check when every relation shares the same window.

        Equivalent to :meth:`within_windows` with a constant window ``w``:
        max over pairs |τi − τj| = max(latest_a − earliest_b,
        latest_b − earliest_a).
        """
        if self.latest_ts - other.earliest_ts > window:
            return False
        return other.latest_ts - self.earliest_ts <= window

    def key(
        self,
    ) -> Tuple[Tuple[Tuple[str, float], ...], Tuple[Tuple[str, str], ...]]:
        """Canonical identity (used for result-set comparisons in tests)."""
        return (
            tuple(sorted(self.timestamps.items())),
            tuple(sorted((k, repr(v)) for k, v in self.values.items())),
        )

    def __repr__(self) -> str:
        rels = "+".join(sorted(self.timestamps))
        return f"Tuple[{rels}@{self.trigger_ts:g}]"


def input_tuple(
    relation: str, tau: float, values: Mapping[str, object]
) -> StreamTuple:
    """Create a raw input tuple; ``values`` keys are unqualified attr names."""
    qualified = {
        intern_attr(f"{relation}.{name}"): value for name, value in values.items()
    }
    return StreamTuple(
        values=qualified,
        timestamps={relation: tau},
        trigger=relation,
        trigger_ts=tau,
    )
