"""`JoinSession`: the one-object facade over the whole reproduction stack.

The paper's contribution is *joint* optimization of a **changing** set of
multi-way stream joins; this module packages that as a long-lived service
instead of a one-shot batch pipeline.  A session owns the statistics
catalog, the multi-query optimizer, the compiled topology, and the
execution runtime behind a single fluent object::

    session = (
        JoinSession(window=10.0, solver="auto")
        .add_query("q1", "R.a=S.a", "S.b=T.b")
        .add_query("q2", "S.b=T.b", "T.c=U.c")
    )
    session.push("R", {"a": 3}, ts=1.25)          # live, push-based ingestion
    session.push("S", {"a": 3, "b": 7}, ts=1.5)
    ...
    session.add_query("q3", "T.c=U.c", "U.d=V.d")  # online, mid-stream
    session.remove_query("q1")
    report = session.verify()                      # brute-force oracle check

Key behaviours:

* **Push-based ingestion** — ``push`` / ``push_batch`` feed tuples one at a
  time; the engine's micro-batched logical cascade runs underneath
  (:meth:`~repro.engine.runtime.TopologyRuntime.process`).  Ordered mode
  requires timestamp-sorted pushes; passing ``disorder_bound`` switches the
  session to watermark mode with bounded out-of-order pushes.
* **Online query add/remove** — after tuples have flowed, ``add_query`` /
  ``remove_query`` re-run the shared-plan ILP (``solver="auto"`` falls back
  to the greedy planner for cyclic shapes), diff the old and new topologies,
  and *migrate* surviving store state across the rewire
  (:class:`~repro.engine.rewiring.RewirableRuntime`): unaffected relation
  and MIR stores keep their containers, new MIR stores are backfilled from
  the windowed input stores, and only removed stores release state.
* **Observed statistics** — arrival rates and join selectivities default to
  being measured from the pushed tuples themselves
  (:class:`~repro.engine.statistics.EpochStatistics`); ``with_rate`` /
  ``with_selectivity`` / ``with_window`` declare overrides that always win.
  ``warmup=N`` defers the first plan until N tuples arrived, closing the
  catalog-bootstrapping gap entirely.
* **Verification** — ``verify()`` replays the recorded input history through
  the brute-force :func:`~repro.engine.reference.reference_join` and checks
  every query (including removed ones) against the reference *restricted to
  its active interval*: a result is expected iff its last-arriving
  component was pushed while the query was installed.

Exceptions raised by the session are precise and typed (see
:class:`SessionError` and subclasses); ``add_query`` with a disconnected
join graph raises :class:`~repro.core.query.CrossProductError` exactly like
the underlying :class:`~repro.core.query.Query` constructor.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .core.adaptive import AdaptiveController, DecisionRecord, plan_signature
from .core.catalog import StatisticsCatalog
from .core.ilp_builder import OptimizerConfig
from .core.optimizer import MultiQueryOptimizer, choose_solver
from .core.partitioning import ClusterConfig
from .core.plan import SharedPlan
from .core.predicates import JoinPredicate, as_predicate
from .core.query import Query
from .core.topology import Topology, build_topology
from .engine.adaptivity import AdaptivityLoop
from .engine.metrics import EngineMetrics
from .engine.reference import describe_result_diff, reference_join, result_keys
from .engine.rewiring import RewirableRuntime, SwitchRecord
from .engine.runtime import LateArrivalError, RuntimeConfig, validate_arrival
from .engine.sharding import ShardedRuntime
from .engine.statistics import EpochStatistics
from .engine.tuples import StreamTuple, input_tuple

__all__ = [
    "JoinSession",
    "SessionError",
    "UnknownRelationError",
    "UnknownQueryError",
    "DuplicateQueryError",
    "LateTupleError",
    "EngineFailedError",
    "VerificationReport",
]


class SessionError(RuntimeError):
    """Base class for session-level usage errors."""


class UnknownRelationError(SessionError, KeyError):
    """A tuple was pushed for a relation no installed query reads.

    Relations are registered implicitly by the queries that join them;
    pushing to anything else would silently drop data, so it raises.
    """

    # KeyError.__str__ reprs its argument, which would quote-mangle the
    # human-readable message; keep the plain Exception rendering
    __str__ = Exception.__str__


class UnknownQueryError(SessionError, KeyError):
    """A query name was referenced that this session has never installed."""

    __str__ = Exception.__str__


class DuplicateQueryError(SessionError, ValueError):
    """``add_query`` with a name that is currently installed."""


class LateTupleError(SessionError, ValueError):
    """A push violated the session's arrival-order contract.

    In ordered mode (the default) event timestamps must be non-decreasing;
    with ``disorder_bound=D`` (watermark mode) a push may lag its stream's
    high-water event timestamp by at most ``D``.  Accepting the tuple would
    silently lose join results, so it is rejected loudly instead.
    """


class EngineFailedError(SessionError):
    """The underlying engine has failed (memory overflow, or a dead shard
    worker under ``workers > 1``) and the session no longer accepts pushes.

    Raised by ``push`` — once for the push that triggered the failure
    (which was fully processed) and for every push thereafter (which are
    not ingested at all); ``session.metrics.failure_reason`` has details.
    The push that *detects* a shard failure raises the engine's typed
    :class:`~repro.engine.sharding.ShardFailedError` instead (a subclass
    of ``RuntimeError``, carrying the worker traceback).
    """


def _check_on_late(policy: str) -> str:
    """Validate a late-tuple policy name (session default or per-push)."""
    if policy not in ("raise", "drop", "dead_letter"):
        raise ValueError(
            f"unknown late-tuple policy {policy!r}; expected 'raise', "
            f"'drop', or 'dead_letter'"
        )
    return policy


@dataclass
class _Activation:
    """One installed lifetime of a query: (query, arrival-seq interval].

    ``from_seq`` is the number of tuples pushed before the query was added
    (exclusive bound); ``to_seq`` the count at removal (inclusive bound),
    or ``None`` while still installed.
    """

    query: Query
    from_seq: int
    to_seq: Optional[int] = None

    def contains(self, seq: int) -> bool:
        return seq > self.from_seq and (self.to_seq is None or seq <= self.to_seq)


@dataclass
class QueryCheck:
    """Per-query outcome of :meth:`JoinSession.verify`."""

    name: str
    ok: bool
    expected: int
    produced: int
    diff: str


@dataclass
class VerificationReport:
    """Outcome of a full-session oracle check (all queries ever installed)."""

    checks: Dict[str, QueryCheck] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks.values())

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        lines = []
        for name in sorted(self.checks):
            c = self.checks[name]
            status = "OK" if c.ok else f"MISMATCH ({c.diff})"
            lines.append(f"{name}: {status} ({c.expected} results)")
        return "\n".join(lines) if lines else "no queries to verify"


class _SessionRuntime(RewirableRuntime):
    """Rewirable runtime that fans results out to session subscribers."""

    def __init__(self, topology, windows, config, listeners):
        super().__init__(topology, windows, config)
        self._listeners: Dict[str, List[Callable]] = listeners

    def _emit(self, query: str, result: StreamTuple, completion_ts: float) -> None:
        super()._emit(query, result, completion_ts)
        for callback in self._listeners.get(query, ()):
            callback(result)


class _SessionShardedRuntime(ShardedRuntime):
    """Sharded driver that fans merged results out to session subscribers.

    Subscribers run on the driver side of the deterministic merge, so
    callback order is reproducible and identical to the single-process
    session (same seq order) regardless of worker scheduling.
    """

    def __init__(self, topology, windows, config, listeners, transport, stats_sink=None):
        self._listeners: Dict[str, List[Callable]] = listeners
        super().__init__(
            topology, windows, config, transport=transport, stats_sink=stats_sink
        )

    def _emit(self, query: str, result: StreamTuple, completion_ts: float) -> None:
        super()._emit(query, result, completion_ts)
        for callback in self._listeners.get(query, ()):
            callback(result)


class JoinSession:
    """Live multi-query stream-join service over one shared plan.

    Parameters
    ----------
    window:
        Default per-relation window length (seconds of event time); override
        per relation with :meth:`with_window`.
    solver:
        ILP backend: ``"auto"`` (exact, degrading to the greedy planner for
        cyclic query shapes), ``"own"``, ``"scipy"``, or ``"greedy"``.
    default_rate:
        Arrival rate assumed for relations with neither a declared rate nor
        observed traffic (only relevant before the first replan).
    default_selectivity:
        Catalog default for predicates with neither declared nor observed
        selectivity.
    disorder_bound:
        ``None`` requires timestamp-ordered pushes; a bound ``D`` switches
        to watermark mode (pushes may lag each stream's high water by ≤ D).
    allowed_lateness:
        Extra grace ``L`` on top of ``disorder_bound`` (watermark mode
        only).  Tuples lagging their stream's high water by more than D but
        at most D + L are *admitted late*: the eviction watermark is held
        back by L so their join partners are still stored, and each one
        counts in ``metrics.late_admitted``.  Tuples beyond D + L hit the
        ``on_late`` policy.  Default 0 (no ladder; the D bound is strict).
    on_late:
        Default policy for pushes that violate the arrival-order contract
        (in watermark mode: lag their stream's high water by more than
        ``disorder_bound + allowed_lateness``): ``"raise"`` (the default)
        raises :class:`LateTupleError`; ``"drop"`` silently discards the
        tuple and counts it in ``metrics.late_dropped``; ``"dead_letter"``
        routes it to the subscribable side-output (:meth:`dead_letters` /
        :meth:`on_dead_letter`) and counts it in
        ``metrics.dead_lettered``.  Dropped and dead-lettered tuples are
        invisible to results, statistics, and the verification oracle.
        Overridable per push.
    store_backend:
        Container implementation behind every store task: ``"python"``
        (dict/hash-index), ``"columnar"`` (numpy-vectorized), or ``"auto"``
        (each task picks between the two from observed live-width and
        probe-rate statistics, re-evaluated at every replan — see
        docs/engine.md; decisions surface in ``metrics.store_backends``).
        Ignored when ``runtime_config`` is given.
    workers:
        Number of shard worker processes (default 1 = single-process).
        With ``workers=N > 1`` the session drives a
        :class:`~repro.engine.sharding.ShardedRuntime`: every stream is
        hash-partitioned by its join key over N processes, each owning one
        shard of every store, with results merged deterministically — the
        result sets (and their order) are exactly those of ``workers=1``
        (docs/engine.md, "Sharded execution").  Call :meth:`close` (or use
        the session as a context manager) to terminate the pool.
    worker_transport:
        Shard transport, ``"process"`` (real ``multiprocessing`` workers)
        or ``"inline"`` (same sharded semantics in-process — deterministic
        and fork-free, for tests).  Only meaningful with ``workers > 1``.
    parallelism:
        Default store parallelism (ignored when ``optimizer_config`` is
        given).
    optimizer_config / runtime_config:
        Full-control overrides for the ILP construction and engine knobs.
    record_streams:
        Keep the pushed tuple history for :meth:`verify` (disable for
        long-running production sessions).
    warmup:
        Defer the first plan until this many tuples were pushed, so the
        initial plan already uses *observed* statistics (0 plans at the
        first push).
    reoptimize_every:
        Event-time epoch length for periodic re-optimization (Section VI).
        ``None`` (the default) keeps the legacy behaviour: the plan only
        changes on query churn or an explicit :meth:`reoptimize`.  With an
        interval ``E`` the session drives the same
        :class:`~repro.engine.adaptivity.AdaptivityLoop` as
        :class:`~repro.engine.epochs.AdaptiveRuntime`: statistics from
        epoch *i* are measured at the first push of epoch *i+1* and a
        changed plan is installed live (state migration + backfill) at the
        start of epoch *i+2* — including under ``workers > 1``, where the
        shard workers observe statistics locally and the driver folds
        their deltas back at batch boundaries.  Every optimizer
        consultation lands in ``metrics.decisions`` as a
        :class:`~repro.core.adaptive.DecisionRecord`.
    stats_window:
        How many closed epochs of statistics inform each periodic decision
        (default 1 — decide from the previous epoch only, the paper's
        schedule).  Only meaningful with ``reoptimize_every``.
    auto_width_threshold / auto_probe_threshold:
        Tuning knobs for ``store_backend="auto"``: a store task prefers
        the columnar container once its live width reaches
        ``auto_width_threshold`` *and* its probe count reaches
        ``auto_probe_threshold`` (defaults 256 / 32).  Ignored unless the
        backend is ``"auto"``; conflict-checked against an explicit
        ``runtime_config``.
    """

    def __init__(
        self,
        window: float = 10.0,
        solver: str = "auto",
        *,
        default_rate: float = 10.0,
        default_selectivity: float = 0.01,
        disorder_bound: Optional[float] = None,
        allowed_lateness: float = 0.0,
        on_late: str = "raise",
        store_backend: Optional[str] = None,
        workers: Optional[int] = None,
        worker_transport: str = "process",
        parallelism: int = 1,
        optimizer_config: Optional[OptimizerConfig] = None,
        runtime_config: Optional[RuntimeConfig] = None,
        record_streams: bool = True,
        warmup: int = 0,
        reoptimize_every: Optional[float] = None,
        stats_window: int = 1,
        auto_width_threshold: Optional[int] = None,
        auto_probe_threshold: Optional[int] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if reoptimize_every is not None and reoptimize_every <= 0:
            raise ValueError("reoptimize_every must be positive")
        if allowed_lateness < 0:
            raise ValueError("allowed_lateness must be non-negative")
        if allowed_lateness > 0 and disorder_bound is None:
            raise ValueError(
                "allowed_lateness extends watermark mode; pass "
                "disorder_bound as well (ordered mode has no lateness to "
                "grant)"
            )
        self.window = float(window)
        self.solver = solver
        self.default_rate = float(default_rate)
        self.default_selectivity = float(default_selectivity)
        self.record_streams = record_streams
        self.warmup = int(warmup)
        self.stats_window = int(stats_window)
        self.allowed_lateness = float(allowed_lateness)
        self.on_late = _check_on_late(on_late)
        # the engine enforces one combined bound: tuples lagging their
        # stream's high water by more than D are *late* (classified by the
        # session against ``disorder_bound``), those beyond D + L are
        # *rejected* (raise / drop / dead-letter, per ``on_late``).  Holding
        # the engine bound at D + L is exactly the eviction-watermark
        # holdback: stores retain partners long enough to join every
        # admitted straggler.
        engine_bound = (
            None
            if disorder_bound is None
            else float(disorder_bound) + self.allowed_lateness
        )
        self._optimizer_config = optimizer_config or OptimizerConfig(
            cluster=ClusterConfig(default_parallelism=parallelism)
        )
        if runtime_config is not None:
            if runtime_config.mode != "logical":
                raise ValueError(
                    "JoinSession drives the engine through the push API, "
                    "which requires logical mode"
                )
            if (
                disorder_bound is not None
                and runtime_config.disorder_bound != engine_bound
            ):
                raise ValueError(
                    "disorder_bound given both directly and via "
                    "runtime_config (with allowed_lateness the engine bound "
                    "must equal disorder_bound + allowed_lateness)"
                )
            if (
                store_backend is not None
                and runtime_config.store_backend != store_backend
            ):
                raise ValueError(
                    "store_backend given both directly and via runtime_config"
                )
            if workers is not None and runtime_config.workers != workers:
                raise ValueError(
                    "workers given both directly and via runtime_config"
                )
            if runtime_config.on_late == "drop":
                raise ValueError(
                    "runtime_config.on_late='drop' would drop stragglers "
                    "inside the engine, invisibly to the session's history "
                    "and verification oracle; use JoinSession(on_late="
                    "'drop') — the session counts the drop and keeps its "
                    "records consistent"
                )
            if (
                auto_width_threshold is not None
                and runtime_config.auto_width_threshold != auto_width_threshold
            ):
                raise ValueError(
                    "auto_width_threshold given both directly and via "
                    "runtime_config"
                )
            if (
                auto_probe_threshold is not None
                and runtime_config.auto_probe_threshold != auto_probe_threshold
            ):
                raise ValueError(
                    "auto_probe_threshold given both directly and via "
                    "runtime_config"
                )
            self._runtime_config = runtime_config
            self.disorder_bound = (
                float(disorder_bound)
                if disorder_bound is not None
                else runtime_config.disorder_bound
            )
        else:
            threshold_overrides = {}
            if auto_width_threshold is not None:
                threshold_overrides["auto_width_threshold"] = int(
                    auto_width_threshold
                )
            if auto_probe_threshold is not None:
                threshold_overrides["auto_probe_threshold"] = int(
                    auto_probe_threshold
                )
            self._runtime_config = RuntimeConfig(
                mode="logical",
                disorder_bound=engine_bound,
                store_backend=store_backend or "python",
                workers=workers or 1,
                **threshold_overrides,
            )
            self.disorder_bound = (
                None if disorder_bound is None else float(disorder_bound)
            )
        if worker_transport not in ("process", "inline"):
            raise ValueError(
                f"unknown worker_transport {worker_transport!r}; expected "
                f"'process' or 'inline'"
            )
        self._worker_transport = worker_transport
        #: stragglers dropped / dead-lettered / late-admitted while the
        #: warmup buffer was still filling (folded into the corresponding
        #: metrics counters once the runtime exists)
        self._warmup_late_dropped = 0
        self._warmup_dead_lettered = 0
        self._warmup_late_admitted = 0
        #: beyond-lateness stragglers, in arrival order (``on_late=
        #: "dead_letter"``); never recorded in the history, so the
        #: verification oracle sees exactly the admitted tuples
        self._dead_letters: List[StreamTuple] = []
        self._dead_letter_listeners: List[Callable[[StreamTuple], None]] = []

        # query lifecycle
        self._queries: Dict[str, Query] = {}
        self._lifecycle: Dict[str, List[_Activation]] = {}
        self._registered: frozenset = frozenset()

        # declared statistics (always win over observed values)
        self._declared_rates: Dict[str, float] = {}
        self._declared_windows: Dict[str, float] = {}
        self._declared_selectivities: Dict[JoinPredicate, float] = {}

        # observed statistics — owned by the unified adaptivity loop: one
        # unbounded rolling epoch when reoptimize_every is None (the
        # legacy session-long accumulator), rolling stats_window epochs
        # with periodic decisions otherwise.  The loop is also the single
        # funnel every plan change (epoch, churn, explicit reoptimize)
        # takes into RewirableRuntime.install.
        self.reoptimize_every = reoptimize_every
        self._loop = AdaptivityLoop(
            epoch_length=reoptimize_every,
            stats_window=stats_window,
            measure=self._measured_catalog,
        )
        self._loop.on_change = self._on_plan_change
        self._controller: Optional[AdaptiveController] = None
        self._last_measured: Optional[StatisticsCatalog] = None
        self._first_ts: Optional[float] = None
        self._last_ts = float("-inf")
        self._stream_high: Dict[str, float] = {}

        # ingestion state
        self._pushed = 0
        self._seq_of: Dict[Tuple[str, float], int] = {}
        self._history: Dict[str, List[StreamTuple]] = {}
        self._pending: List[StreamTuple] = []
        #: relation -> push counts at which its input store's state was
        #: *released* by a rewire (query expiry); the oracle must not expect
        #: results that would need tuples stored before such a drop
        self._drops: Dict[str, List[int]] = {}
        #: two pushes of one relation shared an event timestamp — the
        #: (relation, ts) -> seq map is then ambiguous (see verify())
        self._ambiguous_ts = False

        # execution state
        self._listeners: Dict[str, List[Callable]] = {}
        self._cursors: Dict[str, int] = {}
        self._runtime: Optional[Union[_SessionRuntime, _SessionShardedRuntime]] = None
        self._plan: Optional[SharedPlan] = None
        self._catalog: Optional[StatisticsCatalog] = None

    # ------------------------------------------------------------------
    # fluent builders (all return self)
    # ------------------------------------------------------------------
    def with_rate(self, relation: str, rate: float) -> "JoinSession":
        """Declare an arrival rate, overriding observed measurements."""
        if rate <= 0:
            raise ValueError(f"rate of {relation!r} must be positive")
        self._declared_rates[relation] = float(rate)
        return self

    def with_window(self, relation: str, window: float) -> "JoinSession":
        """Declare a per-relation window, overriding the session default.

        Windows are part of the join *semantics*, so they freeze once the
        runtime exists: results already emitted under the old window could
        never be reconciled with the oracle (changing cost statistics via
        :meth:`with_rate` / :meth:`with_selectivity` stays allowed anytime).
        """
        if window <= 0:
            raise ValueError(f"window of {relation!r} must be positive")
        if self._runtime is not None:
            raise SessionError(
                "windows are fixed once the session is running; declare "
                "with_window() before the first plan (or use warmup)"
            )
        self._declared_windows[relation] = float(window)
        return self

    def with_selectivity(
        self, predicate: Union[JoinPredicate, str], selectivity: float
    ) -> "JoinSession":
        """Declare a join selectivity, overriding observed measurements."""
        if not 0 < selectivity <= 1:
            raise ValueError("selectivity must be in (0, 1]")
        self._declared_selectivities[as_predicate(predicate)] = float(selectivity)
        return self

    # ------------------------------------------------------------------
    # query lifecycle
    # ------------------------------------------------------------------
    def add_query(
        self, query: Union[Query, str], *equalities: str
    ) -> "JoinSession":
        """Install a query — before or *after* tuples have flowed.

        Accepts a prebuilt :class:`~repro.core.query.Query` or the
        :meth:`Query.of` sugar: ``add_query("q1", "R.a=S.a", "S.b=T.b")``.
        A disconnected join graph raises
        :class:`~repro.core.query.CrossProductError`; a name that is already
        installed raises :class:`DuplicateQueryError`; per-query window
        overrides are not supported (declare per-relation windows with
        :meth:`with_window`).  On a live session the shared plan is
        re-optimized immediately and the topology rewired with state
        migration; the query only sees tuples pushed from now on (plus the
        windowed state of shared stores, via backfill).
        """
        if isinstance(query, Query):
            if equalities:
                raise ValueError(
                    "pass either a Query object or name + equality strings"
                )
        else:
            query = Query.of(str(query), *equalities)
        if query.windows:
            raise SessionError(
                f"query {query.name!r} carries per-query window overrides, "
                f"which JoinSession does not support — the runtime and the "
                f"verification oracle use one window per relation; declare "
                f"them with with_window() instead"
            )
        if query.name in self._queries:
            raise DuplicateQueryError(
                f"query {query.name!r} is already installed; remove it first "
                f"or pick a distinct name"
            )
        self._end_warmup()
        self._queries[query.name] = query
        activations = self._lifecycle.setdefault(query.name, [])
        activations.append(_Activation(query=query, from_seq=self._pushed))
        self._recompute_registered()
        try:
            self._replan()
        except Exception:
            # transactional: a failed solve must not leave a half-installed
            # query accepting pushes the running topology silently drops
            del self._queries[query.name]
            activations.pop()
            if not activations:
                del self._lifecycle[query.name]
            self._recompute_registered()
            raise
        return self

    def remove_query(self, name: str) -> "JoinSession":
        """Uninstall a query; its produced results stay readable.

        Raises :class:`UnknownQueryError` for names not currently installed.
        Stores serving only this query release their state at the rewire
        (Section VI.B refcounting); shared stores are untouched.
        """
        if name not in self._queries:
            raise UnknownQueryError(
                f"query {name!r} is not installed; active queries: "
                f"{sorted(self._queries)}"
            )
        self._end_warmup()
        query = self._queries.pop(name)
        activation = self._lifecycle[name][-1]
        activation.to_seq = self._pushed
        self._recompute_registered()
        try:
            if self._queries:
                self._replan()
            elif self._runtime is not None:
                # dormant: keep the runtime (results + windowed state)
                # alive; the next add_query rewires it in place
                self._runtime.flush()
        except Exception:
            # transactional: a failed solve must not leave the query half
            # removed while the old topology keeps answering it
            self._queries[name] = query
            activation.to_seq = None
            self._recompute_registered()
            raise
        return self

    def _recompute_registered(self) -> None:
        self._registered = frozenset(
            rel for q in self._queries.values() for rel in q.relations
        )

    @property
    def queries(self) -> Dict[str, Query]:
        """Currently installed queries by name (copy)."""
        return dict(self._queries)

    @property
    def relations(self) -> frozenset:
        """Relations registered by the installed queries."""
        return self._registered

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def push(
        self,
        relation: str,
        values: Mapping[str, object],
        ts: float,
        on_late: Optional[str] = None,
    ) -> "JoinSession":
        """Push one input tuple (unqualified attribute names) at event time
        ``ts``.  See :class:`UnknownRelationError` / :class:`LateTupleError`
        for the validation contract; ``on_late`` overrides the session's
        late-tuple policy for this push (``"raise"``, ``"drop"``, or
        ``"dead_letter"``)."""
        self._check_relation(relation)
        self._ingest(input_tuple(relation, float(ts), values), on_late)
        return self

    def push_batch(
        self,
        items: Iterable[Union[StreamTuple, Tuple[str, Mapping[str, object], float]]],
        on_late: Optional[str] = None,
    ) -> "JoinSession":
        """Push many tuples in arrival order.

        Items are either prebuilt input :class:`StreamTuple`\\ s (the
        adapter path — see :mod:`repro.streams.adapters`) or
        ``(relation, values, ts)`` triples; ``on_late`` overrides the
        session's late-tuple policy for the whole batch.
        """
        for item in items:
            if isinstance(item, StreamTuple):
                if item.width != 1:
                    raise SessionError(
                        f"can only push raw input tuples, got a {item.width}-way "
                        f"intermediate {item!r}"
                    )
                self._check_relation(item.trigger)
                self._ingest(item, on_late)
            else:
                relation, values, ts = item
                self.push(relation, values, ts, on_late)
        return self

    def _check_relation(self, relation: str) -> None:
        if relation not in self._registered:
            raise UnknownRelationError(
                f"relation {relation!r} is not read by any installed query; "
                f"registered relations: {sorted(self._registered)}"
            )

    def _ingest(self, tup: StreamTuple, on_late: Optional[str] = None) -> None:
        """Validate arrival order, deliver, then record the accepted tuple.

        The arrival-order contract is *owned by the runtime*
        (:meth:`TopologyRuntime.process`); its rejection is translated into
        :class:`LateTupleError` — or, under the ``"drop"`` late-tuple
        policy, counted in ``metrics.late_dropped`` and discarded — before
        any session state is touched.  Only the warmup path (no runtime
        yet) checks the same contract session-side against the buffered
        prefix.  Buffered tuples are tracked for *statistics* immediately
        (the warmup plan needs them) but committed to the verification
        history only as the drain processes them, so history always equals
        what the engine ingested — even if the drain fails partway.
        """
        policy = self.on_late if on_late is None else _check_on_late(on_late)
        ts = tup.trigger_ts
        if self._runtime is None:
            try:
                self._validate_order(tup.trigger, ts)
            except LateTupleError:
                if policy == "drop":
                    self._warmup_late_dropped += 1
                    return
                if policy == "dead_letter":
                    self._dead_letter(tup)
                    return
                raise
            if self._is_late_admit(tup.trigger, ts):
                self._warmup_late_admitted += 1
            self._track_order(tup.trigger, ts)
            self._loop.observe(tup)
            self._pending.append(tup)
            if self._pushed + len(self._pending) >= self.warmup:
                self._start()
        else:
            metrics = self._runtime.metrics
            if metrics.failed:
                # process() would silently drop the tuple; a facade that
                # rejects every other bad push loudly must not go quiet here
                raise EngineFailedError(
                    f"the engine has failed ({metrics.failure_reason}); "
                    f"the session no longer accepts pushes"
                )
            loop = self._loop
            if loop.epoch_length is not None and (
                int(ts // loop.epoch_length) > loop.current_epoch
            ):
                # cross any epoch boundary *before* this tuple is
                # delivered — the same ordering as AdaptiveRuntime's
                # on_input_boundary hook, so periodic decisions and
                # installs land at identical points of the feed.  Only a
                # boundary-crossing tuple pays the pre-validation (it
                # guards a rejected straggler from triggering a boundary
                # the engine would not have crossed; a straggler's ts
                # never exceeds every accepted timestamp, so it can only
                # cross one spuriously, never legitimately).
                try:
                    self._validate_order(tup.trigger, ts)
                except LateTupleError:
                    if policy == "drop":
                        metrics.on_late_drop()
                        return
                    if policy == "dead_letter":
                        self._dead_letter(tup)
                        return
                    raise
                loop.advance(ts)
            # classify *before* processing: _record raises this stream's
            # high water, which would hide the lag (a straggler's ts never
            # raises the high water, so either order is correct for the
            # rejected paths — only the admitted-late count needs this)
            late_admit = self._is_late_admit(tup.trigger, ts)
            try:
                self._runtime.process(tup)
            except LateArrivalError as exc:
                # only the arrival-order rejection is translated/suppressed
                # — it precedes any state mutation, so a rejected tuple
                # leaves both engine and session untouched; any other error
                # from the cascade propagates unswallowed
                if policy == "drop":
                    metrics.on_late_drop()
                    return
                if policy == "dead_letter":
                    self._dead_letter(tup)
                    return
                raise LateTupleError(str(exc)) from exc
            if late_admit:
                metrics.on_late_admit()
            self._record(tup)
            if metrics.failed:
                # this push was fully processed (and recorded) but tipped
                # the engine over the limit — surface it immediately
                raise EngineFailedError(
                    f"the engine failed processing this push "
                    f"({metrics.failure_reason})"
                )

    def _validate_order(self, relation: str, ts: float) -> None:
        try:
            validate_arrival(
                relation,
                ts,
                self._last_ts,
                self._stream_high,
                self._runtime_config.disorder_bound,
            )
        except ValueError as exc:
            raise LateTupleError(str(exc)) from exc

    def _is_late_admit(self, relation: str, ts: float) -> bool:
        """True iff an (accepted) push lags its stream's high water beyond
        ``disorder_bound`` — i.e. it rode the ``allowed_lateness`` grace."""
        if self.allowed_lateness <= 0 or self.disorder_bound is None:
            return False
        high = self._stream_high.get(relation)
        return high is not None and high - ts > self.disorder_bound

    def _dead_letter(self, tup: StreamTuple) -> None:
        """Route a beyond-lateness straggler to the dead-letter side-output.

        The tuple is never recorded in the verification history — the
        oracle automatically checks the session against exactly the
        admitted tuples — and never touches engine or statistics state.
        """
        self._dead_letters.append(tup)
        if self._runtime is not None:
            self._runtime.metrics.on_dead_letter()
        else:
            self._warmup_dead_lettered += 1
        for callback in self._dead_letter_listeners:
            callback(tup)

    def dead_letters(self) -> List[StreamTuple]:
        """Beyond-lateness stragglers routed to the side-output so far
        (``on_late="dead_letter"``), in arrival order (copy)."""
        return list(self._dead_letters)

    def on_dead_letter(
        self, callback: Callable[[StreamTuple], None]
    ) -> "JoinSession":
        """Invoke ``callback(tuple)`` for every dead-lettered straggler —
        the subscribable side of the dead-letter stream, for re-ingestion
        or offline reconciliation pipelines."""
        self._dead_letter_listeners.append(callback)
        return self

    def _record(self, tup: StreamTuple) -> None:
        """Full bookkeeping for a tuple the live runtime just ingested.

        Under ``workers > 1`` statistics are observed *shard-side* (exactly
        once globally — partitioned streams on their owning shard,
        broadcast streams on shard 0) and folded back through the loop's
        ``absorb`` at every drain, so the driver must not observe again.
        """
        if self._runtime_config.workers == 1:
            self._loop.observe(tup)
        self._commit(tup)

    def _commit(self, tup: StreamTuple) -> None:
        """Count + oracle bookkeeping for an engine-ingested tuple
        (statistics observation is :meth:`_record`'s job)."""
        ts = tup.trigger_ts
        self._pushed += 1
        if self.record_streams:
            # the oracle's inputs: the tuple history and the arrival seq of
            # each (relation, ts) — both grow with the stream, which is why
            # production sessions turn record_streams off
            key = (tup.trigger, ts)
            if key in self._seq_of:
                self._ambiguous_ts = True
            self._seq_of[key] = self._pushed
            self._history.setdefault(tup.trigger, []).append(tup)
        self._track_order(tup.trigger, ts)

    def _track_order(self, relation: str, ts: float) -> None:
        if self._first_ts is None:
            self._first_ts = ts
        self._last_ts = max(self._last_ts, ts)
        high = self._stream_high.get(relation)
        if high is None or ts > high:
            self._stream_high[relation] = ts

    def flush(self) -> "JoinSession":
        """Run any deferred micro-batch cascade to completion."""
        if self._runtime is not None:
            self._runtime.flush()
        return self

    def close(self) -> "JoinSession":
        """Release engine resources (idempotent — results stay readable,
        pushes after close are undefined).  Every runtime now implements
        the same close contract, so ``with JoinSession(...)`` behaves
        identically at ``workers=1`` (final flush) and ``workers>1``
        (final flush + worker-pool termination); plain usage without
        ``close`` stays fully supported."""
        if self._runtime is not None:
            if not self._runtime.metrics.failed:
                self._runtime.flush()
            self._runtime.close()
        return self

    def __enter__(self) -> "JoinSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self, path: Union[str, "os.PathLike[str]"]) -> "JoinSession":
        """Write a versioned snapshot of the whole session to ``path``.

        The snapshot captures everything needed to resume mid-stream with
        exact parity: construction parameters, declared statistics, the
        query lifecycle (activation intervals), the verification history
        and arrival sequences, the adaptivity loop's epoch state, the
        installed plan/topology, and a structural dump of every store
        container (docs/service.md, "Snapshot format").  Restoring via
        :meth:`restore` and finishing the feed produces results, result
        order, and metrics identical to the uninterrupted run.

        Result / dead-letter *subscribers* are not serialized — re-attach
        callbacks after restoring.  The write is atomic (temp file +
        rename), so a crash mid-checkpoint leaves any previous snapshot at
        ``path`` intact.
        """
        from .service.snapshot import write_snapshot

        write_snapshot(path, self._snapshot_state())
        return self

    @classmethod
    def restore(cls, path: Union[str, "os.PathLike[str]"]) -> "JoinSession":
        """Rebuild a session from a :meth:`checkpoint` snapshot and resume.

        The restored session accepts pushes immediately and behaves
        exactly as the checkpointed one would have: same results (and
        result order), same verification oracle, same adaptive-epoch
        schedule, same metrics (plus ``metrics.restored_tuples``).  With
        ``workers > 1`` a fresh worker pool is spawned and each shard's
        store state is reloaded structurally.
        """
        from .service.snapshot import read_snapshot

        return cls._from_snapshot_state(read_snapshot(path))

    def _snapshot_state(self) -> Dict[str, Any]:
        """The complete pickled payload behind :meth:`checkpoint`."""
        runtime = self._runtime
        if runtime is not None and not runtime.metrics.failed:
            runtime.flush()
        loop = self._loop
        plan = self._plan
        return {
            "ctor": {
                "window": self.window,
                "solver": self.solver,
                "default_rate": self.default_rate,
                "default_selectivity": self.default_selectivity,
                "disorder_bound": self.disorder_bound,
                "allowed_lateness": self.allowed_lateness,
                "on_late": self.on_late,
                "worker_transport": self._worker_transport,
                "optimizer_config": self._optimizer_config,
                "runtime_config": self._runtime_config,
                "record_streams": self.record_streams,
                "warmup": self.warmup,
                "reoptimize_every": self.reoptimize_every,
                "stats_window": self.stats_window,
            },
            "declared": {
                "rates": dict(self._declared_rates),
                "windows": dict(self._declared_windows),
                "selectivities": dict(self._declared_selectivities),
            },
            "queries": dict(self._queries),
            "lifecycle": {
                name: list(acts) for name, acts in self._lifecycle.items()
            },
            "ingest": {
                "pushed": self._pushed,
                "seq_of": dict(self._seq_of),
                "history": {
                    rel: list(tups) for rel, tups in self._history.items()
                },
                "pending": list(self._pending),
                "drops": {rel: list(v) for rel, v in self._drops.items()},
                "ambiguous_ts": self._ambiguous_ts,
                "first_ts": self._first_ts,
                "last_ts": self._last_ts,
                "stream_high": dict(self._stream_high),
                "cursors": dict(self._cursors),
                "dead_letters": list(self._dead_letters),
                "warmup_late_dropped": self._warmup_late_dropped,
                "warmup_dead_lettered": self._warmup_dead_lettered,
                "warmup_late_admitted": self._warmup_late_admitted,
            },
            "loop": {
                "current_epoch": loop.current_epoch,
                "stats": loop.stats,
                "closed": list(loop.closed),
                "pending": dict(loop.pending),
            },
            "plan": plan,
            "plan_signature": plan_signature(plan) if plan is not None else None,
            "catalog": self._catalog,
            "topology": runtime.topology if runtime is not None else None,
            "windows": dict(runtime.windows) if runtime is not None else None,
            "engine": runtime.dump_state() if runtime is not None else None,
        }

    @classmethod
    def _from_snapshot_state(cls, payload: Mapping[str, Any]) -> "JoinSession":
        """Rebuild a session object from a :meth:`_snapshot_state` payload."""
        plan = payload["plan"]
        if plan is not None and plan_signature(plan) != payload["plan_signature"]:
            raise SessionError(
                "snapshot is internally inconsistent: the saved plan does "
                "not match its recorded signature"
            )
        ctor = payload["ctor"]
        session = cls(
            window=ctor["window"],
            solver=ctor["solver"],
            default_rate=ctor["default_rate"],
            default_selectivity=ctor["default_selectivity"],
            disorder_bound=ctor["disorder_bound"],
            allowed_lateness=ctor["allowed_lateness"],
            on_late=ctor["on_late"],
            worker_transport=ctor["worker_transport"],
            optimizer_config=ctor["optimizer_config"],
            runtime_config=ctor["runtime_config"],
            record_streams=ctor["record_streams"],
            warmup=ctor["warmup"],
            reoptimize_every=ctor["reoptimize_every"],
            stats_window=ctor["stats_window"],
        )
        declared = payload["declared"]
        session._declared_rates = dict(declared["rates"])
        session._declared_windows = dict(declared["windows"])
        session._declared_selectivities = dict(declared["selectivities"])
        session._queries = dict(payload["queries"])
        session._lifecycle = {
            name: list(acts) for name, acts in payload["lifecycle"].items()
        }
        session._recompute_registered()
        ingest = payload["ingest"]
        session._pushed = ingest["pushed"]
        session._seq_of = dict(ingest["seq_of"])
        session._history = {
            rel: list(tups) for rel, tups in ingest["history"].items()
        }
        session._pending = list(ingest["pending"])
        session._drops = {rel: list(v) for rel, v in ingest["drops"].items()}
        session._ambiguous_ts = ingest["ambiguous_ts"]
        session._first_ts = ingest["first_ts"]
        session._last_ts = ingest["last_ts"]
        session._stream_high = dict(ingest["stream_high"])
        session._cursors = dict(ingest["cursors"])
        session._dead_letters = list(ingest["dead_letters"])
        session._warmup_late_dropped = ingest["warmup_late_dropped"]
        session._warmup_dead_lettered = ingest["warmup_dead_lettered"]
        session._warmup_late_admitted = ingest["warmup_late_admitted"]
        loop_state = payload["loop"]
        loop = session._loop
        loop.current_epoch = loop_state["current_epoch"]
        loop.stats = loop_state["stats"]
        loop.closed.clear()
        loop.closed.extend(loop_state["closed"])
        loop.pending = dict(loop_state["pending"])
        session._plan = plan
        session._catalog = payload["catalog"]
        engine_state = payload["engine"]
        if engine_state is None:
            # checkpointed before the first plan (warmup still buffering):
            # the restored _pending drains through _start on the next push
            return session
        topology = payload["topology"]
        windows = dict(payload["windows"])
        runtime: Union[_SessionRuntime, _SessionShardedRuntime]
        if session._runtime_config.workers > 1:
            runtime = _SessionShardedRuntime(
                topology,
                windows,
                session._runtime_config,
                session._listeners,
                session._worker_transport,
                session._loop.absorb,
            )
        else:
            runtime = _SessionRuntime(
                topology, windows, session._runtime_config, session._listeners
            )
        runtime.load_state(engine_state)
        session._runtime = runtime
        # seed the controller exactly as _start does, so every later
        # decision — epoch boundary, churn, explicit reoptimize — flows
        # through the same loop → controller.decide → install path
        queries = [session._queries[name] for name in sorted(session._queries)]
        catalog = session._catalog
        if catalog is None:
            catalog = session._build_catalog(queries)
        controller = AdaptiveController(
            catalog,
            queries,
            session._optimizer_config,
            solver=choose_solver(queries, session.solver),
        )
        controller.current_plan = plan
        controller.current_signature = (
            plan_signature(plan) if plan is not None else None
        )
        controller._dirty = False
        session._controller = controller
        session._loop.bind(controller, cluster=session._optimizer_config.cluster)
        session._loop.attach(runtime)
        if session._runtime_config.workers > 1:
            session._loop.pre_decide = runtime.flush
        return session

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def results(self, name: str) -> List[StreamTuple]:
        """All results produced so far for ``name`` (flushes first).

        Works for removed queries too — their outputs stay readable for the
        session's lifetime."""
        self._check_known(name)
        if self._runtime is None:
            return []
        self._runtime.flush()
        return list(self._runtime.outputs.get(name, []))

    def take(self, name: str) -> List[StreamTuple]:
        """Results produced since the last :meth:`take` (an iterator-style
        cursor per query; flushes first).  Only the new tail is copied, so
        polling stays linear over a session's lifetime."""
        self._check_known(name)
        if self._runtime is None:
            return []
        self._runtime.flush()
        out = self._runtime.outputs.get(name, [])
        cursor = self._cursors.get(name, 0)
        self._cursors[name] = len(out)
        return out[cursor:]

    def subscribe(self, name: str, callback: Callable[[StreamTuple], None]) -> "JoinSession":
        """Invoke ``callback(result)`` for every result of query ``name``.

        Callbacks fire when cascades execute, which micro-batching may defer
        until the next relation switch or :meth:`flush`.
        """
        self._check_known(name)
        self._listeners.setdefault(name, []).append(callback)
        return self

    def _check_known(self, name: str) -> None:
        if name not in self._lifecycle:
            raise UnknownQueryError(
                f"query {name!r} was never installed in this session; "
                f"known queries: {sorted(self._lifecycle)}"
            )

    # ------------------------------------------------------------------
    # planning / rewiring
    # ------------------------------------------------------------------
    def start(self) -> "JoinSession":
        """Force planning now (otherwise the first push triggers it)."""
        if not self._queries:
            raise SessionError("cannot start a session with no queries")
        if self._runtime is None:
            self._start()
        return self

    def reoptimize(self) -> Optional[DecisionRecord]:
        """Consult the optimizer now against the freshest statistics.

        Routes through the same :class:`AdaptivityLoop` as
        ``reoptimize_every`` epochs and query churn: if the measured
        statistics change the optimal shared plan, the new topology is
        installed immediately through the live-rewire path (state
        migration + backfill, ``store_backend="auto"`` reselection); an
        unchanged plan installs nothing.  Returns the
        :class:`~repro.core.adaptive.DecisionRecord` (also appended to
        ``metrics.decisions``), or ``None`` when this call produced the
        *first* plan (initial planning is not a decision).
        """
        if not self._queries:
            raise SessionError("cannot reoptimize a session with no queries")
        self._end_warmup()
        if self._runtime is None:
            self._start()
            return None
        self._runtime.flush()
        controller = self._controller
        queries = [self._queries[name] for name in sorted(self._queries)]
        controller.solver = choose_solver(queries, self.solver)
        old = self._runtime.topology
        catalog = self._build_catalog(queries)
        now = self._last_ts if self._last_ts != float("-inf") else 0.0
        record = self._loop.rewire(
            now=now, windows=self._windows_map(), measured=catalog
        )
        if record is not None and record.changed:
            switch = self._runtime.switches[-1]
            self._plan, self._catalog = controller.current_plan, catalog
            for store_id in switch.removed_stores:
                if old.stores[store_id].mir.is_input:
                    self._drops.setdefault(store_id, []).append(self._pushed)
        return record

    def _end_warmup(self) -> None:
        """Query churn ends a warmup early: the buffered prefix must run
        under the *pre-churn* query set, or activation intervals would lie
        (a query removed mid-warmup would lose its results, one added
        mid-warmup would claim tuples pushed before its arrival)."""
        if self._runtime is None and self._pending:
            self._start()

    def _start(self) -> None:
        if not self._queries:
            return
        plan, catalog, topology = self._optimize()
        if self._runtime_config.workers > 1:
            self._runtime = _SessionShardedRuntime(
                topology,
                self._windows_map(),
                self._runtime_config,
                self._listeners,
                self._worker_transport,
                self._loop.absorb,
            )
        else:
            self._runtime = _SessionRuntime(
                topology,
                self._windows_map(),
                self._runtime_config,
                self._listeners,
            )
        # stragglers handled while warming up belong to the same counters
        if self._warmup_late_dropped:
            self._runtime.metrics.on_late_drop(self._warmup_late_dropped)
        if self._warmup_dead_lettered:
            self._runtime.metrics.on_dead_letter(self._warmup_dead_lettered)
        if self._warmup_late_admitted:
            self._runtime.metrics.on_late_admit(self._warmup_late_admitted)
        self._plan, self._catalog = plan, catalog
        # seed the controller with the plan just deployed: every later
        # decision — epoch boundary, query churn, explicit reoptimize —
        # flows through the one loop → controller.decide → install path
        queries = [self._queries[name] for name in sorted(self._queries)]
        controller = AdaptiveController(
            catalog,
            queries,
            self._optimizer_config,
            solver=choose_solver(queries, self.solver),
        )
        controller.current_plan = plan
        controller.current_signature = plan_signature(plan)
        controller._dirty = False
        self._controller = controller
        self._loop.bind(controller, cluster=self._optimizer_config.cluster)
        self._loop.attach(self._runtime)
        if self._runtime_config.workers > 1:
            # epoch boundaries must see every already-shipped tuple's
            # statistics: drain the workers before the loop decides
            self._loop.pre_decide = self._runtime.flush
        # the drain below re-delivers the buffered prefix tuple-by-tuple
        # and re-observes statistics on the way (driver-side at workers=1,
        # shard-side otherwise, via _record) — drop the buffer-time
        # accumulator or every warmup tuple would be counted twice, and
        # epoch boundaries crossed mid-drain would misattribute tuples
        self._loop.stats = EpochStatistics(epoch=self._loop.stats.epoch)
        pending, self._pending = self._pending, []
        for tup in pending:
            if self._loop.epoch_length is not None:
                self._loop.advance(tup.trigger_ts)
            self._runtime.process(tup)
            # record per processed tuple so the verification history equals
            # exactly what the engine ingested, even if the drain dies here
            self._record(tup)
            if self._runtime.metrics.failed:
                # the documented loud-failure contract holds for buffered
                # pushes too: the warmup-ending call must not return as if
                # the whole prefix were ingested
                raise EngineFailedError(
                    f"the engine failed draining the warmup buffer "
                    f"({self._runtime.metrics.failure_reason})"
                )

    def _replan(self) -> None:
        """Re-optimize the shared plan and rewire the live runtime.

        Query churn rides the same :class:`AdaptivityLoop` path as epoch
        re-optimization: the controller's query set is synced (marking it
        dirty, so a topology is always produced), the freshest observed
        statistics are folded into the measured catalog, and the install
        goes through the one ``loop.install`` funnel.
        """
        if self._runtime is None:
            return
        self._runtime.flush()
        old = self._runtime.topology
        controller = self._controller
        queries = [self._queries[name] for name in sorted(self._queries)]
        saved = (dict(controller.queries), controller._dirty)
        now = self._last_ts if self._last_ts != float("-inf") else 0.0
        try:
            controller.queries = {q.name: q for q in queries}
            controller._dirty = True
            controller.solver = choose_solver(queries, self.solver)
            catalog = self._build_catalog(queries)
            self._loop.rewire(
                now=now, windows=self._windows_map(), measured=catalog
            )
        except Exception:
            # transactional: a failed solve must leave the controller (and
            # the still-running topology) exactly as they were
            controller.queries, controller._dirty = saved
            raise
        record = self._runtime.switches[-1]
        # introspection state only after a successful install, so a failed
        # replan never reports a plan that is not actually running
        self._plan, self._catalog = controller.current_plan, catalog
        # dropped *input* stores lose their windowed tuples for good (MIR
        # stores are re-derivable via backfill); remember the cut so the
        # verification oracle stops expecting results that would need them
        for store_id in record.removed_stores:
            if old.stores[store_id].mir.is_input:
                self._drops.setdefault(store_id, []).append(self._pushed)

    def _optimize(self) -> Tuple[SharedPlan, StatisticsCatalog, Topology]:
        queries = [self._queries[name] for name in sorted(self._queries)]
        catalog = self._build_catalog(queries)
        solver = choose_solver(queries, self.solver)
        optimizer = MultiQueryOptimizer(catalog, self._optimizer_config, solver=solver)
        result = optimizer.optimize(queries)
        topology = build_topology(result.plan, catalog, self._optimizer_config.cluster)
        return result.plan, catalog, topology

    def _build_catalog(self, queries: Sequence[Query]) -> StatisticsCatalog:
        """Catalog from the loop's current statistics snapshot.

        With ``reoptimize_every=None`` the loop keeps one unbounded epoch,
        so this is the legacy session-long measurement; with epochs the
        snapshot covers the retained ``stats_window`` plus the live epoch
        — a churn rewire folds the *freshest* observations, not a
        session-long blob.
        """
        return self._catalog_from(
            queries, self._loop.snapshot(), self._loop.elapsed()
        )

    def _measured_catalog(
        self, stats: EpochStatistics, elapsed: Optional[float]
    ) -> StatisticsCatalog:
        """The loop's ``measure`` hook: same layering as every session
        catalog (defaults → observed → declared overrides)."""
        queries = [self._queries[name] for name in sorted(self._queries)]
        catalog = self._catalog_from(queries, stats, elapsed)
        self._last_measured = catalog
        return catalog

    def _on_plan_change(self) -> None:
        """An epoch-boundary decision changed the plan: refresh the
        introspection state (:attr:`plan` / :attr:`catalog`)."""
        if self._controller is not None:
            self._plan = self._controller.current_plan
            self._catalog = self._last_measured

    def _catalog_from(
        self,
        queries: Sequence[Query],
        stats: EpochStatistics,
        elapsed: Optional[float],
    ) -> StatisticsCatalog:
        """Catalog = defaults, then observed statistics, then declared
        overrides — the single estimator is
        :meth:`EpochStatistics.fold_into` over ``elapsed`` event time."""
        base = StatisticsCatalog(
            default_selectivity=self.default_selectivity,
            default_window=self.window,
        )
        relations = sorted({r for q in queries for r in q.relations})
        for rel in relations:
            base.with_rate(rel, self.default_rate)
            base.with_window(rel, self._window_of(rel))
        catalog = stats.fold_into(base, queries, elapsed) if elapsed else base
        for rel in relations:
            rate = self._declared_rates.get(rel)
            if rate is not None:
                catalog.with_rate(rel, rate)
        for pred, sel in self._declared_selectivities.items():
            catalog.with_selectivity(pred, sel)
        return catalog

    def _window_of(self, relation: str) -> float:
        return self._declared_windows.get(relation, self.window)

    def _windows_map(self) -> Dict[str, float]:
        return {rel: self._window_of(rel) for rel in sorted(self._registered)}

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(self, raise_on_mismatch: bool = False) -> VerificationReport:
        """Check every query ever installed against the brute-force oracle.

        For each activation of each query the reference join is computed
        over the recorded input history and *restricted to the activation's
        arrival interval*: a result is expected iff its last-arriving
        component (max arrival sequence over the components) was pushed
        while the query was installed — and iff every component was still
        *stored* at that point (a rewire that released an input store drops
        its windowed tuples for good; results needing them are not
        expected, matching :meth:`add_query`'s documented semantics).
        Assumes per-relation event
        timestamps are distinct (the synthetic generators guarantee this);
        duplicate ``(relation, ts)`` pushes make the seq lookup ambiguous.
        A warmup still buffering is drained first (the comparison needs the
        runtime's results, so verification ends the warmup early).
        """
        if not self.record_streams:
            raise SessionError(
                "verify() needs the input history; construct the session "
                "with record_streams=True"
            )
        if self._ambiguous_ts and (
            self._drops
            or any(
                act.from_seq > 0 or act.to_seq is not None
                for acts in self._lifecycle.values()
                for act in acts
            )
        ):
            # seq lookups are by (relation, event ts); duplicates make the
            # interval/drop restriction silently wrong — refuse loudly.
            # Without churn every activation covers all seqs, so duplicate
            # timestamps are harmless and verification proceeds.
            raise SessionError(
                "two pushes of one relation shared an event timestamp, so "
                "the arrival-seq oracle cannot attribute results to "
                "add/remove intervals; verify() needs distinct per-relation "
                "timestamps when the query set changes mid-stream"
            )
        self._end_warmup()
        self.flush()
        report = VerificationReport()
        # the reference join is the expensive part; activations of the same
        # query (remove + re-add churn) share one computation and only
        # re-filter by their arrival interval
        reference_cache: Dict[Query, List[Tuple[Tuple, int, tuple]]] = {}
        for name, activations in self._lifecycle.items():
            expected = set()
            for act in activations:
                keyed = reference_cache.get(act.query)
                if keyed is None:
                    windows = {
                        rel: self._window_of(rel) for rel in act.query.relations
                    }
                    keyed = []
                    for res in reference_join(act.query, self._history, windows):
                        comps = tuple(
                            (rel, self._seq_of.get((rel, ts), 0))
                            for rel, ts in res.timestamps.items()
                        )
                        keyed.append(
                            (res.key(), max(c for _, c in comps), comps)
                        )
                    reference_cache[act.query] = keyed
                for key, seq, comps in keyed:
                    if act.contains(seq) and self._components_stored(comps, seq):
                        expected.add(key)
            produced = result_keys(
                self._runtime.outputs.get(name, []) if self._runtime else []
            )
            ok = expected == produced
            report.checks[name] = QueryCheck(
                name=name,
                ok=ok,
                expected=len(expected),
                produced=len(produced),
                diff="" if ok else describe_result_diff(expected, produced),
            )
        if raise_on_mismatch and not report.ok:
            raise AssertionError(
                "session diverged from the reference:\n" + report.describe()
            )
        return report

    def _components_stored(self, comps: tuple, trigger_seq: int) -> bool:
        """True iff every component was still in its store at the trigger.

        A component pushed at seq ``c`` is gone for a result triggered at
        seq ``s`` iff its relation's input store was released at some drop
        point ``d`` with ``c <= d < s``.
        """
        if not self._drops:
            return True
        for rel, c in comps:
            for d in self._drops.get(rel, ()):
                if c <= d < trigger_seq:
                    return False
        return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def plan(self) -> Optional[SharedPlan]:
        """The most recently installed shared plan (None before planning)."""
        return self._plan

    @property
    def topology(self) -> Optional[Topology]:
        return self._runtime.topology if self._runtime is not None else None

    @property
    def catalog(self) -> Optional[StatisticsCatalog]:
        """The catalog the current plan was optimized against."""
        return self._catalog

    @property
    def metrics(self) -> Optional[EngineMetrics]:
        return self._runtime.metrics if self._runtime is not None else None

    @property
    def decisions(self) -> List[DecisionRecord]:
        """Every optimizer consultation routed through the adaptivity loop
        (periodic epochs, query churn, explicit :meth:`reoptimize`)."""
        return (
            list(self._runtime.metrics.decisions)
            if self._runtime is not None
            else []
        )

    @property
    def rewires(self) -> List[SwitchRecord]:
        """Topology switches installed by online add/remove.

        The initial deployment is not a rewire (nothing to migrate), so a
        session that never churned has an empty log.
        """
        return list(self._runtime.switches) if self._runtime is not None else []

    @property
    def pushed(self) -> int:
        """Number of tuples pushed so far (including a buffering warmup)."""
        return self._pushed + len(self._pending)

    def stored_tuples(self) -> int:
        """Live tuples currently held across all store tasks."""
        return (
            self._runtime.stored_tuples_total() if self._runtime is not None else 0
        )

    def describe(self) -> str:
        """Human-readable snapshot: plan objective, topology, traffic."""
        lines = [
            f"JoinSession: {len(self._queries)} queries "
            f"{sorted(self._queries)}, {self._pushed} tuples pushed"
        ]
        if self._plan is not None:
            lines.append(f"plan objective: {self._plan.objective:g}")
            lines.append(self._plan.describe())
        if self.topology is not None:
            lines.append(self.topology.describe())
        return "\n".join(lines)
