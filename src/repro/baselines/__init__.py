"""Baseline strategies: what Flink/Storm would do without CLASH-MQO.

* :func:`binary_plan` — left-deep binary symmetric-hash-join pipelines
  (rate-based greedy join order),
* :func:`build_strategy` — compile a workload under FI / SI / FS / SS /
  CMQO (Section VII.A's comparison grid).
"""

from .binary_plan import binary_plan, greedy_join_order
from .strategies import (
    STRATEGIES,
    StrategyResult,
    build_strategy,
    combine_topologies,
    merge_binary_plans,
)

__all__ = [
    "STRATEGIES",
    "StrategyResult",
    "binary_plan",
    "build_strategy",
    "combine_topologies",
    "greedy_join_order",
    "merge_binary_plans",
]
