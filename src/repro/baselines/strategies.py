"""The five execution strategies of the paper's multi-query experiment.

Section VII.A compares:

* **FI** — Flink Independent: one binary-pipeline job per query,
* **SI** — Storm Independent: same plans, Storm cost profile,
* **FS** — Flink Shared: per-query binary plans with identical subplans
  (input stores, prefix intermediates) executed once and shared,
* **SS** — Storm Shared: likewise on Storm,
* **CMQO** — CLASH-MQO: the global ILP optimization of this paper.

Every strategy compiles to a single :class:`~repro.core.topology.Topology`
runnable on the simulated engine: independent strategies use a *disjoint
union* of per-query topologies (duplicated stores — the paper's 3.1× / 5.3×
memory overhead emerges from exactly this duplication), shared strategies
merge per-query plans so structurally identical stores and probe-order
prefixes coincide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.catalog import StatisticsCatalog
from ..core.ilp_builder import OptimizerConfig
from ..core.optimizer import MultiQueryOptimizer
from ..core.partitioning import ClusterConfig
from ..core.plan import SharedPlan
from ..core.query import Query
from ..core.topology import Topology, build_topology
from ..engine.profiles import (
    CLASH_PROFILE,
    FLINK_PROFILE,
    STORM_PROFILE,
    EngineProfile,
)
from .binary_plan import binary_plan

__all__ = ["STRATEGIES", "StrategyResult", "build_strategy", "combine_topologies"]

STRATEGIES = ("FI", "SI", "FS", "SS", "CMQO")

_PROFILES: Dict[str, EngineProfile] = {
    "FI": FLINK_PROFILE,
    "FS": FLINK_PROFILE,
    "SI": STORM_PROFILE,
    "SS": STORM_PROFILE,
    "CMQO": CLASH_PROFILE,
}


@dataclass
class StrategyResult:
    """A compiled strategy: the deployable topology plus metadata."""

    strategy: str
    topology: Topology
    profile: EngineProfile
    plans: List[SharedPlan]
    probe_cost: float

    @property
    def num_stores(self) -> int:
        return len(self.topology.stores)


def build_strategy(
    strategy: str,
    queries: Sequence[Query],
    catalog: StatisticsCatalog,
    cluster: Optional[ClusterConfig] = None,
    optimizer_config: Optional[OptimizerConfig] = None,
    solver: str = "auto",
) -> StrategyResult:
    """Compile ``queries`` under one of the five strategies."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")
    cluster = cluster or ClusterConfig()
    profile = _PROFILES[strategy]

    if strategy == "CMQO":
        config = optimizer_config or OptimizerConfig(cluster=cluster)
        optimizer = MultiQueryOptimizer(catalog, config, solver=solver)
        result = optimizer.optimize(list(queries))
        topology = build_topology(result.plan, catalog, cluster)
        return StrategyResult(
            strategy=strategy,
            topology=topology,
            profile=profile,
            plans=[result.plan],
            probe_cost=result.plan.objective,
        )

    plans = [binary_plan(q, catalog, cluster) for q in queries]

    if strategy in ("FI", "SI"):
        topologies = [build_topology(p, catalog, cluster) for p in plans]
        topology = combine_topologies(
            topologies, prefixes=[q.name for q in queries]
        )
        probe_cost = sum(p.objective for p in plans)
    else:  # FS / SS: merge plans so identical subplans are shared
        merged = merge_binary_plans(plans, catalog, cluster)
        topology = build_topology(merged, catalog, cluster)
        probe_cost = merged.objective

    return StrategyResult(
        strategy=strategy,
        topology=topology,
        profile=profile,
        plans=plans,
        probe_cost=probe_cost,
    )


def merge_binary_plans(
    plans: List[SharedPlan],
    catalog: StatisticsCatalog,
    cluster: ClusterConfig,
) -> SharedPlan:
    """Naive sharing: union per-query plans, deduplicating identical groups.

    Identical maintenance groups (same MIR, same starting relation) and
    identical stores coincide by construction of their canonical ids — the
    "common subplans being executed only once" of Section VII.A.  Conflicting
    partitioning choices are resolved first-plan-wins; a subplan partitioned
    differently by two queries stays unshared, as a naive sharing layer
    (which does not re-plan) would leave it.
    """
    from ..core.cost import probe_order_steps

    chosen: Dict[str, object] = {}
    partitioning: Dict[str, Optional[str]] = {}
    stores_used = {}
    queries: List[Query] = []
    for plan in plans:
        queries.extend(plan.queries)
        for group, info in plan.chosen.items():
            chosen.setdefault(group, info)
        for store_id, attr in plan.partitioning.items():
            partitioning.setdefault(store_id, attr)
        stores_used.update(plan.stores_used)

    # Objective: each shared step is paid once (union over selected orders).
    step_costs: Dict[str, float] = {}
    for info in chosen.values():
        for step in probe_order_steps(catalog, info.query, info.decorated, cluster):
            step_costs[step.key] = step.cost

    return SharedPlan(
        queries=tuple(queries),
        chosen=chosen,
        partitioning=partitioning,
        objective=sum(step_costs.values()),
        stores_used=stores_used,
    )


def combine_topologies(
    topologies: List[Topology], prefixes: List[str]
) -> Topology:
    """Disjoint union of topologies (independent strategies).

    Store ids and edge labels are namespaced per query so *nothing* is
    shared: every query keeps private copies of every store.  Ingest is
    keyed by input relation and fans out to all member topologies.
    """
    stores = {}
    edges = {}
    rulesets: Dict[str, Dict[str, list]] = {}
    ingest: Dict[str, List[str]] = {}
    queries = {}

    for topo, prefix in zip(topologies, prefixes):
        s_map = {sid: f"{prefix}::{sid}" for sid in topo.stores}
        e_map = {label: f"{prefix}::{label}" for label in topo.edges}
        for sid, spec in topo.stores.items():
            stores[s_map[sid]] = _rename_store(spec, s_map[sid])
        for label, edge in topo.edges.items():
            edges[e_map[label]] = _rename_edge(edge, e_map[label], s_map)
        for sid, ruleset in topo.rulesets.items():
            out = rulesets.setdefault(s_map[sid], {})
            for label, rules in ruleset.items():
                out[e_map[label]] = [_rename_rule(r, e_map) for r in rules]
        for relation, labels in topo.ingest.items():
            ingest.setdefault(relation, []).extend(e_map[l] for l in labels)
        queries.update(topo.queries)

    return Topology(
        stores=stores,
        edges=edges,
        rulesets=rulesets,
        ingest=ingest,
        queries=queries,
    )


def _rename_store(spec, new_id):
    from ..core.topology import StoreSpec

    return StoreSpec(
        store_id=new_id,
        mir=spec.mir,
        partition_attr=spec.partition_attr,
        parallelism=spec.parallelism,
        retention=spec.retention,
    )


def _rename_edge(edge, new_label, s_map):
    from ..core.topology import EdgeSpec

    return EdgeSpec(
        label=new_label,
        target_store=s_map[edge.target_store],
        route_by=edge.route_by,
    )


def _rename_rule(rule, e_map):
    from ..core.topology import ProbeRule, StoreRule

    if isinstance(rule, StoreRule):
        return rule
    return ProbeRule(
        predicates=rule.predicates,
        out_edges=tuple(e_map[l] for l in rule.out_edges),
        outputs=rule.outputs,
    )
