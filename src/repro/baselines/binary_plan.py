"""Binary (left-deep) join pipelines: what Flink/Storm run natively.

The paper's baselines execute each query as a chain of binary symmetric
hash joins — "static joining ordering, like used in all currently available
streaming systems" (Section VII.D).  A left-deep pipeline over the order
``[R1, R2, ..., Rn]`` materializes every prefix intermediate:

* ``R1`` probes ``R2``'s store, the result is stored in the ``R1R2`` store
  and continues probing ``R3``, and so on;
* ``Rk`` (k ≥ 3) probes the materialized prefix store ``P_{k-1}`` and
  continues right-to-left.

This maps exactly onto the reproduction's plan machinery: user probe orders
through singles/prefix-MIR stores plus maintenance orders delivering every
prefix.  The join order is chosen with the classic rate-based greedy
(smallest estimated intermediate first — Viglas/Naughton style), which is
what the paper's baselines would do with static statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.catalog import StatisticsCatalog
from ..core.cost import probe_order_steps
from ..core.ilp_builder import CandidateInfo, maintenance_group, user_group
from ..core.mir import Mir, input_mir
from ..core.partitioning import ClusterConfig, DecoratedProbeOrder
from ..core.plan import SharedPlan
from ..core.probe_order import ProbeOrder, maintenance_query
from ..core.query import Query
from ..core.schema import Attribute

__all__ = ["greedy_join_order", "binary_plan"]


def greedy_join_order(query: Query, catalog: StatisticsCatalog) -> List[str]:
    """Rate-based left-deep order: cheapest connected extension first."""
    best_pair: Optional[Tuple[float, Tuple[str, str]]] = None
    for pred in sorted(query.predicates):
        a, b = sorted(pred.relations)
        card = catalog.join_cardinality({a, b}, query.predicates)
        key = (card, (a, b))
        if best_pair is None or key < best_pair:
            best_pair = key
    assert best_pair is not None
    order = list(best_pair[1])
    remaining = [r for r in query.relations if r not in order]
    while remaining:
        best: Optional[Tuple[float, str]] = None
        for rel in remaining:
            if not query.predicates_between(order, {rel}):
                continue
            card = catalog.join_cardinality(set(order) | {rel}, query.predicates)
            key = (card, rel)
            if best is None or key < best:
                best = key
        assert best is not None, "query is connected"
        order.append(best[1])
        remaining.remove(best[1])
    return order


def _prefix_mir(query: Query, order: List[str], k: int) -> Mir:
    """MIR over the first ``k`` relations of the pipeline order."""
    rels = frozenset(order[:k])
    return Mir(relations=rels, predicates=query.predicates_within(rels))


def _partition_for_next(
    query: Query, prefix: List[str], next_relation: Optional[str]
) -> Optional[Attribute]:
    """Key the prefix store by an attribute joining it with the next input."""
    if next_relation is None:
        return None
    preds = sorted(query.predicates_between(prefix, {next_relation}))
    if not preds:
        return None
    pred = preds[0]
    inner = (
        pred.left if pred.left.relation in prefix else pred.right
    )
    return inner


def binary_plan(
    query: Query,
    catalog: StatisticsCatalog,
    cluster: Optional[ClusterConfig] = None,
) -> SharedPlan:
    """A left-deep binary pipeline for one query, as a :class:`SharedPlan`."""
    cluster = cluster or ClusterConfig()
    order = greedy_join_order(query, catalog)
    n = len(order)

    # Stores: inputs + every strict prefix intermediate of size >= 2.
    singles = {rel: input_mir(rel) for rel in order}
    prefixes: Dict[int, Mir] = {
        k: _prefix_mir(query, order, k) for k in range(2, n)
    }

    # Partitioning: a store is keyed by an attribute joining it with the
    # pipeline stage that probes it (classic keyed binary hash join).
    partitioning: Dict[str, Optional[str]] = {}
    for idx, rel in enumerate(order):
        probers = [order[1]] if idx == 0 else order[:idx]
        preds = sorted(query.predicates_between([rel], probers))
        attr = preds[0].attribute_of(rel) if preds else None
        partitioning[rel] = str(attr) if attr is not None else None
    for k, mir in prefixes.items():
        nxt = order[k] if k < n else None
        attr = _partition_for_next(query, order[:k], nxt)
        partitioning[mir.canonical_id] = str(attr) if attr is not None else None

    chosen: Dict[str, CandidateInfo] = {}

    def add_candidate(
        group: str,
        sub_query: Query,
        start: str,
        sequence: List[Mir],
        target: Optional[Mir],
    ) -> None:
        order_obj = ProbeOrder(
            query_name=sub_query.name,
            start=input_mir(start),
            sequence=tuple(sequence),
            target=target,
        )
        decorated = DecoratedProbeOrder(
            order=order_obj,
            partitions=tuple(
                _attr_or_none(partitioning.get(m.canonical_id)) for m in sequence
            ),
        )
        steps = probe_order_steps(catalog, sub_query, decorated, cluster)
        activates = tuple(
            maintenance_group(m, rel)
            for m in sequence
            if not m.is_input
            for rel in sorted(m.relations)
        )
        chosen[group] = CandidateInfo(
            name=f"binary[{group}]",
            group=group,
            decorated=decorated,
            query=sub_query,
            step_keys=tuple(s.key for s in steps),
            commitments=decorated.commitments(),
            activates=activates,
            pcost=sum(s.cost for s in steps),
        )

    def pipeline_tail(k: int) -> List[Mir]:
        """Remaining singles to probe after covering the first k relations."""
        return [singles[rel] for rel in order[k:]]

    # User probe orders.
    for idx, rel in enumerate(order):
        if idx == 0:
            sequence = [singles[order[1]]] + pipeline_tail(2)
        elif idx == 1:
            sequence = [singles[order[0]]] + pipeline_tail(2)
        else:
            sequence = [prefixes[idx]] + pipeline_tail(idx + 1)
        add_candidate(user_group(query.name, rel), query, rel, sequence, None)

    # Maintenance orders for every prefix store.
    for k, mir in prefixes.items():
        sub = maintenance_query(mir)
        for idx in range(k):
            rel = order[idx]
            if idx == 0:
                sequence = [singles[order[1]]] + pipeline_tail(2)[: k - 2]
            elif idx == 1:
                sequence = [singles[order[0]]] + pipeline_tail(2)[: k - 2]
            else:
                sequence = [prefixes[idx]] + pipeline_tail(idx + 1)[: k - idx - 1]
            add_candidate(
                maintenance_group(mir, rel), sub, rel, sequence, mir
            )

    stores_used = {m.canonical_id: m for m in singles.values()}
    stores_used.update({m.canonical_id: m for m in prefixes.values()})

    step_costs: Dict[str, float] = {}
    for info in chosen.values():
        for step in probe_order_steps(catalog, info.query, info.decorated, cluster):
            step_costs[step.key] = step.cost
    objective = sum(step_costs.values())

    return SharedPlan(
        queries=(query,),
        chosen=chosen,
        partitioning=partitioning,
        objective=objective,
        stores_used=stores_used,
    )


def _attr_or_none(qualified: Optional[str]) -> Optional[Attribute]:
    return Attribute.parse(qualified) if qualified else None
