"""Statistics catalog: arrival rates, windows, and join selectivities.

This is the cost model's data source (paper Section IV): per-relation
arrival rates (tuples per time unit), per-relation window lengths, and
per-predicate join selectivities.  The catalog estimates join cardinalities
with the classical independence assumption

    |S_1 ⋈ ... ⋈ S_j|  =  Π rate(S_i) · Π sel(p)    over the predicates p
                                                      applied within the set,

which exactly reproduces the paper's worked example in Section V.2 (rates
100, |S ⋈ T| = 150 ⇒ sel = 0.015, first-step cost 100, step costs 75/50).

Rates serve as the per-time-unit cardinality proxy used by Equation (1);
``stored_tuples`` additionally folds in the window length for memory
estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple, Union

from .predicates import JoinPredicate, as_predicate
from .query import Query
from .schema import StreamRelation

__all__ = ["StatisticsCatalog"]


def _predicate_key(predicate: JoinPredicate) -> Tuple[str, str]:
    return (str(predicate.left), str(predicate.right))


@dataclass
class StatisticsCatalog:
    """Mutable statistics store consulted by the cost model.

    All setters return ``self`` for fluent construction::

        catalog = (
            StatisticsCatalog()
            .with_relation(relation_r, rate=100.0)
            .with_selectivity(pred, 0.015)
        )
    """

    default_selectivity: float = 0.01
    default_window: float = float("inf")

    _rates: Dict[str, float] = field(default_factory=dict)
    _windows: Dict[str, float] = field(default_factory=dict)
    _selectivities: Dict[Tuple[str, str], float] = field(default_factory=dict)
    _relations: Dict[str, StreamRelation] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def with_relation(
        self,
        relation: StreamRelation,
        rate: float,
        window: Optional[float] = None,
    ) -> "StatisticsCatalog":
        if rate <= 0:
            raise ValueError(f"rate of {relation.name!r} must be positive")
        self._relations[relation.name] = relation
        self._rates[relation.name] = float(rate)
        if window is not None:
            self._windows[relation.name] = float(window)
        elif relation.window != float("inf"):
            self._windows[relation.name] = relation.window
        return self

    def with_rate(self, relation_name: str, rate: float) -> "StatisticsCatalog":
        if rate <= 0:
            raise ValueError(f"rate of {relation_name!r} must be positive")
        self._rates[relation_name] = float(rate)
        return self

    def with_window(self, relation_name: str, window: float) -> "StatisticsCatalog":
        if window <= 0:
            raise ValueError(f"window of {relation_name!r} must be positive")
        self._windows[relation_name] = float(window)
        return self

    def with_selectivity(
        self, predicate: Union[JoinPredicate, str], selectivity: float
    ) -> "StatisticsCatalog":
        if not 0 < selectivity <= 1:
            raise ValueError("selectivity must be in (0, 1]")
        key = _predicate_key(as_predicate(predicate))
        self._selectivities[key] = float(selectivity)
        return self

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def relation(self, name: str) -> Optional[StreamRelation]:
        return self._relations.get(name)

    @property
    def relations(self) -> Mapping[str, StreamRelation]:
        return dict(self._relations)

    def rate(self, relation_name: str) -> float:
        try:
            return self._rates[relation_name]
        except KeyError:
            raise KeyError(f"no rate registered for relation {relation_name!r}") from None

    def window(self, relation_name: str) -> float:
        return self._windows.get(relation_name, self.default_window)

    def selectivity(self, predicate: JoinPredicate) -> float:
        return self._selectivities.get(
            _predicate_key(predicate), self.default_selectivity
        )

    def has_rate(self, relation_name: str) -> bool:
        return relation_name in self._rates

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def join_cardinality(
        self,
        relations: Iterable[str],
        predicates: Iterable[JoinPredicate],
    ) -> float:
        """Estimated per-time-unit size of the join over ``relations``.

        Only predicates fully inside the relation set contribute; passing a
        broader predicate set is allowed for convenience.
        """
        group = set(relations)
        if not group:
            return 0.0
        card = 1.0
        for rel in group:
            card *= self.rate(rel)
        for pred in set(predicates):
            if pred.relations <= group:
                card *= self.selectivity(pred)
        return card

    def stored_tuples(self, relation_name: str, query: Optional[Query] = None) -> float:
        """Expected number of live tuples in a window-bounded store."""
        window = (
            query.window_of(relation_name, self.window(relation_name))
            if query is not None
            else self.window(relation_name)
        )
        if window == float("inf"):
            raise ValueError(
                f"cannot size store of {relation_name!r}: unbounded window"
            )
        return self.rate(relation_name) * window

    def copy(self) -> "StatisticsCatalog":
        clone = StatisticsCatalog(
            default_selectivity=self.default_selectivity,
            default_window=self.default_window,
        )
        clone._rates = dict(self._rates)
        clone._windows = dict(self._windows)
        clone._selectivities = dict(self._selectivities)
        clone._relations = dict(self._relations)
        return clone
