"""Adaptive planning: reacting to statistics and query changes (Section VI).

The :class:`AdaptiveController` is the "Decision making" box of Figure 5:
at every epoch boundary it receives the previous epoch's statistics, re-runs
the ILP optimizer, and — iff the resulting plan differs from the installed
one — emits a new topology to take effect one epoch later (statistics from
epoch *i* influence epoch *i+2*).

It also implements the query lifecycle of Section VI.B: queries can be
installed or removed at runtime; store reference counts track how many live
queries each store serves, and stores whose count drops to zero are
deregistered with the next configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .catalog import StatisticsCatalog
from .ilp_builder import OptimizerConfig
from .optimizer import MultiQueryOptimizer
from .partitioning import ClusterConfig
from .plan import SharedPlan
from .query import Query
from .topology import Topology, build_topology

__all__ = [
    "AdaptiveController",
    "DecisionRecord",
    "TopologyDiff",
    "diff_topologies",
    "plan_signature",
    "store_refcounts",
]


#: (sorted (group, decorated-order) pairs, sorted (store, attr) pairs)
PlanSignature = Tuple[
    Tuple[Tuple[str, str], ...], Tuple[Tuple[str, str], ...]
]


def plan_signature(plan: SharedPlan) -> PlanSignature:
    """Canonical fingerprint of a plan: chosen orders + partitioning.

    Two plans with the same signature deploy identical topologies, so a
    reconfiguration is only rolled out when the signature changes.
    """
    orders = tuple(
        (group, str(plan.chosen[group].decorated)) for group in sorted(plan.chosen)
    )
    parts = tuple(sorted((k, v or "") for k, v in plan.partitioning.items()))
    return (orders, parts)


def store_refcounts(plan: SharedPlan) -> Dict[str, int]:
    """Number of queries each store serves (Section VI.B refcounting)."""
    counts: Dict[str, int] = {store_id: 0 for store_id in plan.stores_used}
    for query in plan.queries:
        used: Set[str] = set()
        for group, info in plan.chosen.items():
            if group.startswith(f"q:{query.name}:"):
                for mir in info.decorated.order.stores:
                    used.add(mir.canonical_id)
                # transitively: MIRs probed imply their maintenance stores
                for mir in info.decorated.order.sequence:
                    if not mir.is_input:
                        for rel in mir.relations:
                            used.add(rel)
        for store_id in used:
            if store_id in counts:
                counts[store_id] += 1
    return counts


@dataclass(frozen=True)
class TopologyDiff:
    """Structural difference between two deployed topologies.

    The runtime's live-rewire path is driven by exactly this classification
    (Section VI.B): ``added`` stores are created (and, for MIR stores,
    backfilled), ``removed`` stores release their state, ``surviving``
    stores keep their containers in place, and ``repartitioned`` stores —
    survivors whose partitioning attribute or task count changed — migrate
    their tuples to the new task layout.
    """

    added: Tuple[str, ...]
    removed: Tuple[str, ...]
    surviving: Tuple[str, ...]
    repartitioned: Tuple[str, ...]


def diff_topologies(old: Topology, new: Topology) -> TopologyDiff:
    """Classify every store of ``old`` ∪ ``new`` for a live rewire."""
    old_ids, new_ids = set(old.stores), set(new.stores)
    surviving = sorted(old_ids & new_ids)
    repartitioned = tuple(
        store_id
        for store_id in surviving
        if old.stores[store_id].partition_attr != new.stores[store_id].partition_attr
        or old.stores[store_id].parallelism != new.stores[store_id].parallelism
    )
    return TopologyDiff(
        added=tuple(sorted(new_ids - old_ids)),
        removed=tuple(sorted(old_ids - new_ids)),
        surviving=tuple(surviving),
        repartitioned=repartitioned,
    )


@dataclass
class DecisionRecord:
    """One optimizer invocation at an epoch boundary (for inspection/tests)."""

    epoch: int
    objective: float
    changed: bool
    num_queries: int


class AdaptiveController:
    """Re-optimizes the workload from epoch statistics and query changes."""

    def __init__(
        self,
        catalog: StatisticsCatalog,
        queries: Sequence[Query],
        config: Optional[OptimizerConfig] = None,
        solver: str = "auto",
    ) -> None:
        self.base_catalog = catalog
        self.config = config or OptimizerConfig()
        self.solver = solver
        self.queries: Dict[str, Query] = {q.name: q for q in queries}
        self.current_plan: Optional[SharedPlan] = None
        self.current_signature: Optional[PlanSignature] = None
        self.decisions: List[DecisionRecord] = []
        self._dirty = True  # force a decision on first use

    # ------------------------------------------------------------------
    # query lifecycle
    # ------------------------------------------------------------------
    def add_query(self, query: Query) -> None:
        if query.name in self.queries:
            raise ValueError(f"query {query.name!r} already installed")
        self.queries[query.name] = query
        self._dirty = True

    def remove_query(self, name: str) -> None:
        if name not in self.queries:
            raise KeyError(f"query {name!r} is not installed")
        del self.queries[name]
        self._dirty = True

    @property
    def query_list(self) -> List[Query]:
        return [self.queries[name] for name in sorted(self.queries)]

    def refcounts(self) -> Dict[str, int]:
        if self.current_plan is None:
            return {}
        return store_refcounts(self.current_plan)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def initial_topology(
        self, cluster: Optional[ClusterConfig] = None
    ) -> Topology:
        """Plan and build the first deployment from the base catalog."""
        plan = self._optimize(self.base_catalog)
        return build_topology(plan, self.base_catalog, cluster or self.config.cluster)

    def decide(
        self,
        epoch: int,
        measured: StatisticsCatalog,
        cluster: Optional[ClusterConfig] = None,
    ) -> Optional[Topology]:
        """Epoch-boundary decision; returns a topology only when it changed."""
        if not self.queries:
            return None
        plan = self._optimize(measured)
        signature = plan_signature(plan)
        changed = self._dirty or signature != self.current_signature
        self.decisions.append(
            DecisionRecord(
                epoch=epoch,
                objective=plan.objective,
                changed=changed,
                num_queries=len(self.queries),
            )
        )
        if not changed:
            return None
        self.current_plan = plan
        self.current_signature = signature
        self._dirty = False
        return build_topology(plan, measured, cluster or self.config.cluster)

    def _optimize(self, catalog: StatisticsCatalog) -> SharedPlan:
        optimizer = MultiQueryOptimizer(catalog, self.config, solver=self.solver)
        result = optimizer.optimize(self.query_list)
        if self.current_plan is None:
            self.current_plan = result.plan
            self.current_signature = plan_signature(result.plan)
            self._dirty = False
        return result.plan
