"""ILP construction for multi-query probe-order optimization (Algorithm 2).

Given a workload of queries and a statistics catalog, this module
enumerates MIRs, candidate probe orders, and partitioning decorations, then
emits a 0/1 ILP:

* one binary ``x`` per decorated probe order,
* one binary ``y`` per *shared step* (probe-order prefix with identical
  decoration — Section V's crucial sharing of the same variable ``y7``),
* one binary ``z`` per (store, partitioning attribute) pair enforcing the
  paper's "each store is only partitioned according to one attribute"
  (DESIGN.md choice #1; can be disabled via ``strict_partitioning=False``),
* per (query, starting relation) group: exactly one ``x`` (Equation 2),
* per MIR probed by a chosen order: at least one maintenance probe order
  per input relation of the MIR (DESIGN.md choice #2),
* cost linking in either the paper's aggregate form (Equation 3) or the
  tighter per-step indicator form (default; DESIGN.md choice #3),
* objective: minimize the summed step costs (Equation 1 applied per step).

Alongside the :class:`repro.ilp.Model`, the builder emits the equivalent
:class:`repro.ilp.GroupedProblem` used by the greedy warm start.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..ilp.greedy import GroupedCandidate, GroupedProblem, GreedySolution
from ..ilp.model import LinExpr, Model, Variable
from .catalog import StatisticsCatalog
from .cost import StepDescription, probe_order_steps
from .mir import Mir, enumerate_mirs, merge_mirs
from .partitioning import (
    ClusterConfig,
    DecoratedProbeOrder,
    apply_partitioning,
    partition_candidates,
)
from .probe_order import (
    construct_probe_orders,
    maintenance_probe_orders,
    maintenance_query,
)
from .query import Query
from .schema import Attribute

__all__ = ["OptimizerConfig", "CandidateInfo", "MqoIlp", "build_mqo_ilp"]


@dataclass(frozen=True)
class OptimizerConfig:
    """Knobs of the MQO ILP construction.

    constraint_form:
        ``"indicator"`` emits ``y >= x`` per used step (tighter LP);
        ``"paper"`` emits the aggregate Equation-3 form
        ``-PCost(σ)·x + Σ StepCost(ρ)·y >= 0``.
    strict_partitioning:
        Add the ``z`` consistency layer; ``False`` reproduces the paper's
        printed (relaxed) formulation.
    enable_mirs:
        Allow materialized intermediate result stores; with ``False`` only
        input-relation stores are probed (no sharing via intermediates).
    """

    enable_mirs: bool = True
    mir_max_size: Optional[int] = None
    constraint_form: str = "indicator"
    strict_partitioning: bool = True
    cluster: ClusterConfig = field(default_factory=ClusterConfig)

    def __post_init__(self) -> None:
        if self.constraint_form not in ("indicator", "paper"):
            raise ValueError(f"unknown constraint form {self.constraint_form!r}")


@dataclass(frozen=True)
class CandidateInfo:
    """A decorated probe order as an ILP candidate."""

    name: str
    group: str
    decorated: DecoratedProbeOrder
    query: Query  # the (sub)query the order answers (maintenance: subquery)
    step_keys: Tuple[str, ...]
    commitments: Tuple[Tuple[str, str], ...]
    activates: Tuple[str, ...]
    pcost: float

    @property
    def is_maintenance(self) -> bool:
        return self.decorated.is_maintenance


def user_group(query_name: str, start_relation: str) -> str:
    return f"q:{query_name}:{start_relation}"


def maintenance_group(mir: Mir, start_relation: str) -> str:
    return f"m:{mir.canonical_id}:{start_relation}"


@dataclass
class MqoIlp:
    """The constructed ILP plus all bookkeeping needed for plan extraction."""

    model: Model
    grouped: GroupedProblem
    config: OptimizerConfig
    queries: Tuple[Query, ...]
    candidates: Dict[str, CandidateInfo]
    steps: Dict[str, StepDescription]
    groups: Dict[str, List[str]]
    mandatory_groups: Tuple[str, ...]
    x_vars: Dict[str, Variable]
    y_vars: Dict[str, Variable]
    z_vars: Dict[Tuple[str, str], Variable]
    store_options: Dict[str, Tuple[Optional[Attribute], ...]]
    stores: Dict[str, Mir]

    @property
    def num_probe_orders(self) -> int:
        return len(self.candidates)

    @property
    def num_variables(self) -> int:
        return self.model.num_vars

    @property
    def num_constraints(self) -> int:
        return self.model.num_constraints

    def warm_start_assignment(
        self, greedy: GreedySolution
    ) -> Dict[Variable, float]:
        """Translate a greedy selection into a feasible model assignment."""
        assignment: Dict[Variable, float] = {v: 0.0 for v in self.model.variables}
        for name in greedy.chosen:
            assignment[self.x_vars[name]] = 1.0
        selected_steps: Set[str] = set()
        for name in greedy.chosen:
            selected_steps.update(self.candidates[name].step_keys)
        for key in selected_steps:
            assignment[self.y_vars[key]] = 1.0
        committed = dict(greedy.partitioning)
        for store_id, options in self.store_options.items():
            if not _has_z(self, store_id):
                continue
            chosen_attr = committed.get(store_id)
            if chosen_attr is None:
                chosen_attr = str(options[0])
            assignment[self.z_vars[(store_id, chosen_attr)]] = 1.0
        return assignment


def _has_z(ilp: "MqoIlp", store_id: str) -> bool:
    return any(key[0] == store_id for key in ilp.z_vars)


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def build_mqo_ilp(
    queries: Sequence[Query],
    catalog: StatisticsCatalog,
    config: Optional[OptimizerConfig] = None,
) -> MqoIlp:
    """Algorithm 2: build the multi-query optimization ILP."""
    config = config or OptimizerConfig()
    queries = tuple(sorted(queries, key=lambda q: q.name))
    if not queries:
        raise ValueError("workload must contain at least one query")

    # 1. MIR universe (deduplicated structurally across queries).
    per_query_mirs = [
        enumerate_mirs(
            q,
            max_size=(config.mir_max_size if config.enable_mirs else 1),
        )
        for q in queries
    ]
    mirs = merge_mirs(per_query_mirs)
    stores = {m.canonical_id: m for m in mirs}

    # 2. Partitioning candidates per store, workload-wide.  A store deployed
    #    with a single task needs no partitioning scheme at all — collapsing
    #    its options keeps equal-cost duplicate candidates out of the ILP.
    store_options: Dict[str, Tuple[Optional[Attribute], ...]] = {
        store_id: (
            partition_candidates(mir, queries)
            if config.cluster.parallelism(mir) > 1
            else (None,)
        )
        for store_id, mir in stores.items()
    }

    candidates: Dict[str, CandidateInfo] = {}
    steps: Dict[str, StepDescription] = {}
    groups: Dict[str, List[str]] = {}
    mandatory: List[str] = []

    pending_mirs: List[Mir] = []
    seen_mirs: Set[str] = set()

    def register(
        group: str,
        query: Query,
        decorated_orders: List[DecoratedProbeOrder],
    ) -> None:
        groups.setdefault(group, [])
        for decorated in decorated_orders:
            order_steps = probe_order_steps(catalog, query, decorated, config.cluster)
            activates: List[str] = []
            for mir in decorated.order.sequence:
                if mir.is_input:
                    continue
                if mir.canonical_id not in seen_mirs:
                    seen_mirs.add(mir.canonical_id)
                    pending_mirs.append(mir)
                activates.extend(
                    maintenance_group(mir, rel) for rel in sorted(mir.relations)
                )
            for step in order_steps:
                existing = steps.get(step.key)
                if existing is None:
                    steps[step.key] = step
                elif abs(existing.cost - step.cost) > 1e-6 * max(
                    1.0, abs(existing.cost)
                ):
                    raise AssertionError(
                        f"step key collision with different costs: {step.key} "
                        f"({existing.cost} vs {step.cost})"
                    )
            name = f"x[{group}#{len(groups[group])}]"
            info = CandidateInfo(
                name=name,
                group=group,
                decorated=decorated,
                query=query,
                step_keys=tuple(s.key for s in order_steps),
                commitments=decorated.commitments(),
                activates=tuple(sorted(set(activates))),
                pcost=sum(s.cost for s in order_steps),
            )
            candidates[name] = info
            groups[group].append(name)

    # 3. User probe orders per (query, starting relation).
    for query in queries:
        by_start = construct_probe_orders(query, mirs)
        for start_relation in query.relations:
            group = user_group(query.name, start_relation)
            mandatory.append(group)
            decorated = apply_partitioning(by_start[start_relation], store_options)
            register(group, query, decorated)

    # 4. Maintenance probe orders for every MIR reachable from a candidate
    #    (recursively: maintenance orders may themselves probe smaller MIRs).
    while pending_mirs:
        mir = pending_mirs.pop()
        sub_query = maintenance_query(mir)
        by_start = maintenance_probe_orders(mir, mirs)
        for start_relation in sorted(mir.relations):
            group = maintenance_group(mir, start_relation)
            decorated = apply_partitioning(by_start[start_relation], store_options)
            register(group, sub_query, decorated)

    return _emit_model(
        queries, config, candidates, steps, groups, tuple(mandatory), store_options, stores
    )


def _emit_model(
    queries: Tuple[Query, ...],
    config: OptimizerConfig,
    candidates: Dict[str, CandidateInfo],
    steps: Dict[str, StepDescription],
    groups: Dict[str, List[str]],
    mandatory: Tuple[str, ...],
    store_options: Dict[str, Tuple[Optional[Attribute], ...]],
    stores: Dict[str, Mir],
) -> MqoIlp:
    model = Model("mqo")

    x_vars = {name: model.add_var(name) for name in candidates}
    y_vars = {
        key: model.add_var(f"y[{i}]") for i, key in enumerate(sorted(steps))
    }

    # Partitioning consistency layer (DESIGN.md choice #1).
    z_vars: Dict[Tuple[str, str], Variable] = {}
    if config.strict_partitioning:
        for store_id, options in sorted(store_options.items()):
            attrs = [str(a) for a in options if a is not None]
            if len(attrs) < 2:
                continue  # a single option can never conflict
            zs = [
                model.add_var(f"z[{store_id}][{attr}]") for attr in attrs
            ]
            for attr, z in zip(attrs, zs):
                z_vars[(store_id, attr)] = z
            model.add_eq(LinExpr.sum(zs), 1.0, name=f"partition[{store_id}]")

    # Group selection constraints (Equation 2 / maintenance activation).
    mandatory_set = set(mandatory)
    for group, names in sorted(groups.items()):
        xs = [x_vars[n] for n in names]
        if group in mandatory_set:
            model.add_eq(LinExpr.sum(xs), 1.0, name=f"choose[{group}]")
        else:
            model.add_le(LinExpr.sum(xs), 1.0, name=f"atmostone[{group}]")

    # Activation: a probe order using an MIR requires its maintenance orders.
    for name, info in sorted(candidates.items()):
        for group in info.activates:
            xs = [x_vars[n] for n in groups[group]]
            model.add_ge(
                LinExpr.sum(xs) - x_vars[name],
                0.0,
                name=f"activate[{name}->{group}]",
            )

    # Cost linking (Equation 3 or indicator form).
    for name, info in sorted(candidates.items()):
        if config.constraint_form == "indicator":
            # sorted: constraint order must not depend on PYTHONHASHSEED —
            # solver pivoting (and thus tie-breaks among equal-cost optima)
            # follows row order
            for key in sorted(set(info.step_keys)):
                model.add_ge(
                    y_vars[key] - x_vars[name], 0.0, name=f"link[{name}:{key[:40]}]"
                )
        else:
            expr = LinExpr.sum(
                steps[key].cost * y_vars[key] for key in sorted(set(info.step_keys))
            )
            model.add_ge(
                expr - info.pcost * x_vars[name], 0.0, name=f"cost[{name}]"
            )

    # Partitioning commitments: x <= z.
    if config.strict_partitioning:
        for name, info in sorted(candidates.items()):
            for store_id, attr in info.commitments:
                z = z_vars.get((store_id, attr))
                if z is not None:
                    model.add_ge(
                        z - x_vars[name], 0.0, name=f"commit[{name}:{store_id}]"
                    )

    model.set_objective(
        LinExpr.sum(steps[key].cost * y_vars[key] for key in sorted(steps))
    )

    grouped = GroupedProblem(
        step_costs={key: step.cost for key, step in steps.items()},
        candidates={
            name: GroupedCandidate(
                name=name,
                group=info.group,
                steps=info.step_keys,
                commitments=_conflicting_commitments(info, store_options),
                activates=info.activates,
            )
            for name, info in candidates.items()
        },
        groups=groups,
        mandatory=mandatory,
    )

    return MqoIlp(
        model=model,
        grouped=grouped,
        config=config,
        queries=queries,
        candidates=candidates,
        steps=steps,
        groups=groups,
        mandatory_groups=mandatory,
        x_vars=x_vars,
        y_vars=y_vars,
        z_vars=z_vars,
        store_options=store_options,
        stores=stores,
    )


def _conflicting_commitments(
    info: CandidateInfo,
    store_options: Dict[str, Tuple[Optional[Attribute], ...]],
) -> Tuple[Tuple[str, str], ...]:
    """Only multi-option stores can conflict; smaller commitment tuples keep
    the greedy's compatibility checks (and the warm start) lean."""
    out = []
    for store_id, attr in info.commitments:
        options = store_options.get(store_id, ())
        if len([a for a in options if a is not None]) >= 2:
            out.append((store_id, attr))
    return tuple(out)
