"""Materializable intermediate results (MIRs).

An MIR is "a subset of the queried relations and the join predicates defined
on them such that cross products are avoided" (Section V).  Size-1 MIRs are
the always-materialized input relations; larger MIRs are optional
intermediate stores (e.g. an ``RS``-store holding ``R ⋈ S``).

MIR identity is *structural*: the relation set plus the induced predicate
set.  Two queries that join the same relations with the same predicates
share the MIR (and hence the store), which is the basis of the paper's
multi-query sharing.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Tuple

from .predicates import JoinPredicate
from .query import Query

__all__ = ["Mir", "enumerate_mirs", "input_mir"]


@dataclass(frozen=True)
class Mir:
    """A materializable (intermediate) result: relations + induced predicates."""

    relations: FrozenSet[str]
    predicates: FrozenSet[JoinPredicate]

    def __post_init__(self) -> None:
        for pred in self.predicates:
            if not pred.relations <= self.relations:
                raise ValueError(
                    f"MIR over {sorted(self.relations)} has foreign predicate {pred}"
                )

    # Frozensets aren't ordered; sort MIRs by their canonical id.
    def __lt__(self, other: "Mir") -> bool:
        return self.canonical_id < other.canonical_id

    @property
    def size(self) -> int:
        return len(self.relations)

    @property
    def is_input(self) -> bool:
        """True for a single input relation (always materialized)."""
        return self.size == 1

    @property
    def display_name(self) -> str:
        """Human-readable name, e.g. ``R`` or ``R+S`` (paper: ``RS``)."""
        return "+".join(sorted(self.relations))

    @property
    def canonical_id(self) -> str:
        """Unambiguous identity string: relations plus induced predicates."""
        rels = "+".join(sorted(self.relations))
        preds = ",".join(sorted(str(p) for p in self.predicates))
        return f"{rels}|{preds}" if preds else rels

    def covers(self, query: Query) -> bool:
        return self.relations == query.relation_set

    def __str__(self) -> str:
        return self.display_name


def input_mir(relation_name: str) -> Mir:
    """The trivial MIR of a single input relation."""
    return Mir(relations=frozenset((relation_name,)), predicates=frozenset())


def enumerate_mirs(
    query: Query,
    max_size: Optional[int] = None,
    include_inputs: bool = True,
) -> List[Mir]:
    """All MIRs of ``query``: connected relation subsets of size 1..n-1.

    The full relation set is excluded — materializing the complete query
    result is never probed against by any probe order of the same query.
    ``max_size`` further caps intermediate sizes (config knob; the paper's
    analysis notes the 2^n worst case for clique queries).
    """
    n = query.size
    cap = min(max_size if max_size is not None else n - 1, n - 1)
    mirs: List[Mir] = []
    if include_inputs:
        mirs.extend(input_mir(rel) for rel in query.relations)
    for size in range(2, cap + 1):
        for subset in combinations(query.relations, size):
            if not query.is_subquery_connected(subset):
                continue
            mirs.append(
                Mir(
                    relations=frozenset(subset),
                    predicates=query.predicates_within(subset),
                )
            )
    return mirs


def merge_mirs(per_query: Iterable[List[Mir]]) -> List[Mir]:
    """Union MIRs from several queries, deduplicating structurally."""
    seen = {}
    for mirs in per_query:
        for mir in mirs:
            seen.setdefault(mir.canonical_id, mir)
    return sorted(seen.values())
