"""Candidate probe-order construction (paper Algorithm 1).

A *probe order* ⟨S, T, U⟩ dictates how a newly arrived tuple of its starting
relation is routed through the stores of the other relations (or of
materialized intermediate results) to incrementally compute the join.

For every query and every starting relation, all cross-product-free
sequences of available MIR stores covering the query are enumerated.  For
MIR stores themselves, *maintenance* probe orders over the MIR's subquery
are generated the same way (recursively, so large MIRs may be maintained
via smaller ones).

Cyclic join graphs need no special enumeration: a hop applies *every*
query predicate connecting the accumulated prefix to the probed store
(:meth:`ProbeOrder.hop_predicates`), so a cycle-closing predicate is
simply picked up by whichever hop covers its second endpoint and executed
there as a post-probe filter (the probe's hash index serves one predicate;
the rest filter the candidates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .mir import Mir, enumerate_mirs, input_mir
from .predicates import JoinPredicate
from .query import Query

__all__ = ["ProbeOrder", "construct_probe_orders", "maintenance_query"]


@dataclass(frozen=True)
class ProbeOrder:
    """An undecorated probe order: start relation and probed stores.

    Attributes
    ----------
    query_name:
        Name of the (sub)query this probe order answers.
    start:
        The starting input relation's trivial MIR.
    sequence:
        The probed stores, in order; their relation sets partition the
        query's remaining relations.
    target:
        For maintenance probe orders, the MIR whose store receives the final
        result; ``None`` for user-facing query probe orders.
    """

    query_name: str
    start: Mir
    sequence: Tuple[Mir, ...]
    target: Optional[Mir] = None

    @property
    def start_relation(self) -> str:
        (rel,) = self.start.relations
        return rel

    @property
    def stores(self) -> Tuple[Mir, ...]:
        """Start store followed by the probed stores."""
        return (self.start,) + self.sequence

    @property
    def is_maintenance(self) -> bool:
        return self.target is not None

    def covered_relations(self) -> FrozenSet[str]:
        covered = set(self.start.relations)
        for mir in self.sequence:
            covered |= mir.relations
        return frozenset(covered)

    def prefix_relations(self, num_stores: int) -> FrozenSet[str]:
        """Relations covered by the first ``num_stores`` stores (incl. start)."""
        covered = set()
        for mir in self.stores[:num_stores]:
            covered |= mir.relations
        return frozenset(covered)

    def hop_predicates(
        self, query: Query
    ) -> List[FrozenSet[JoinPredicate]]:
        """Per probed store, the predicates applied at that hop.

        Hop ``j`` applies every query predicate with one side in the
        accumulated prefix and the other in the probed store — including
        any cycle-closing predicate whose second endpoint this hop covers
        (executed as a post-probe filter on the candidate set).
        """
        hops: List[FrozenSet[JoinPredicate]] = []
        covered = set(self.start.relations)
        for mir in self.sequence:
            hops.append(query.predicates_between(covered, mir.relations))
            covered |= mir.relations
        return hops

    def __str__(self) -> str:
        inner = ", ".join(str(m) for m in self.stores)
        suffix = f" -> {self.target}" if self.target is not None else ""
        return f"<{inner}>{suffix}"


def construct_probe_orders(
    query: Query,
    mirs: Iterable[Mir],
    query_name: Optional[str] = None,
    target: Optional[Mir] = None,
) -> Dict[str, List[ProbeOrder]]:
    """Algorithm 1: all candidate probe orders per starting relation.

    ``mirs`` is the pool of available stores (inputs plus intermediates);
    only MIRs that are proper, predicate-consistent subsets of the query
    are considered.  Returns ``{starting relation: [probe orders]}``.
    """
    name = query_name or query.name
    pool = _usable_mirs(query, mirs)
    out: Dict[str, List[ProbeOrder]] = {}
    for relation in query.relations:
        head = frozenset((relation,))
        sequences = _construct_rec(query, head, pool)
        out[relation] = [
            ProbeOrder(
                query_name=name,
                start=input_mir(relation),
                sequence=tuple(seq),
                target=target,
            )
            for seq in sequences
        ]
    return out


def _usable_mirs(query: Query, mirs: Iterable[Mir]) -> List[Mir]:
    """MIRs probe-able while answering ``query``.

    A store is usable iff its relations are a proper subset of the query's
    and its internal predicates are exactly the query's predicates induced
    on those relations (otherwise stored intermediate results would reflect
    a different join).
    """
    usable = {}
    for mir in mirs:
        if not mir.relations < query.relation_set:
            continue
        if mir.predicates != query.predicates_within(mir.relations):
            continue
        usable[mir.canonical_id] = mir  # dedupe structurally equal MIRs
    return sorted(usable.values())


def _construct_rec(
    query: Query, head: FrozenSet[str], pool: Sequence[Mir]
) -> List[List[Mir]]:
    """Recursive body of Algorithm 1: extend ``head`` by joinable MIRs."""
    results: List[List[Mir]] = []
    for mir in _joinable(query, head, pool):
        new_head = head | mir.relations
        if new_head == query.relation_set:
            results.append([mir])
        else:
            for tail in _construct_rec(query, new_head, pool):
                results.append([mir] + tail)
    return results


def _joinable(
    query: Query, head: FrozenSet[str], pool: Sequence[Mir]
) -> List[Mir]:
    """MIRs disjoint from ``head`` and connected to it by a query predicate."""
    out = []
    for mir in pool:
        if mir.relations & head:
            continue
        if not query.predicates_between(head, mir.relations):
            continue
        out.append(mir)
    return out


def maintenance_query(mir: Mir) -> Query:
    """The subquery computing an MIR (used to build its maintenance orders)."""
    return Query(
        name=f"maint[{mir.display_name}]",
        relations=tuple(sorted(mir.relations)),
        predicates=mir.predicates,
    )


def maintenance_probe_orders(
    mir: Mir, available: Iterable[Mir]
) -> Dict[str, List[ProbeOrder]]:
    """Maintenance probe orders for an MIR store, per starting relation.

    Only strictly smaller MIRs are usable while computing ``mir`` itself;
    :func:`construct_probe_orders` enforces that via the proper-subset rule.
    """
    sub = maintenance_query(mir)
    pool = [m for m in available if m.relations < mir.relations or m.is_input]
    return construct_probe_orders(sub, pool, query_name=sub.name, target=mir)
