"""Streamed relations and their attributes.

The paper's data model (Section I.A): streamed relations ``S1 .. Sm`` whose
tuples carry named attributes plus a special timestamp attribute ``τ``; a
per-relation *window* bounds the maximal time difference for joinability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

__all__ = ["Attribute", "StreamRelation", "TIMESTAMP_ATTRIBUTE"]

#: Name of the implicit arrival-timestamp attribute on every tuple.
TIMESTAMP_ATTRIBUTE = "__tau__"


@dataclass(frozen=True, order=True)
class Attribute:
    """A fully qualified attribute ``Relation.name`` (paper: ``S_i.a``)."""

    relation: str
    name: str

    def __str__(self) -> str:
        return f"{self.relation}.{self.name}"

    @staticmethod
    def parse(qualified: str) -> "Attribute":
        """Parse ``"S.a"`` into an :class:`Attribute`."""
        relation, _, name = qualified.partition(".")
        if not relation or not name:
            raise ValueError(f"expected 'Relation.attr', got {qualified!r}")
        return Attribute(relation, name)


@dataclass(frozen=True)
class StreamRelation:
    """A streamed input relation.

    Attributes
    ----------
    name:
        Relation identifier, unique within a workload.
    attributes:
        Declared attribute names (without the implicit timestamp).
    window:
        Default window length in time units: a tuple of this relation is
        joinable with tuples whose timestamps differ by at most ``window``.
    """

    name: str
    attributes: Tuple[str, ...]
    window: float = float("inf")

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("relation name must be non-empty")
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attribute names in relation {self.name!r}")
        if self.window <= 0:
            raise ValueError(f"window of {self.name!r} must be positive")

    def attr(self, name: str) -> Attribute:
        """Qualified attribute of this relation; validates the name."""
        if name not in self.attributes:
            raise KeyError(f"relation {self.name!r} has no attribute {name!r}")
        return Attribute(self.name, name)

    def has_attr(self, name: str) -> bool:
        return name in self.attributes


def relation_map(relations: Iterable[StreamRelation]) -> Dict[str, StreamRelation]:
    """Index relations by name, rejecting duplicates."""
    out: Dict[str, StreamRelation] = {}
    for rel in relations:
        if rel.name in out:
            raise ValueError(f"duplicate relation name {rel.name!r}")
        out[rel.name] = rel
    return out
