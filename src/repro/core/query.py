"""Multi-way equi-join queries over streamed relations.

A :class:`Query` is a named, connected join graph over a subset of the
registered relations (cross products are excluded, as in the paper).  The
helper methods expose exactly the structure the optimizer needs: induced
predicates on relation subsets, predicates connecting two groups, and
per-relation window overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from .predicates import JoinPredicate, connected_components
from .schema import Attribute

__all__ = ["Query", "CrossProductError"]


class CrossProductError(ValueError):
    """Raised when a query's join graph is not connected."""


@dataclass(frozen=True)
class Query:
    """An equi-join query ``q(S_1, ..., S_n)`` with pairwise predicates.

    Parameters
    ----------
    name:
        Unique query identifier within a workload.
    relations:
        Names of the joined relations (order is irrelevant; stored sorted).
    predicates:
        Pairwise equi-join predicates; must connect all relations.
    windows:
        Optional per-relation window overrides (defaults come from the
        catalog / relation declarations).
    """

    name: str
    relations: Tuple[str, ...]
    predicates: FrozenSet[JoinPredicate]
    windows: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        rels = tuple(sorted(set(self.relations)))
        object.__setattr__(self, "relations", rels)
        object.__setattr__(self, "predicates", frozenset(self.predicates))
        if len(rels) < 2:
            raise ValueError(f"query {self.name!r} must join at least two relations")
        for pred in self.predicates:
            for rel in pred.relations:
                if rel not in rels:
                    raise ValueError(
                        f"query {self.name!r}: predicate {pred} references "
                        f"relation {rel!r} outside the query"
                    )
        components = connected_components(rels, self.predicates)
        if len(components) != 1:
            raise CrossProductError(
                f"query {self.name!r} contains a cross product; components: "
                f"{sorted(tuple(sorted(c)) for c in components)}"
            )
        for rel, window in self.windows:
            if rel not in rels:
                raise ValueError(
                    f"query {self.name!r}: window override for unknown relation {rel!r}"
                )
            if window <= 0:
                raise ValueError(f"query {self.name!r}: window must be positive")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def of(name: str, *equalities: str, windows: Optional[Mapping[str, float]] = None) -> "Query":
        """Build a query from equality strings: ``Query.of("q", "R.a=S.a", ...)``."""
        predicates = []
        for eq in equalities:
            left, _, right = eq.partition("=")
            predicates.append(JoinPredicate.of(left.strip(), right.strip()))
        relations = sorted({rel for p in predicates for rel in p.relations})
        return Query(
            name=name,
            relations=tuple(relations),
            predicates=frozenset(predicates),
            windows=tuple(sorted((windows or {}).items())),
        )

    # ------------------------------------------------------------------
    # structure helpers
    # ------------------------------------------------------------------
    @property
    def relation_set(self) -> FrozenSet[str]:
        return frozenset(self.relations)

    @property
    def size(self) -> int:
        return len(self.relations)

    def window_of(self, relation: str, default: float = float("inf")) -> float:
        for rel, window in self.windows:
            if rel == relation:
                return window
        return default

    def predicates_within(self, relations: Iterable[str]) -> FrozenSet[JoinPredicate]:
        """Predicates whose both sides fall inside ``relations``."""
        group = set(relations)
        return frozenset(
            p for p in self.predicates if p.relations <= group
        )

    def predicates_between(
        self, group_a: Iterable[str], group_b: Iterable[str]
    ) -> FrozenSet[JoinPredicate]:
        """Predicates with one side in each group."""
        return frozenset(
            p for p in self.predicates if p.connects(group_a, group_b)
        )

    def neighbors(self, relations: Iterable[str]) -> FrozenSet[str]:
        """Relations of the query joinable with the given group."""
        group = set(relations)
        out = set()
        for pred in self.predicates:
            rels = pred.relations
            inside, outside = rels & group, rels - group
            if inside and outside:
                out |= outside
        return frozenset(out & set(self.relations))

    def join_attributes(self, relation: str) -> List[Attribute]:
        """Attributes of ``relation`` used in any predicate of this query."""
        attrs = {
            p.attribute_of(relation)
            for p in self.predicates
            if p.involves(relation)
        }
        return sorted(attrs)

    def is_subquery_connected(self, relations: Iterable[str]) -> bool:
        group = sorted(set(relations))
        if not group:
            return False
        inner = self.predicates_within(group)
        return len(connected_components(group, inner)) == 1

    def __str__(self) -> str:
        preds = ", ".join(sorted(str(p) for p in self.predicates))
        return f"{self.name}({', '.join(self.relations)} | {preds})"


def validate_workload(queries: Iterable[Query]) -> Dict[str, Query]:
    """Index queries by name, rejecting duplicate names."""
    out: Dict[str, Query] = {}
    for query in queries:
        if query.name in out:
            raise ValueError(f"duplicate query name {query.name!r}")
        out[query.name] = query
    return out
