"""Multi-way equi-join queries over streamed relations.

A :class:`Query` is a named, connected join graph over a subset of the
registered relations (cross products are excluded, as in the paper).  The
helper methods expose exactly the structure the optimizer needs: induced
predicates on relation subsets, predicates connecting two groups, and
per-relation window overrides.

The join graph may be any connected shape.  Beyond the generic
:meth:`Query.of`, the :meth:`Query.chain`, :meth:`Query.star`, and
:meth:`Query.cycle` constructors build the canonical topologies of the
paper's formulation (Section I.A poses no acyclicity restriction), and
:meth:`Query.spanning_predicates` / :meth:`Query.cycle_closing_predicates`
split the predicate set into a deterministic spanning tree and the
remainder — the cycle-closing predicates the engine applies as post-probe
filters once both endpoints are covered by a probe prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from .predicates import JoinPredicate, as_predicate, connected_components
from .schema import Attribute

__all__ = ["Query", "CrossProductError"]


class CrossProductError(ValueError):
    """Raised when a query's join graph is not connected."""


@dataclass(frozen=True)
class Query:
    """An equi-join query ``q(S_1, ..., S_n)`` with pairwise predicates.

    Parameters
    ----------
    name:
        Unique query identifier within a workload.
    relations:
        Names of the joined relations (order is irrelevant; stored sorted).
    predicates:
        Pairwise equi-join predicates; must connect all relations.
    windows:
        Optional per-relation window overrides (defaults come from the
        catalog / relation declarations).
    """

    name: str
    relations: Tuple[str, ...]
    predicates: FrozenSet[JoinPredicate]
    windows: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        rels = tuple(sorted(set(self.relations)))
        object.__setattr__(self, "relations", rels)
        object.__setattr__(self, "predicates", frozenset(self.predicates))
        if len(rels) < 2:
            raise ValueError(f"query {self.name!r} must join at least two relations")
        for pred in self.predicates:
            for rel in pred.relations:
                if rel not in rels:
                    raise ValueError(
                        f"query {self.name!r}: predicate {pred} references "
                        f"relation {rel!r} outside the query"
                    )
        components = connected_components(rels, self.predicates)
        if len(components) != 1:
            raise CrossProductError(
                f"query {self.name!r} contains a cross product; components: "
                f"{sorted(tuple(sorted(c)) for c in components)}"
            )
        for rel, window in self.windows:
            if rel not in rels:
                raise ValueError(
                    f"query {self.name!r}: window override for unknown relation {rel!r}"
                )
            if window <= 0:
                raise ValueError(f"query {self.name!r}: window must be positive")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def of(name: str, *equalities: str, windows: Optional[Mapping[str, float]] = None) -> "Query":
        """Build a query from equality strings: ``Query.of("q", "R.a=S.a", ...)``."""
        predicates = [as_predicate(eq) for eq in equalities]
        relations = sorted({rel for p in predicates for rel in p.relations})
        return Query(
            name=name,
            relations=tuple(relations),
            predicates=frozenset(predicates),
            windows=tuple(sorted((windows or {}).items())),
        )

    @staticmethod
    def chain(
        name: str,
        relations: Iterable[str],
        attr: str = "a",
        windows: Optional[Mapping[str, float]] = None,
    ) -> "Query":
        """Chain query: consecutive relations joined on ``attr<i>``.

        ``chain("q", ["R", "S", "T"])`` builds ``R.a0=S.a0, S.a1=T.a1``.
        """
        rels = list(relations)
        if len(set(rels)) != len(rels):
            raise ValueError(f"chain query {name!r} repeats a relation")
        if len(rels) < 2:
            raise ValueError(f"chain query {name!r} needs at least two relations")
        eqs = [
            f"{rels[i]}.{attr}{i}={rels[i + 1]}.{attr}{i}"
            for i in range(len(rels) - 1)
        ]
        return Query.of(name, *eqs, windows=windows)

    @staticmethod
    def star(
        name: str,
        hub: str,
        spokes: Iterable[str],
        attr: str = "s",
        windows: Optional[Mapping[str, float]] = None,
    ) -> "Query":
        """Star query: every spoke joined to the hub on its own attribute.

        ``star("q", "H", ["A", "B"])`` builds ``H.s0=A.s0, H.s1=B.s1`` —
        spoke ``i`` shares attribute ``attr<i>`` with the hub, so spokes
        stay independent of each other (the degenerate-bushy shape that
        stresses probe-order choice; Joglekar & Ré's degree argument).
        """
        spoke_list = list(spokes)
        if len(set(spoke_list)) != len(spoke_list) or hub in spoke_list:
            raise ValueError(f"star query {name!r} repeats a relation")
        if not spoke_list:
            raise ValueError(f"star query {name!r} needs at least one spoke")
        eqs = [
            f"{hub}.{attr}{i}={spoke}.{attr}{i}"
            for i, spoke in enumerate(spoke_list)
        ]
        return Query.of(name, *eqs, windows=windows)

    @staticmethod
    def cycle(
        name: str,
        relations: Iterable[str],
        attr: str = "e",
        windows: Optional[Mapping[str, float]] = None,
    ) -> "Query":
        """Cyclic query: a ring of relations with the closing predicate.

        ``cycle("q", ["R", "S", "T"])`` builds ``R.e0=S.e0, S.e1=T.e1,
        T.e2=R.e2`` — edge ``i`` joins ring neighbours on attribute
        ``attr<i>``; the final edge closes the cycle.
        """
        ring = list(relations)
        if len(set(ring)) != len(ring):
            raise ValueError(f"cycle query {name!r} repeats a relation")
        if len(ring) < 3:
            raise ValueError(f"cycle query {name!r} needs at least three relations")
        eqs = [
            f"{ring[i]}.{attr}{i}={ring[(i + 1) % len(ring)]}.{attr}{i}"
            for i in range(len(ring))
        ]
        return Query.of(name, *eqs, windows=windows)

    # ------------------------------------------------------------------
    # structure helpers
    # ------------------------------------------------------------------
    @property
    def relation_set(self) -> FrozenSet[str]:
        return frozenset(self.relations)

    @property
    def num_cycles(self) -> int:
        """Cyclomatic number of the join graph (0 for trees/chains/stars).

        Counts distinct relation *pairs* as edges: parallel predicates on
        the same pair sharpen a join without creating a cycle.
        """
        pairs = {p.relations for p in self.predicates}
        return len(pairs) - len(self.relations) + 1

    @property
    def is_cyclic(self) -> bool:
        return self.num_cycles > 0

    def spanning_predicates(self) -> FrozenSet[JoinPredicate]:
        """A deterministic spanning tree of the join graph.

        Predicates are visited in sorted order; each one connecting two
        previously unconnected relations joins the tree.  The complement
        (:meth:`cycle_closing_predicates`) holds the cycle-closing
        predicates plus any parallel predicate on an already-joined pair —
        exactly the set a probe hop can only apply as post-probe filters.
        """
        parent = {rel: rel for rel in self.relations}

        def find(rel: str) -> str:
            while parent[rel] != rel:
                parent[rel] = parent[parent[rel]]
                rel = parent[rel]
            return rel

        tree = set()
        for pred in sorted(self.predicates):
            root_a = find(pred.left.relation)
            root_b = find(pred.right.relation)
            if root_a != root_b:
                parent[root_a] = root_b
                tree.add(pred)
        return frozenset(tree)

    def cycle_closing_predicates(self) -> FrozenSet[JoinPredicate]:
        """Predicates outside the deterministic spanning tree."""
        return self.predicates - self.spanning_predicates()

    @property
    def size(self) -> int:
        return len(self.relations)

    def window_of(self, relation: str, default: float = float("inf")) -> float:
        for rel, window in self.windows:
            if rel == relation:
                return window
        return default

    def predicates_within(self, relations: Iterable[str]) -> FrozenSet[JoinPredicate]:
        """Predicates whose both sides fall inside ``relations``."""
        group = set(relations)
        return frozenset(
            p for p in self.predicates if p.relations <= group
        )

    def predicates_between(
        self, group_a: Iterable[str], group_b: Iterable[str]
    ) -> FrozenSet[JoinPredicate]:
        """Predicates with one side in each group."""
        return frozenset(
            p for p in self.predicates if p.connects(group_a, group_b)
        )

    def neighbors(self, relations: Iterable[str]) -> FrozenSet[str]:
        """Relations of the query joinable with the given group."""
        group = set(relations)
        out = set()
        for pred in self.predicates:
            rels = pred.relations
            inside, outside = rels & group, rels - group
            if inside and outside:
                out |= outside
        return frozenset(out & set(self.relations))

    def join_attributes(self, relation: str) -> List[Attribute]:
        """Attributes of ``relation`` used in any predicate of this query."""
        attrs = {
            p.attribute_of(relation)
            for p in self.predicates
            if p.involves(relation)
        }
        return sorted(attrs)

    def is_subquery_connected(self, relations: Iterable[str]) -> bool:
        group = sorted(set(relations))
        if not group:
            return False
        inner = self.predicates_within(group)
        return len(connected_components(group, inner)) == 1

    def __str__(self) -> str:
        preds = ", ".join(sorted(str(p) for p in self.predicates))
        return f"{self.name}({', '.join(self.relations)} | {preds})"


def validate_workload(queries: Iterable[Query]) -> Dict[str, Query]:
    """Index queries by name, rejecting duplicate names."""
    out: Dict[str, Query] = {}
    for query in queries:
        if query.name in out:
            raise ValueError(f"duplicate query name {query.name!r}")
        out[query.name] = query
    return out
