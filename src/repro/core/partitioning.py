"""Partitioning candidates and decorated probe orders.

Every store (input relation or MIR) is hash-partitioned by exactly one
attribute.  Candidate attributes for a store are those "which define a join
with another relation that is not part of it" (Section V) — computed here
against the *whole workload*, since a store shared by several queries can be
probed via different predicates.

A *decorated* probe order annotates every probed store with a concrete
partitioning attribute (paper notation ``⟨R, S[b], T[c]⟩``); decoration is
the cross product over each store's candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from .mir import Mir
from .probe_order import ProbeOrder
from .query import Query
from .schema import Attribute

__all__ = [
    "ClusterConfig",
    "DecoratedProbeOrder",
    "partition_candidates",
    "apply_partitioning",
]


@dataclass(frozen=True)
class ClusterConfig:
    """Deployment knobs: store parallelism (number of partitions/tasks).

    ``parallelism_overrides`` maps a store display name (e.g. ``"S"`` or
    ``"R+S"``) to its task count; everything else uses the default.  The
    broadcast factor χ of Equation (1) equals the parallelism of a store
    whose partitioning attribute the probing tuple cannot determine.
    """

    default_parallelism: int = 4
    parallelism_overrides: Tuple[Tuple[str, int], ...] = ()

    def parallelism(self, store: Mir) -> int:
        for name, value in self.parallelism_overrides:
            if name == store.display_name:
                return value
        return self.default_parallelism

    @staticmethod
    def with_overrides(default: int = 4, **overrides: int) -> "ClusterConfig":
        return ClusterConfig(
            default_parallelism=default,
            parallelism_overrides=tuple(sorted(overrides.items())),
        )


def partition_candidates(
    store: Mir, queries: Iterable[Query]
) -> Tuple[Optional[Attribute], ...]:
    """Candidate partitioning attributes of a store across the workload.

    An attribute of one of the store's relations qualifies iff some query
    joins it with a relation outside the store.  If no attribute qualifies
    (a store only ever used as a final probe target via broadcast), the
    single candidate ``None`` stands for an arbitrary internal scheme.
    """
    candidates = set()
    for query in queries:
        if not store.relations <= query.relation_set:
            continue
        for pred in query.predicates:
            rels = pred.relations
            inside = rels & store.relations
            outside = rels - store.relations
            if inside and outside:
                (inner_rel,) = inside
                candidates.add(pred.attribute_of(inner_rel))
    if not candidates:
        return (None,)
    return tuple(sorted(candidates))


@dataclass(frozen=True)
class DecoratedProbeOrder:
    """A probe order whose probed stores carry partitioning attributes."""

    order: ProbeOrder
    partitions: Tuple[Optional[Attribute], ...]  # aligned with order.sequence

    def __post_init__(self) -> None:
        if len(self.partitions) != len(self.order.sequence):
            raise ValueError(
                "decoration length mismatch: "
                f"{len(self.partitions)} attrs for {len(self.order.sequence)} stores"
            )

    @property
    def start(self) -> Mir:
        return self.order.start

    @property
    def start_relation(self) -> str:
        return self.order.start_relation

    @property
    def query_name(self) -> str:
        return self.order.query_name

    @property
    def is_maintenance(self) -> bool:
        return self.order.is_maintenance

    @property
    def target(self) -> Optional[Mir]:
        return self.order.target

    def decorated_stores(self) -> Tuple[Tuple[Mir, Optional[Attribute]], ...]:
        """``(store, partition attribute)`` pairs for the probed stores."""
        return tuple(zip(self.order.sequence, self.partitions))

    def commitments(self) -> Tuple[Tuple[str, str], ...]:
        """(store canonical id, attribute) pairs this order commits to."""
        out = []
        for mir, attr in self.decorated_stores():
            if attr is not None:
                out.append((mir.canonical_id, str(attr)))
        return tuple(out)

    def __str__(self) -> str:
        parts = [str(self.order.start)]
        for mir, attr in self.decorated_stores():
            parts.append(f"{mir}[{attr.name if attr else '*'}]")
        suffix = f" -> {self.order.target}" if self.order.target is not None else ""
        return f"<{', '.join(parts)}>{suffix}"


def apply_partitioning(
    orders: Iterable[ProbeOrder],
    candidates: Mapping[str, Tuple[Optional[Attribute], ...]],
) -> List[DecoratedProbeOrder]:
    """Decorate probe orders with every combination of partition choices.

    ``candidates`` maps store canonical ids to their attribute options
    (see :func:`partition_candidates`).
    """
    decorated: List[DecoratedProbeOrder] = []
    for order in orders:
        options_per_store = [
            candidates.get(mir.canonical_id, (None,)) for mir in order.sequence
        ]
        for combo in _cross_product(options_per_store):
            decorated.append(DecoratedProbeOrder(order=order, partitions=combo))
    return decorated


def _cross_product(
    options: List[Tuple[Optional[Attribute], ...]]
) -> Iterator[Tuple[Optional[Attribute], ...]]:
    if not options:
        yield ()
        return
    head, *tail = options
    for choice in head:
        for rest in _cross_product(tail):
            yield (choice,) + rest
