"""Equi-join predicates between pairs of streamed relations.

The paper restricts itself to equi joins of the form ``S_i.a = S_j.b``
(Section I.A).  Predicates are canonicalized so that the two orientations of
the same equality compare (and hash) equal — this is what lets MIRs and
probe-order steps be shared across queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Union

from .schema import Attribute

__all__ = [
    "JoinPredicate",
    "as_predicate",
    "attribute_closure",
    "connected_components",
]


@dataclass(frozen=True, order=True)
class JoinPredicate:
    """An equality ``left = right`` between attributes of two relations.

    The constructor canonicalizes orientation (smaller attribute first), so
    ``JoinPredicate(S.a, R.b) == JoinPredicate(R.b, S.a)``.
    """

    left: Attribute
    right: Attribute

    def __post_init__(self) -> None:
        if self.left.relation == self.right.relation:
            raise ValueError(
                f"self-join predicate within {self.left.relation!r} is not supported"
            )
        if self.right < self.left:
            left, right = self.right, self.left
            object.__setattr__(self, "left", left)
            object.__setattr__(self, "right", right)

    @staticmethod
    def of(left: str, right: str) -> "JoinPredicate":
        """Build from qualified strings: ``JoinPredicate.of("R.a", "S.a")``."""
        return JoinPredicate(Attribute.parse(left), Attribute.parse(right))

    @property
    def relations(self) -> FrozenSet[str]:
        return frozenset((self.left.relation, self.right.relation))

    def involves(self, relation: str) -> bool:
        return relation in (self.left.relation, self.right.relation)

    def attribute_of(self, relation: str) -> Attribute:
        """The side of the equality belonging to ``relation``."""
        if self.left.relation == relation:
            return self.left
        if self.right.relation == relation:
            return self.right
        raise KeyError(f"predicate {self} does not involve {relation!r}")

    def other(self, relation: str) -> Attribute:
        """The side of the equality *not* belonging to ``relation``."""
        if self.left.relation == relation:
            return self.right
        if self.right.relation == relation:
            return self.left
        raise KeyError(f"predicate {self} does not involve {relation!r}")

    def connects(self, group_a: Iterable[str], group_b: Iterable[str]) -> bool:
        """True if one side is in ``group_a`` and the other in ``group_b``."""
        a, b = set(group_a), set(group_b)
        return (self.left.relation in a and self.right.relation in b) or (
            self.left.relation in b and self.right.relation in a
        )

    def __str__(self) -> str:
        return f"{self.left}={self.right}"


def as_predicate(predicate: Union[str, JoinPredicate]) -> JoinPredicate:
    """Coerce ``"R.a=S.a"`` (or a :class:`JoinPredicate`) to a predicate.

    The single parser behind every equality-string entry point
    (:meth:`Query.of`, ``StatisticsCatalog.with_selectivity``, the session
    builders), so malformed input fails with the same message everywhere.
    """
    if isinstance(predicate, JoinPredicate):
        return predicate
    left, sep, right = str(predicate).partition("=")
    if not sep or not left.strip() or not right.strip():
        raise ValueError(
            f"expected an equality like 'R.a=S.a', got {predicate!r}"
        )
    return JoinPredicate.of(left.strip(), right.strip())


def attribute_closure(
    known: Iterable[Attribute], predicates: Iterable[JoinPredicate]
) -> Set[Attribute]:
    """All attributes whose values are determined by ``known`` under equalities.

    Used for the broadcast factor χ: after probing with equi predicates, an
    intermediate tuple 'knows' every attribute reachable from its own
    attributes through the equality graph (Section IV / V of the paper).
    """
    known_set: Set[Attribute] = set(known)
    predicates = list(predicates)
    changed = True
    while changed:
        changed = False
        for pred in predicates:
            if pred.left in known_set and pred.right not in known_set:
                known_set.add(pred.right)
                changed = True
            elif pred.right in known_set and pred.left not in known_set:
                known_set.add(pred.left)
                changed = True
    return known_set


def connected_components(
    relations: Iterable[str], predicates: Iterable[JoinPredicate]
) -> List[FrozenSet[str]]:
    """Connected components of the join graph (relations as nodes)."""
    adjacency: Dict[str, Set[str]] = {rel: set() for rel in relations}
    for pred in predicates:
        a, b = pred.left.relation, pred.right.relation
        if a in adjacency and b in adjacency:
            adjacency[a].add(b)
            adjacency[b].add(a)
    seen: Set[str] = set()
    components: List[FrozenSet[str]] = []
    for rel in adjacency:
        if rel in seen:
            continue
        stack, comp = [rel], set()
        while stack:
            node = stack.pop()
            if node in comp:
                continue
            comp.add(node)
            stack.extend(adjacency[node] - comp)
        seen |= comp
        components.append(frozenset(comp))
    return components
