"""High-level optimizer facade.

``MultiQueryOptimizer`` ties the pipeline together: enumerate candidates,
build the ILP (Algorithm 2), warm-start it with the grouped greedy, solve
with the configured backend, and extract a :class:`SharedPlan`.

``optimize_individual`` optimizes every query in isolation (the paper's
"Individual" baseline in Figures 9a/9c): same machinery, one single-query
ILP per query, costs summed without sharing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ilp.greedy import GreedySolution, solve_greedy
from ..ilp.model import Solution, SolveStatus
from ..ilp.solvers import SolverMethod, solve_model
from .catalog import StatisticsCatalog
from .ilp_builder import MqoIlp, OptimizerConfig, build_mqo_ilp
from .plan import SharedPlan, extract_plan
from .query import Query

__all__ = [
    "MultiQueryOptimizer",
    "OptimizationResult",
    "IndividualResult",
    "choose_solver",
]


def choose_solver(queries: Sequence[Query], requested: SolverMethod | str = "auto") -> str:
    """Effective solver for a workload: ``"auto"`` degrades gracefully.

    The exact ILP explodes combinatorially on cyclic join graphs (a 5-ring's
    arc MIRs and their maintenance orders produce thousands of binaries), so
    ``"auto"`` falls back to the grouped greedy planner as soon as any query
    is cyclic — any feasible plan answers every query exactly; only the
    probe-cost optimality is sacrificed.  Explicit solver choices are
    honoured unchanged.
    """
    name = requested.value if isinstance(requested, SolverMethod) else str(requested)
    if name == "auto" and any(q.is_cyclic for q in queries):
        return "greedy"
    return name


@dataclass
class OptimizationResult:
    """Outcome of a (multi-)query optimization run."""

    plan: SharedPlan
    ilp: MqoIlp
    solution: Solution
    greedy: Optional[GreedySolution]
    build_seconds: float
    solve_seconds: float

    @property
    def objective(self) -> float:
        return self.plan.objective

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.solve_seconds


@dataclass
class IndividualResult:
    """Per-query (non-shared) optimization: the paper's 'Individual' line."""

    results: Dict[str, OptimizationResult]

    @property
    def total_cost(self) -> float:
        return sum(r.plan.objective for r in self.results.values())

    @property
    def plans(self) -> List[SharedPlan]:
        return [self.results[name].plan for name in sorted(self.results)]


class MultiQueryOptimizer:
    """Optimizes a workload of multi-way stream join queries jointly.

    Parameters
    ----------
    catalog:
        Statistics source (rates, windows, selectivities).
    config:
        ILP construction knobs (MIRs, constraint form, partitioning layer).
    solver:
        ``"own"``, ``"scipy"``, ``"auto"`` (see :mod:`repro.ilp.solvers`),
        or ``"greedy"`` — promote the grouped greedy heuristic's feasible
        selection to the plan without an exact solve.  Greedy plans are
        valid (every query answered, partitioning consistent) but not
        cost-optimal; they are the fast path for shapes whose exact ILP
        explodes (e.g. large cyclic queries, where candidate probe orders
        over ring-arc MIRs run into thousands of binaries).
    use_greedy_warm_start:
        Seed branch-and-bound with the grouped greedy solution.
    """

    def __init__(
        self,
        catalog: StatisticsCatalog,
        config: Optional[OptimizerConfig] = None,
        solver: SolverMethod | str = SolverMethod.AUTO,
        use_greedy_warm_start: bool = True,
        solver_time_limit: Optional[float] = None,
    ) -> None:
        self.catalog = catalog
        self.config = config or OptimizerConfig()
        self.solver = solver
        self.use_greedy_warm_start = use_greedy_warm_start
        self.solver_time_limit = solver_time_limit

    # ------------------------------------------------------------------
    def build(self, queries: Sequence[Query]) -> MqoIlp:
        """Construct the ILP without solving (used by the size experiments)."""
        return build_mqo_ilp(queries, self.catalog, self.config)

    def optimize(self, queries: Sequence[Query]) -> OptimizationResult:
        """Jointly optimize all queries; raises on infeasibility."""
        t0 = time.perf_counter()
        ilp = self.build(queries)
        t1 = time.perf_counter()

        method = (
            SolverMethod(self.solver)
            if isinstance(self.solver, str)
            else self.solver
        )
        greedy = None
        warm_start = None
        if self.use_greedy_warm_start or method is SolverMethod.GREEDY:
            greedy = solve_greedy(ilp.grouped)
            if greedy is not None:
                warm_start = ilp.warm_start_assignment(greedy)

        if method is SolverMethod.GREEDY:
            if greedy is None or warm_start is None:
                raise RuntimeError(
                    "greedy heuristic found no feasible selection"
                )
            solution = Solution(
                status=SolveStatus.FEASIBLE,
                objective=ilp.model.objective.value(warm_start),
                values=dict(warm_start),
            )
        else:
            solution = solve_model(
                ilp.model,
                method=method,
                warm_start=warm_start,
                time_limit=self.solver_time_limit,
            )
        t2 = time.perf_counter()

        if solution.status not in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE):
            raise RuntimeError(f"MQO ILP solve failed: {solution.status}")

        plan = extract_plan(ilp, solution)
        return OptimizationResult(
            plan=plan,
            ilp=ilp,
            solution=solution,
            greedy=greedy,
            build_seconds=t1 - t0,
            solve_seconds=t2 - t1,
        )

    def optimize_individual(self, queries: Sequence[Query]) -> IndividualResult:
        """Optimize each query in isolation (no cross-query sharing)."""
        results = {q.name: self.optimize([q]) for q in queries}
        return IndividualResult(results=results)
