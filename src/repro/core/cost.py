"""The probe-cost model: Equation (1) of the paper.

For a probe order σ = ⟨B_1, ..., B_m⟩ over stores B_i (input relations or
MIRs), step ρ_j sends the partial join of the first j stores to store
B_{j+1}:

    StepCost(ρ_j) = |⋈ of the relations covered by B_1..B_j| · (1/j) · χ(B_{j+1})

* The cardinality is the catalog's per-time-unit estimate (rates ×
  selectivities of all query predicates applied within the covered set).
* 1/j reflects that an arriving tuple only joins tuples that arrived
  earlier, so each of the j stores contributes the "latest" tuple equally.
* χ is 1 when the probing tuple determines the target store's partitioning
  attribute (via the equality closure of the applied predicates), else the
  target's parallelism — the tuple must be broadcast to every task.

Maintenance probe orders additionally pay a *delivery* step: the final
result is sent into the MIR store.  The full result tuple knows all
attributes, so delivery never broadcasts (χ = 1).

Where the statistics come from: at planning time the catalog holds declared
defaults; under adaptive execution every re-optimization re-evaluates this
model against a catalog folded from the :class:`~repro.engine.statistics`
rolling epoch windows (rates and selectivities as *measured* over the last
``stats_window`` epochs), so the costs compared across epochs track the
live workload rather than the bootstrap estimates — see
:class:`~repro.engine.adaptivity.AdaptivityLoop`.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from .catalog import StatisticsCatalog
from .mir import Mir
from .partitioning import ClusterConfig, DecoratedProbeOrder
from .predicates import JoinPredicate, attribute_closure
from .query import Query
from .schema import Attribute

__all__ = [
    "broadcast_factor",
    "step_cost",
    "delivery_cost",
    "probe_order_cost",
    "StepDescription",
    "probe_order_steps",
]


def broadcast_factor(
    prefix_relations: FrozenSet[str],
    target: Mir,
    partition_attr: Optional[Attribute],
    parallelism: int,
    predicates: Iterable[JoinPredicate],
) -> int:
    """χ of Equation (1) for probing ``target`` with a prefix result tuple.

    ``predicates`` is the full predicate set of the (sub)query being
    answered; the closure is computed over the predicates that fall within
    ``prefix ∪ target`` (those are semantically available at probe time:
    already-applied prefix predicates, the probing predicates, and the
    target store's internal equalities).
    """
    if parallelism <= 1:
        return 1
    if partition_attr is None:
        return parallelism  # no routable scheme: always broadcast
    visible = set(prefix_relations) | set(target.relations)
    relevant = [p for p in predicates if p.relations <= visible]
    # The probing tuple carries every attribute of every prefix relation;
    # seeding with the predicate attributes of those relations is enough,
    # since partitioning attributes always occur in predicates.
    known = {
        attr
        for pred in relevant
        for attr in (pred.left, pred.right)
        if attr.relation in prefix_relations
    }
    closure = attribute_closure(known, relevant)
    return 1 if partition_attr in closure else parallelism


def step_cost(
    catalog: StatisticsCatalog,
    query: Query,
    prefix_stores: Tuple[Mir, ...],
    target: Mir,
    partition_attr: Optional[Attribute],
    parallelism: int,
) -> float:
    """Cost of sending the prefix's partial join result to ``target``."""
    prefix_relations = frozenset(
        rel for store in prefix_stores for rel in store.relations
    )
    cardinality = catalog.join_cardinality(prefix_relations, query.predicates)
    divisor = len(prefix_stores)
    chi = broadcast_factor(
        prefix_relations, target, partition_attr, parallelism, query.predicates
    )
    return cardinality / divisor * chi


def delivery_cost(
    catalog: StatisticsCatalog, query: Query, order_stores: Tuple[Mir, ...]
) -> float:
    """Cost of delivering a completed maintenance result into its MIR store.

    Each result tuple is delivered exactly once, by the maintenance order of
    whichever relation contributed the latest tuple; by symmetry the
    starting relation accounts for ``1/|relations|`` of the results — the
    same fraction regardless of the route taken, so equal-start maintenance
    orders share the delivery step (and its ILP variable).
    """
    relations = frozenset(rel for store in order_stores for rel in store.relations)
    cardinality = catalog.join_cardinality(relations, query.predicates)
    return cardinality / len(relations)


class StepDescription:
    """One costed step of a decorated probe order (shared ILP ``y`` variable).

    The identity key includes the starting relation, the decorated store
    prefix (store canonical ids + partitioning attributes), and the applied
    predicates — two probe orders share a step iff they ship the *same
    physical tuples along the same route* (Section V: "it is crucial that
    the same variable y7 is put into the ILP").
    """

    __slots__ = ("key", "cost", "kind", "description")

    def __init__(self, key: str, cost: float, kind: str, description: str) -> None:
        self.key = key
        self.cost = cost
        self.kind = kind  # "probe" | "deliver"
        self.description = description

    def __repr__(self) -> str:
        return f"Step({self.description}, cost={self.cost:g})"


def probe_order_steps(
    catalog: StatisticsCatalog,
    query: Query,
    decorated: DecoratedProbeOrder,
    cluster: ClusterConfig,
) -> List[StepDescription]:
    """All costed steps of a decorated probe order, including delivery."""
    steps: List[StepDescription] = []
    prefix: Tuple[Mir, ...] = (decorated.start,)
    key_parts: List[str] = [decorated.start.canonical_id]

    prefix_rels = set(decorated.start.relations)
    applied_preds: Set[JoinPredicate] = set()

    for target, attr in decorated.decorated_stores():
        parallelism = cluster.parallelism(target)
        cost = step_cost(catalog, query, prefix, target, attr, parallelism)
        visible = prefix_rels | set(target.relations)
        applied_preds = {
            p for p in query.predicates if p.relations <= visible
        }
        attr_label = str(attr) if attr is not None else "*"
        key_parts.append(f"{target.canonical_id}[{attr_label}]")
        pred_digest = ",".join(sorted(str(p) for p in applied_preds))
        key = "->".join(key_parts) + f"|{pred_digest}"
        steps.append(
            StepDescription(
                key=key,
                cost=cost,
                kind="probe",
                description=f"{decorated.start}->{target}[{attr_label}]",
            )
        )
        prefix = prefix + (target,)
        prefix_rels = visible

    if decorated.is_maintenance:
        assert decorated.target is not None
        cost = delivery_cost(catalog, query, decorated.order.stores)
        key = (
            f"deliver:{decorated.target.canonical_id}"
            f"<-{decorated.start.canonical_id}"
        )
        steps.append(
            StepDescription(
                key=key,
                cost=cost,
                kind="deliver",
                description=f"deliver {decorated.start}->{decorated.target}-store",
            )
        )
    return steps


def probe_order_cost(
    catalog: StatisticsCatalog,
    query: Query,
    decorated: DecoratedProbeOrder,
    cluster: ClusterConfig,
) -> float:
    """PCost of a single decorated probe order (sum of its step costs)."""
    return sum(s.cost for s in probe_order_steps(catalog, query, decorated, cluster))
