"""Merging probe orders into probe trees (paper Figure 4).

All chosen probe orders with the same starting relation are merged into a
*probe tree*: probe orders sharing a prefix (same stores probed with the
same predicates) share the corresponding tree edges, so the shared partial
results are computed once and copied to every child branch.

Node identity along a path is ``(store canonical id, hop predicates)`` —
matching the ILP's step identity, so exactly the steps the optimizer priced
as shared end up physically shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from .ilp_builder import CandidateInfo
from .mir import Mir
from .predicates import JoinPredicate
from .query import Query

__all__ = ["ProbeTreeNode", "ProbeTree", "build_probe_trees"]


@dataclass
class ProbeTreeNode:
    """A store visited while probing; children continue the iteration.

    Attributes
    ----------
    store:
        The probed store (input relation or MIR).
    predicates:
        The equi predicates applied at this hop (between the accumulated
        prefix and this store's relations).
    outputs:
        Query names whose result is complete at this node.
    deliveries:
        MIR stores that receive this node's join result (maintenance).
    """

    store: Mir
    predicates: FrozenSet[JoinPredicate]
    children: List["ProbeTreeNode"] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    deliveries: List[Mir] = field(default_factory=list)
    #: hop predicates in execution order: spanning-tree predicates first
    #: (one of them backs the store's hash index), cycle-closing predicates
    #: last (post-probe filters); defaults to plain sorted order
    ordered_predicates: Tuple[JoinPredicate, ...] = ()

    def __post_init__(self) -> None:
        if not self.ordered_predicates:
            self.ordered_predicates = tuple(sorted(self.predicates))

    def child_for(
        self,
        store: Mir,
        predicates: FrozenSet[JoinPredicate],
        ordered: Tuple[JoinPredicate, ...] = (),
    ) -> "ProbeTreeNode":
        """Find or create the child node for a hop (prefix sharing).

        A hop shared by several queries keeps the *first* query's
        ``ordered`` tuple: if their spanning trees classify the hop's
        predicates differently, the later query may index on what it
        considers a cycle-closing predicate — a plan-quality tie-break,
        never a semantic one (every hop predicate is applied regardless
        of position).
        """
        for child in self.children:
            if (
                child.store.canonical_id == store.canonical_id
                and child.predicates == predicates
            ):
                return child
        child = ProbeTreeNode(
            store=store, predicates=predicates, ordered_predicates=ordered
        )
        self.children.append(child)
        return child

    def walk(self) -> Iterator["ProbeTreeNode"]:
        """Yield all nodes of the subtree (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class ProbeTree:
    """The merged probe tree of one starting relation."""

    start_relation: str
    roots: List[ProbeTreeNode] = field(default_factory=list)

    def root_for(
        self,
        store: Mir,
        predicates: FrozenSet[JoinPredicate],
        ordered: Tuple[JoinPredicate, ...] = (),
    ) -> ProbeTreeNode:
        for root in self.roots:
            if (
                root.store.canonical_id == store.canonical_id
                and root.predicates == predicates
            ):
                return root
        root = ProbeTreeNode(
            store=store, predicates=predicates, ordered_predicates=ordered
        )
        self.roots.append(root)
        return root

    def num_nodes(self) -> int:
        return sum(1 for root in self.roots for _ in root.walk())


def _order_hop_predicates(
    hop_preds: FrozenSet[JoinPredicate],
    spanning: FrozenSet[JoinPredicate],
) -> Tuple[JoinPredicate, ...]:
    """Execution order of one hop's predicates: spanning tree first.

    The first predicate backs the store's hash index, so a cyclic hop
    indexes on a spanning-tree edge while the cycle-closing predicates run
    as post-probe filters over the (already narrowed) candidate list.  The
    order is deterministic — sorted within each group — so topologies and
    their probe rules are reproducible across runs.
    """
    return tuple(
        sorted(hop_preds, key=lambda p: (p not in spanning, p))
    )


def build_probe_trees(chosen: List[CandidateInfo]) -> Dict[str, ProbeTree]:
    """Merge chosen probe orders into one probe tree per starting relation."""
    trees: Dict[str, ProbeTree] = {}
    spanning_cache: Dict[str, FrozenSet[JoinPredicate]] = {}
    for info in chosen:
        order = info.decorated.order
        start = order.start_relation
        tree = trees.setdefault(start, ProbeTree(start_relation=start))

        spanning = spanning_cache.get(info.query.name)
        if spanning is None:
            spanning = info.query.spanning_predicates()
            spanning_cache[info.query.name] = spanning

        node: Optional[ProbeTreeNode] = None
        for store, hop_preds in zip(
            order.sequence, order.hop_predicates(info.query)
        ):
            ordered = _order_hop_predicates(hop_preds, spanning)
            if node is None:
                node = tree.root_for(store, hop_preds, ordered)
            else:
                node = node.child_for(store, hop_preds, ordered)

        assert node is not None, "probe orders always probe at least one store"
        if order.is_maintenance:
            assert order.target is not None
            if all(
                d.canonical_id != order.target.canonical_id for d in node.deliveries
            ):
                node.deliveries.append(order.target)
        else:
            query_name = info.query.name
            if query_name not in node.outputs:
                node.outputs.append(query_name)
    return trees
