"""Core of the reproduction: the paper's multi-query optimizer.

Public surface:

* :class:`Query`, :class:`JoinPredicate`, :class:`StreamRelation` — query model
* :class:`StatisticsCatalog` — rates / windows / selectivities
* :class:`MultiQueryOptimizer` — end-to-end MQO (Algorithm 1 + 2 + solving)
* :class:`SharedPlan` / :func:`build_topology` — executable plan artifacts
"""

from .adaptive import (
    AdaptiveController,
    TopologyDiff,
    diff_topologies,
    plan_signature,
    store_refcounts,
)
from .catalog import StatisticsCatalog
from .cost import broadcast_factor, probe_order_cost, probe_order_steps, step_cost
from .ilp_builder import (
    CandidateInfo,
    MqoIlp,
    OptimizerConfig,
    build_mqo_ilp,
    maintenance_group,
    user_group,
)
from .mir import Mir, enumerate_mirs, input_mir, merge_mirs
from .optimizer import (
    IndividualResult,
    MultiQueryOptimizer,
    OptimizationResult,
    choose_solver,
)
from .partitioning import (
    ClusterConfig,
    DecoratedProbeOrder,
    apply_partitioning,
    partition_candidates,
)
from .plan import SharedPlan, estimate_memory, extract_plan
from .predicates import JoinPredicate, attribute_closure
from .probe_order import (
    ProbeOrder,
    construct_probe_orders,
    maintenance_probe_orders,
    maintenance_query,
)
from .probe_tree import ProbeTree, ProbeTreeNode, build_probe_trees
from .query import CrossProductError, Query
from .schema import Attribute, StreamRelation
from .topology import (
    EdgeSpec,
    ProbeRule,
    StoreRule,
    StoreSpec,
    Topology,
    build_topology,
)

__all__ = [
    "AdaptiveController",
    "Attribute",
    "CandidateInfo",
    "ClusterConfig",
    "CrossProductError",
    "DecoratedProbeOrder",
    "EdgeSpec",
    "IndividualResult",
    "JoinPredicate",
    "Mir",
    "MqoIlp",
    "MultiQueryOptimizer",
    "OptimizationResult",
    "OptimizerConfig",
    "ProbeOrder",
    "ProbeRule",
    "ProbeTree",
    "ProbeTreeNode",
    "Query",
    "SharedPlan",
    "StatisticsCatalog",
    "StoreRule",
    "StoreSpec",
    "StreamRelation",
    "Topology",
    "TopologyDiff",
    "apply_partitioning",
    "attribute_closure",
    "broadcast_factor",
    "build_mqo_ilp",
    "build_probe_trees",
    "build_topology",
    "choose_solver",
    "construct_probe_orders",
    "diff_topologies",
    "enumerate_mirs",
    "estimate_memory",
    "extract_plan",
    "input_mir",
    "maintenance_group",
    "maintenance_probe_orders",
    "maintenance_query",
    "merge_mirs",
    "partition_candidates",
    "plan_signature",
    "probe_order_cost",
    "probe_order_steps",
    "step_cost",
    "store_refcounts",
    "user_group",
]
