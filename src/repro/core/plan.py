"""Optimized plans extracted from ILP solutions.

A :class:`SharedPlan` is the paper's "assignment of probe order variables"
(Section V.B): one decorated probe order per (query, starting relation),
plus maintenance probe orders for every materialized intermediate store the
plan relies on, plus the global store-partitioning choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ilp.model import Solution, SolveStatus
from .catalog import StatisticsCatalog
from .ilp_builder import CandidateInfo, MqoIlp
from .mir import Mir, input_mir
from .query import Query

__all__ = ["SharedPlan", "extract_plan", "estimate_memory", "PlanExtractionError"]


class PlanExtractionError(RuntimeError):
    """Raised when an ILP solution cannot be turned into a coherent plan."""


@dataclass
class SharedPlan:
    """An executable multi-query plan."""

    queries: Tuple[Query, ...]
    chosen: Dict[str, CandidateInfo]  # group -> selected candidate
    partitioning: Dict[str, Optional[str]]  # store canonical id -> attribute
    objective: float
    stores_used: Dict[str, Mir] = field(default_factory=dict)

    @property
    def probe_orders(self) -> List[CandidateInfo]:
        return [self.chosen[g] for g in sorted(self.chosen)]

    def probe_orders_for_query(self, query_name: str) -> List[CandidateInfo]:
        return [
            info
            for group, info in sorted(self.chosen.items())
            if group.startswith(f"q:{query_name}:")
        ]

    def maintenance_orders(self) -> List[CandidateInfo]:
        return [info for info in self.probe_orders if info.is_maintenance]

    @property
    def mir_stores(self) -> List[Mir]:
        return sorted(
            (m for m in self.stores_used.values() if not m.is_input),
        )

    def partition_attribute(self, store: Mir) -> Optional[str]:
        return self.partitioning.get(store.canonical_id)

    def describe(self) -> str:
        """Multi-line human-readable plan summary."""
        lines = [f"SharedPlan: {len(self.queries)} queries, cost {self.objective:g}"]
        for group in sorted(self.chosen):
            lines.append(f"  {group}: {self.chosen[group].decorated}")
        if self.mir_stores:
            names = ", ".join(str(m) for m in self.mir_stores)
            lines.append(f"  MIR stores: {names}")
        parts = ", ".join(
            f"{self.stores_used[sid].display_name}[{attr or '*'}]"
            for sid, attr in sorted(self.partitioning.items())
            if sid in self.stores_used
        )
        lines.append(f"  partitioning: {parts}")
        return "\n".join(lines)


def extract_plan(ilp: MqoIlp, solution: Solution) -> SharedPlan:
    """Turn an ILP solution into a :class:`SharedPlan`.

    Only groups reachable from the mandatory (query) groups through MIR
    activations are included — a solver is free to set stray zero-impact
    variables, which must not inflate the deployed topology.
    """
    if solution.status not in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE):
        raise PlanExtractionError(f"cannot extract plan from {solution.status}")

    selected_by_group: Dict[str, List[CandidateInfo]] = {}
    for name, var in ilp.x_vars.items():
        if solution.value(var) > 0.5:
            info = ilp.candidates[name]
            selected_by_group.setdefault(info.group, []).append(info)

    chosen: Dict[str, CandidateInfo] = {}
    pending = list(ilp.mandatory_groups)
    seen: Set[str] = set()
    while pending:
        group = pending.pop()
        if group in seen:
            continue
        seen.add(group)
        picks = selected_by_group.get(group, [])
        if len(picks) != 1:
            raise PlanExtractionError(
                f"group {group} has {len(picks)} selected probe orders, expected 1"
            )
        info = picks[0]
        chosen[group] = info
        pending.extend(info.activates)

    # Store partitioning: z variables where present, otherwise commitments.
    partitioning: Dict[str, Optional[str]] = {}
    for (store_id, attr), var in ilp.z_vars.items():
        if solution.value(var) > 0.5:
            partitioning[store_id] = attr
    for info in chosen.values():
        for store_id, attr in info.commitments:
            partitioning.setdefault(store_id, attr)
    for store_id, options in ilp.store_options.items():
        if store_id not in partitioning:
            first = options[0]
            partitioning[store_id] = str(first) if first is not None else None

    stores_used: Dict[str, Mir] = {}
    for query in ilp.queries:
        for relation in query.relations:
            mir = input_mir(relation)
            stores_used[mir.canonical_id] = mir
    for info in chosen.values():
        for mir in info.decorated.order.sequence:
            stores_used[mir.canonical_id] = mir
        if info.decorated.target is not None:
            stores_used[info.decorated.target.canonical_id] = (
                info.decorated.target
            )

    objective = sum(
        ilp.steps[key].cost
        for key in {k for info in chosen.values() for k in info.step_keys}
    )

    return SharedPlan(
        queries=ilp.queries,
        chosen=chosen,
        partitioning=partitioning,
        objective=objective,
        stores_used=stores_used,
    )


def estimate_memory(
    plan: SharedPlan,
    catalog: StatisticsCatalog,
    tuple_bytes: float = 64.0,
) -> float:
    """Approximate steady-state state size of the plan's stores, in bytes.

    Input stores hold ``rate × window`` tuples; an MIR store holds the
    windowed intermediate result (its per-time-unit cardinality times the
    longest member window).  Tuple width scales with the number of joined
    relations, mirroring concatenated join results.
    """
    total = 0.0
    for store in plan.stores_used.values():
        if store.is_input:
            (relation,) = store.relations
            tuples = catalog.stored_tuples(relation)
        else:
            rate = catalog.join_cardinality(store.relations, store.predicates)
            window = max(catalog.window(rel) for rel in store.relations)
            if window == float("inf"):
                raise ValueError(
                    f"cannot size MIR store {store}: unbounded window"
                )
            tuples = rate * window
        total += tuples * len(store.relations) * tuple_bytes
    return total
