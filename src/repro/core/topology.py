"""Translation of shared plans into deployable topologies (Section V.B).

A :class:`Topology` is the static description the execution engine runs:
partitioned stores, labelled edges, and per-store *rulesets* mapping an
incoming edge label to store/probe rules (paper Algorithm 3: "if tuple
arrives from edge Ein, probe using predicate P, and send result to Eout").

Edge labels — not sending stores — identify behaviour, because tuples from
different probe trees may travel between the same pair of stores with
different predicates or continuations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from .catalog import StatisticsCatalog
from .ilp_builder import CandidateInfo
from .mir import Mir
from .partitioning import ClusterConfig
from .plan import SharedPlan
from .predicates import JoinPredicate, attribute_closure
from .probe_tree import ProbeTree, ProbeTreeNode, build_probe_trees
from .query import Query
from .schema import Attribute

__all__ = [
    "StoreSpec",
    "EdgeSpec",
    "StoreRule",
    "ProbeRule",
    "Rule",
    "Topology",
    "build_topology",
]


@dataclass(frozen=True)
class StoreSpec:
    """A partitioned relation/MIR store."""

    store_id: str
    mir: Mir
    partition_attr: Optional[str]  # qualified, e.g. "S.a"; None = unpartitioned
    parallelism: int
    retention: float  # seconds of state to keep (max window over queries)

    @property
    def display_name(self) -> str:
        return self.mir.display_name


@dataclass(frozen=True)
class EdgeSpec:
    """A labelled routing edge into a store.

    ``route_by`` names the attribute *of the sending tuple* whose value
    determines the target partition; ``None`` means broadcast to all tasks
    (the χ > 1 case of the cost model).
    """

    label: str
    target_store: str
    route_by: Optional[str]


@dataclass(frozen=True)
class StoreRule:
    """Store the arriving tuple in the local container."""

    kind: str = "store"


@dataclass(frozen=True)
class ProbeRule:
    """Probe the local container and forward/emit each join result."""

    predicates: Tuple[JoinPredicate, ...]
    out_edges: Tuple[str, ...]
    outputs: Tuple[str, ...]
    kind: str = "probe"


Rule = Union[StoreRule, ProbeRule]


@dataclass
class Topology:
    """Everything the engine needs to run a plan."""

    stores: Dict[str, StoreSpec]
    edges: Dict[str, EdgeSpec]
    rulesets: Dict[str, Dict[str, List[Rule]]]  # store -> edge label -> rules
    ingest: Dict[str, List[str]]  # input relation -> edge labels for new tuples
    queries: Dict[str, Query]

    def rules_for(self, store_id: str, edge_label: str) -> List[Rule]:
        return self.rulesets.get(store_id, {}).get(edge_label, [])

    @property
    def num_tasks(self) -> int:
        return sum(spec.parallelism for spec in self.stores.values())

    def describe(self) -> str:
        lines = [f"Topology: {len(self.stores)} stores, {len(self.edges)} edges"]
        for store_id in sorted(self.stores):
            spec = self.stores[store_id]
            lines.append(
                f"  store {spec.display_name}[{spec.partition_attr or '*'}]"
                f" x{spec.parallelism}"
            )
        return "\n".join(lines)


class _TopologyBuilder:
    def __init__(
        self,
        plan: SharedPlan,
        catalog: StatisticsCatalog,
        cluster: ClusterConfig,
    ) -> None:
        self.plan = plan
        self.catalog = catalog
        self.cluster = cluster
        self.labels = (f"e{i}" for i in itertools.count())
        self.stores: Dict[str, StoreSpec] = {}
        self.edges: Dict[str, EdgeSpec] = {}
        self.rulesets: Dict[str, Dict[str, List[Rule]]] = {}
        self.ingest: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    def build(self) -> Topology:
        for mir in self.plan.stores_used.values():
            self._add_store(mir)

        # Storage edges: every input tuple is persisted in its own store.
        for mir in sorted(self.plan.stores_used.values()):
            if not mir.is_input:
                continue
            (relation,) = mir.relations
            spec = self.stores[mir.canonical_id]
            label = next(self.labels)
            self.edges[label] = EdgeSpec(
                label=label,
                target_store=mir.canonical_id,
                route_by=spec.partition_attr,
            )
            self._add_rule(mir.canonical_id, label, StoreRule())
            self.ingest.setdefault(relation, []).append(label)

        trees = build_probe_trees(self.plan.probe_orders)
        for relation in sorted(trees):
            self._wire_tree(trees[relation])

        return Topology(
            stores=self.stores,
            edges=self.edges,
            rulesets=self.rulesets,
            ingest=self.ingest,
            queries={q.name: q for q in self.plan.queries},
        )

    # ------------------------------------------------------------------
    def _add_store(self, mir: Mir) -> None:
        if mir.canonical_id in self.stores:
            return
        retention = 0.0
        for query in self.plan.queries:
            if not mir.relations <= query.relation_set:
                continue
            for relation in mir.relations:
                window = query.window_of(relation, self.catalog.window(relation))
                retention = max(retention, window)
        if retention == 0.0:
            retention = max(
                (self.catalog.window(rel) for rel in mir.relations),
                default=float("inf"),
            )
        self.stores[mir.canonical_id] = StoreSpec(
            store_id=mir.canonical_id,
            mir=mir,
            partition_attr=self.plan.partitioning.get(mir.canonical_id),
            parallelism=self.cluster.parallelism(mir),
            retention=retention,
        )

    def _add_rule(self, store_id: str, edge_label: str, rule: Rule) -> None:
        self.rulesets.setdefault(store_id, {}).setdefault(edge_label, []).append(rule)

    def _wire_tree(self, tree: ProbeTree) -> None:
        """Create edges and rules for one starting relation's probe tree."""
        for root in tree.roots:
            label = self._wire_node(
                node=root,
                prefix_relations=frozenset((tree.start_relation,)),
            )
            self.ingest.setdefault(tree.start_relation, []).append(label)

    def _wire_node(
        self,
        node: ProbeTreeNode,
        prefix_relations: FrozenSet[str],
    ) -> str:
        """Wire ``node`` and its subtree; returns the incoming edge label."""
        store_id = node.store.canonical_id
        spec = self.stores[store_id]
        label = next(self.labels)
        self.edges[label] = EdgeSpec(
            label=label,
            target_store=store_id,
            route_by=self._route_attribute(
                prefix_relations, node.store, spec.partition_attr, node.predicates
            ),
        )

        covered = prefix_relations | node.store.relations
        out_edges: List[str] = []
        for child in node.children:
            out_edges.append(self._wire_node(child, covered))
        for target in node.deliveries:
            out_edges.append(self._wire_delivery(target))

        # Execution order from the probe tree: spanning-tree predicates
        # first (the leading one backs the store's hash index), cycle-closing
        # predicates last, applied as post-probe filters.
        self._add_rule(
            store_id,
            label,
            ProbeRule(
                predicates=node.ordered_predicates,
                out_edges=tuple(out_edges),
                outputs=tuple(node.outputs),
            ),
        )
        return label

    def _wire_delivery(self, target: Mir) -> str:
        """Edge carrying a completed intermediate result into its MIR store."""
        spec = self.stores[target.canonical_id]
        label = next(self.labels)
        # The full result contains every attribute of the MIR's relations, so
        # the partitioning attribute is always directly available.
        self.edges[label] = EdgeSpec(
            label=label,
            target_store=target.canonical_id,
            route_by=spec.partition_attr,
        )
        self._add_rule(target.canonical_id, label, StoreRule())
        return label

    def _route_attribute(
        self,
        prefix_relations: FrozenSet[str],
        target: Mir,
        partition_attr: Optional[str],
        hop_predicates: FrozenSet[JoinPredicate],
    ) -> Optional[str]:
        """Attribute of the sending tuple that determines the target partition.

        Mirrors the χ computation of the cost model: the closure of the
        sender's attributes under the equalities visible at this hop.  If
        the partitioning attribute is unreachable, returns ``None``
        (broadcast).
        """
        if partition_attr is None:
            return None
        target_attr = Attribute.parse(partition_attr)
        if target_attr.relation in prefix_relations:
            return partition_attr
        # Find any sender attribute equal to the partitioning attribute.
        visible_predicates = set(hop_predicates) | set(target.predicates)
        closure = attribute_closure([target_attr], visible_predicates)
        for attr in sorted(closure):
            if attr.relation in prefix_relations:
                return str(attr)
        return None


def build_topology(
    plan: SharedPlan,
    catalog: StatisticsCatalog,
    cluster: Optional[ClusterConfig] = None,
) -> Topology:
    """Build the deployable topology of a shared plan."""
    return _TopologyBuilder(plan, catalog, cluster or ClusterConfig()).build()
