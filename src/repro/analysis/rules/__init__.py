"""The rule catalog.

Adding a rule: implement :class:`~repro.analysis.rules.base.FileRule`
or :class:`~repro.analysis.rules.base.ProgramRule` in a family module
(or a new one), list the instance here, add a firing + non-firing
fixture pair under ``tests/analysis/fixtures/``, and document it in
``docs/analysis.md`` — ``tests/analysis/test_catalog.py`` cross-checks
all three stay in sync.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .api import ExportsBoundRule, ExportsDocumentedRule
from .base import FileRule, ProgramRule
from .det import SetIterationRule, UnseededRandomRule, WallClockRule
from .met import MetricsDocumentedRule, MetricsMutationRule
from .shard import GlobalMutationRule, ShippedClosureRule
from .typ import BareGenericRule, UntypedDefRule

__all__ = ["all_rules", "rule_catalog"]

_FILE_RULES: Tuple[FileRule, ...] = (
    WallClockRule(),
    UnseededRandomRule(),
    SetIterationRule(),
    ShippedClosureRule(),
    GlobalMutationRule(),
    ExportsBoundRule(),
)

_PROGRAM_RULES: Tuple[ProgramRule, ...] = (
    MetricsMutationRule(),
    MetricsDocumentedRule(),
    ExportsDocumentedRule(),
    UntypedDefRule(),
    BareGenericRule(),
)


def all_rules() -> Tuple[List[FileRule], List[ProgramRule]]:
    """The active catalog as (per-file rules, whole-program rules)."""
    return list(_FILE_RULES), list(_PROGRAM_RULES)


def rule_catalog() -> Dict[str, Tuple[str, str]]:
    """``{rule id: (title, rationale)}`` for docs/CLI listings.

    ``SUP001`` (unjustified suppression) and ``ERR001`` (syntax error)
    are engine-level and always active, so they are listed here too.
    """
    catalog: Dict[str, Tuple[str, str]] = {}
    for rule in (*_FILE_RULES, *_PROGRAM_RULES):
        catalog[rule.rule_id] = (rule.title, rule.rationale)
    catalog["SUP001"] = (
        "suppression without justification",
        "An allow-comment must say *why* the finding is a false "
        "positive; unexplained suppressions are unreviewable and "
        "cannot themselves be suppressed.",
    )
    catalog["ERR001"] = (
        "file does not parse",
        "A syntax error means no rule ran on the file; the analyzer "
        "fails loudly instead of silently skipping it.",
    )
    return dict(sorted(catalog.items()))
