"""DET — determinism rules for engine/sharded paths.

Every parity guarantee in this repo (sharded == single-process result
and metric equality, backend/vectorization invariance, deterministic
emission merge) assumes the engine is a pure function of its input feed.
These rules flag the three ways that silently stops being true: reading
wall clocks, drawing from shared unseeded RNGs, and letting Python's
hash-randomized set iteration order leak into ordered outputs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set

from ..engine import FileContext
from ..findings import Finding
from .base import FileRule, dotted_name, import_aliases

__all__ = ["WallClockRule", "UnseededRandomRule", "SetIterationRule"]

#: modules whose behaviour must be a pure function of the input feed
_DETERMINISTIC_CORE = ("src/repro/engine", "src/repro/core", "src/repro/session.py")

_WALL_CLOCK_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
}


class WallClockRule(FileRule):
    rule_id = "DET001"
    title = "wall-clock read in deterministic engine/core code"
    rationale = (
        "Replay determinism (verify(), the differential suite, sharded "
        "parity) requires engine behaviour to depend only on event time "
        "carried by tuples.  time.perf_counter is allowed for duration "
        "reporting; decisions must never read the machine clock."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.in_dir(*_DETERMINISTIC_CORE):
            return []
        assert ctx.tree is not None
        aliases = import_aliases(ctx.tree)
        out: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func, aliases)
            if dotted in _WALL_CLOCK_CALLS:
                out.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"{dotted}() is a {_WALL_CLOCK_CALLS[dotted]}; engine "
                        "behaviour must depend only on event time (use tuple "
                        "timestamps, or time.perf_counter for durations)",
                    )
                )
        return out


class UnseededRandomRule(FileRule):
    rule_id = "DET002"
    title = "unseeded or module-level RNG use"
    rationale = (
        "The module-level random.* functions and the legacy numpy "
        "np.random.* API draw from shared global state: results change "
        "run to run and library-import order can perturb them.  All "
        "randomness must flow through an explicitly seeded "
        "random.Random(seed) or numpy.random.default_rng(seed)."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        aliases = import_aliases(ctx.tree)
        out: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func, aliases)
            if dotted is None:
                continue
            if dotted == "random.Random":
                if not node.args and not node.keywords:
                    out.append(
                        ctx.finding(
                            node,
                            self.rule_id,
                            "random.Random() without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                    )
            elif dotted.startswith("random."):
                out.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"{dotted}() uses the shared module-level RNG; "
                        "thread an explicitly seeded random.Random through "
                        "instead",
                    )
                )
            elif dotted == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    out.append(
                        ctx.finding(
                            node,
                            self.rule_id,
                            "numpy.random.default_rng() without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                    )
            elif dotted.startswith("numpy.random."):
                out.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"{dotted}() is the legacy global-state numpy RNG "
                        "API; use numpy.random.default_rng(seed)",
                    )
                )
        return out


#: method names whose call inside a set-iterating loop leaks iteration
#: order into an ordered output (list growth, queues, model/constraint
#: construction, emission, metrics observation)
_ORDER_SINK_ATTRS: Set[str] = {
    "append",
    "appendleft",
    "extend",
    "insert",
    "put",
    "send",
    "write",
    "observe",
    "record",
    "emit",
}


def _is_set_expr(node: ast.expr, aliases: Dict[str, str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func, aliases)
        return dotted in ("set", "frozenset")
    return False


def _is_set_annotation(node: Optional[ast.expr], aliases: Dict[str, str]) -> bool:
    if node is None:
        return False
    target = node.value if isinstance(node, ast.Subscript) else node
    dotted = dotted_name(target, aliases)
    return dotted in (
        "set",
        "frozenset",
        "typing.Set",
        "typing.FrozenSet",
        "typing.AbstractSet",
        "collections.abc.Set",
    )


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function definitions."""
    stack: List[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            # nested defs open their own scope; _scopes() visits them
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


def _sink_in(body: List[ast.stmt]) -> Optional[ast.AST]:
    """First ordering-sensitive operation in a loop body, if any."""
    for stmt in body:
        for node in _walk_scope(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return node
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and (
                    func.attr in _ORDER_SINK_ATTRS or func.attr.startswith("add_")
                ):
                    return node
                if isinstance(func, ast.Name) and "hash" in func.id:
                    return node
    return None


class SetIterationRule(FileRule):
    rule_id = "DET003"
    title = "set iteration order leaking into an ordered output"
    rationale = (
        "Set iteration order depends on PYTHONHASHSEED for str keys: a "
        "loop over a set that appends, yields, emits, sends, or builds "
        "model constraints produces a different sequence every run.  "
        "Wrap the iterable in sorted(...).  Dict iteration is exempt — "
        "CPython dicts are insertion-ordered, so their order is as "
        "deterministic as the code that filled them."
    )

    _SCOPE = (
        "src/repro/engine",
        "src/repro/core",
        "src/repro/ilp",
        "src/repro/session.py",
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.in_dir(*self._SCOPE):
            return []
        assert ctx.tree is not None
        aliases = import_aliases(ctx.tree)
        out: List[Finding] = []
        for scope in self._scopes(ctx.tree):
            set_names = self._set_valued_names(scope, aliases)
            for node in _walk_scope(scope):
                if not isinstance(node, ast.For):
                    continue
                iterable = node.iter
                is_set = _is_set_expr(iterable, aliases) or (
                    isinstance(iterable, ast.Name) and iterable.id in set_names
                )
                if not is_set:
                    continue
                sink = _sink_in(node.body)
                if sink is None:
                    continue
                out.append(
                    ctx.finding(
                        iterable,
                        self.rule_id,
                        "loop over a set feeds an ordering-sensitive "
                        f"operation (line {getattr(sink, 'lineno', '?')}); "
                        "iterate sorted(...) so output order survives "
                        "hash randomization",
                    )
                )
        return out

    @staticmethod
    def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def _set_valued_names(scope: ast.AST, aliases: Dict[str, str]) -> Set[str]:
        """Names assigned/annotated as sets within this scope (flow-lite)."""
        names: Set[str] = set()
        for node in _walk_scope(scope):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value, aliases):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and _is_set_annotation(
                    node.annotation, aliases
                ):
                    names.add(node.target.id)
            elif isinstance(node, ast.arg):
                if _is_set_annotation(node.annotation, aliases):
                    names.add(node.arg)
        return names
