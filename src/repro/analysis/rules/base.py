"""Rule base classes and shared AST utilities.

Rules come in two shapes: :class:`FileRule` (sees one parsed file) and
:class:`ProgramRule` (sees the whole :class:`~repro.analysis.engine.Program`
— all files plus project docs/config).  Both carry their identifier,
one-line title, and rationale so the CLI and ``docs/analysis.md`` render
the same catalog.

The helpers here implement the one piece of semantic context nearly
every rule needs: resolving a ``Name``/``Attribute`` chain through the
module's imports to a dotted path (``np.random.rand`` →
``numpy.random.rand``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..engine import FileContext, Program
from ..findings import Finding

__all__ = [
    "FileRule",
    "ProgramRule",
    "import_aliases",
    "dotted_name",
    "walk_annotation",
]


class FileRule:
    """A rule evaluated once per parsed source file."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError


class ProgramRule:
    """A rule evaluated once over the whole scanned program."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check_program(self, program: Program) -> Iterable[Finding]:
        raise NotImplementedError


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted path they import.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from time import time`` → ``{"time": "time.time"}``;
    ``import os.path`` → ``{"os": "os"}`` (binds the root package).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: package-internal, not stdlib
                continue
            module = node.module or ""
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{module}.{alias.name}" if module else alias.name
    return aliases


def dotted_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain to a dotted path through imports.

    Unresolvable shapes (calls, subscripts) return None.  A bare name
    that is not an import alias resolves to itself — callers matching
    against module paths like ``time.time`` are unaffected, since a
    local variable would need the same name *and* the matched attribute
    chain to collide.
    """
    if isinstance(node, ast.Name):
        return aliases.get(node.id, node.id)
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value, aliases)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def walk_annotation(node: ast.expr) -> Iterator[Tuple[ast.expr, bool]]:
    """Yield ``(subnode, is_bare)`` for every node in an annotation.

    ``is_bare`` is True for Name/Attribute nodes that are *not* the
    value side of a ``Subscript`` (``List`` in ``List[int]`` is not
    bare; a standalone ``List`` is).  String annotations are parsed and
    traversed transparently.
    """
    stack: List[Tuple[ast.expr, bool]] = [(node, True)]
    while stack:
        current, bare = stack.pop()
        if isinstance(current, ast.Constant) and isinstance(current.value, str):
            try:
                parsed = ast.parse(current.value, mode="eval").body
            except SyntaxError:
                continue
            # keep original positions approximately: copy location
            ast.copy_location(parsed, current)
            for child in ast.walk(parsed):
                ast.copy_location(child, current)
            stack.append((parsed, bare))
            continue
        if isinstance(current, (ast.Name, ast.Attribute)):
            yield current, bare
            if isinstance(current, ast.Attribute):
                # the chain below an Attribute is part of the same dotted
                # name; do not re-report its pieces
                continue
        if isinstance(current, ast.Subscript):
            stack.append((current.value, False))
            stack.append((current.slice, True))
            continue
        for child in ast.iter_child_nodes(current):
            if isinstance(child, ast.expr):
                stack.append((child, True))
    return
