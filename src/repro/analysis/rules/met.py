"""MET — metrics discipline rules.

``EngineMetrics`` counters back every headline parity claim (flow
counters invariant under backends/vectorization, exact sharded metric
parity), so two conventions are machine-checked here:

* counters are mutated only inside ``src/repro/engine/`` — outside
  code reads them (MET001);
* every counter field declared in ``metrics.py`` is documented in
  ``docs/engine.md`` or ``docs/api.md`` (MET002), so the documented
  metric surface cannot silently drift from the dataclass.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Tuple

from ..engine import FileContext, Program
from ..findings import Finding
from .base import ProgramRule

__all__ = ["MetricsMutationRule", "MetricsDocumentedRule", "metrics_fields"]

_METRICS_PATH = "src/repro/engine/metrics.py"
_METRICS_CLASS = "EngineMetrics"
_ENGINE_DIR = "src/repro/engine"


def metrics_fields(program: Program) -> List[Tuple[str, int]]:
    """``(field name, line)`` for every declared EngineMetrics field."""
    ctx = program.file_by_rel_path(_METRICS_PATH)
    if ctx is None or ctx.tree is None:
        return []
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == _METRICS_CLASS:
            fields: List[Tuple[str, int]] = []
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields.append((stmt.target.id, stmt.lineno))
            return fields
    return []


def _mentions_metrics(node: ast.expr) -> bool:
    """True if the attribute chain under ``node`` references metrics."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "metrics" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "metrics" in sub.attr.lower():
            return True
    return False


class MetricsMutationRule(ProgramRule):
    rule_id = "MET001"
    title = "EngineMetrics counter mutated outside src/repro/engine/"
    rationale = (
        "Counter semantics (what exactly one increment means) are an "
        "engine-internal contract; the differential suite asserts exact "
        "counter parity across shards, backends, and vectorization.  A "
        "write from outside the engine package bypasses that contract "
        "and breaks parity invisibly."
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        fields = {name for name, _ in metrics_fields(program)}
        if not fields:
            return []
        out: List[Finding] = []
        for ctx in program.files:
            if ctx.tree is None or ctx.in_dir(_ENGINE_DIR, _METRICS_PATH):
                continue
            for node in ast.walk(ctx.tree):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in fields
                        and _mentions_metrics(target.value)
                    ):
                        out.append(
                            ctx.finding(
                                target,
                                self.rule_id,
                                f"write to metrics counter '{target.attr}' "
                                "outside src/repro/engine/; counters are "
                                "mutated only by the engine (reads are fine)",
                            )
                        )
        return out


class MetricsDocumentedRule(ProgramRule):
    rule_id = "MET002"
    title = "EngineMetrics field missing from the documentation"
    rationale = (
        "docs/engine.md and docs/api.md are the metric surface users "
        "rely on; an undocumented counter is either dead weight or an "
        "undocumented contract.  Private fields (leading underscore) "
        "are exempt."
    )

    _DOCS = ("docs/engine.md", "docs/api.md")

    def check_program(self, program: Program) -> Iterable[Finding]:
        fields = metrics_fields(program)
        if not fields:
            return []
        docs = [text for rel in self._DOCS if (text := program.read_doc(rel))]
        if not docs:
            return []  # docs not in this checkout: nothing to hold against
        out: List[Finding] = []
        for name, line in fields:
            if name.startswith("_"):
                continue
            pattern = re.compile(rf"\b{re.escape(name)}\b")
            if any(pattern.search(text) for text in docs):
                continue
            out.append(
                Finding(
                    path=_METRICS_PATH,
                    line=line,
                    col=4,
                    rule=self.rule_id,
                    message=(
                        f"metrics field '{name}' is not mentioned in "
                        "docs/engine.md or docs/api.md; document it or "
                        "remove it"
                    ),
                )
            )
        return out
