"""SHARD — shard-boundary safety rules.

``ShardedRuntime`` ships values to worker processes over pickling
transports and replicates module state per process.  Two structural
hazards follow:

* values containing lambdas / locally-defined functions or classes
  cannot pickle (or worse, pickle by reference and diverge);
* mutating a module-level global only changes *one* process's copy —
  the exact class of bug PR 7 fixed by promoting the
  ``AUTO_WIDTH``/``PROBE_THRESHOLD`` constants to config knobs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from ..engine import FileContext
from ..findings import Finding
from .base import FileRule, dotted_name, import_aliases

__all__ = ["ShippedClosureRule", "GlobalMutationRule"]

#: call shapes that move a value across the process boundary
_SHIP_ATTRS = {"send", "send_bytes", "put", "put_nowait", "submit", "apply_async"}
_SHIP_NAMES = {"multiprocessing.Process", "Process"}


class ShippedClosureRule(FileRule):
    rule_id = "SHARD001"
    title = "lambda or local definition shipped to a worker process"
    rationale = (
        "Worker transports pickle every shipped value.  Lambdas and "
        "function-local def/class objects either fail to pickle "
        "(AttributeError at runtime, only under workers>1 with the "
        "process transport) or re-import differently per process.  "
        "Ship plain data and module-level callables only."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        aliases = import_aliases(ctx.tree)
        local_defs = _function_local_definitions(ctx.tree)
        out: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_shipping_call(node, aliases):
                continue
            payload: List[ast.expr] = list(node.args) + [
                kw.value for kw in node.keywords
            ]
            for arg in payload:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Lambda):
                        out.append(
                            ctx.finding(
                                sub,
                                self.rule_id,
                                "lambda inside a value shipped to a worker "
                                "process cannot pickle; use a module-level "
                                "function or plain data",
                            )
                        )
                    elif isinstance(sub, ast.Name) and sub.id in local_defs:
                        out.append(
                            ctx.finding(
                                sub,
                                self.rule_id,
                                f"'{sub.id}' is defined inside a function; "
                                "shipping it to a worker process cannot "
                                "pickle — move it to module level",
                            )
                        )
        return out

    @staticmethod
    def _is_shipping_call(node: ast.Call, aliases: Dict[str, str]) -> bool:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _SHIP_ATTRS:
            return True
        dotted = dotted_name(func, aliases)
        return dotted in _SHIP_NAMES


def _function_local_definitions(tree: ast.Module) -> Set[str]:
    """Names of functions/classes defined inside another function."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for sub in ast.walk(node):
            if sub is node:
                continue
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(sub.name)
    return names


class GlobalMutationRule(FileRule):
    rule_id = "SHARD002"
    title = "module-level global mutated from engine-reachable code"
    rationale = (
        "Worker processes each hold their own copy of every module "
        "global: a mutation on the driver silently never reaches the "
        "workers (and vice versa), so behaviour diverges between "
        "workers=1 and workers=N.  Route tunables through RuntimeConfig "
        "fields instead (how PR 7 fixed the auto-backend thresholds)."
    )

    _SCOPE = ("src/repro/engine", "src/repro/core", "src/repro/session.py")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.in_dir(*self._SCOPE):
            return []
        assert ctx.tree is not None
        aliases = import_aliases(ctx.tree)
        module_aliases = _module_valued_aliases(ctx.tree, aliases)
        out: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                out.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        "'global "
                        + ", ".join(node.names)
                        + "' rebinds module state from a function; worker "
                        "processes will not see the change — use a config "
                        "field or instance attribute",
                    )
                )
                continue
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                base = target.value
                if isinstance(base, ast.Name) and base.id in module_aliases:
                    out.append(
                        ctx.finding(
                            target,
                            self.rule_id,
                            f"assignment to module attribute "
                            f"'{module_aliases[base.id]}.{target.attr}' "
                            "mutates per-process global state; use a "
                            "config field instead",
                        )
                    )
        return out


def _module_valued_aliases(
    tree: ast.Module, aliases: Dict[str, str]
) -> Dict[str, str]:
    """Local names that are bound to *modules* (not to imported objects).

    ``import x.y as m`` and ``from . import stores`` bind modules;
    ``from x import Thing`` usually binds an object — distinguishing the
    two statically is undecidable, so only plain ``import`` statements
    and relative ``from . import submodule`` (lowercase, non-underscore)
    names are treated as modules.
    """
    modules: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                modules[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.level and node.module is None:
            # ``from . import stores`` binds the submodule itself
            for alias in node.names:
                local = alias.asname or alias.name
                modules[local] = alias.name
    return modules
