"""API — public-surface drift rules.

``repro.__all__`` is the documented surface; ``docs/api.md`` promises
that **every name exported from repro appears there**.  API001 is that
promise as a checker (``tests/test_public_api.py`` consumes it, so the
gate has exactly one implementation).  API002 generalizes the other
direction of export hygiene to every module: an ``__all__`` entry that
is not actually bound in its module is a typo waiting for an importer.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional, Set, Tuple

from ..engine import FileContext, Program
from ..findings import Finding
from .base import FileRule, ProgramRule

__all__ = ["ExportsDocumentedRule", "ExportsBoundRule", "module_all"]

_PACKAGE_INIT = "src/repro/__init__.py"
_API_DOC = "docs/api.md"


def module_all(tree: ast.Module) -> Optional[List[Tuple[str, int]]]:
    """``(name, line)`` pairs of the module's ``__all__``, or None.

    Only literal list/tuple assignments are understood — which is also
    the only form the import machinery and doc tooling can rely on.
    """
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        value = node.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None
        out: List[Tuple[str, int]] = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.append((element.value, element.lineno))
        return out
    return None


class ExportsDocumentedRule(ProgramRule):
    rule_id = "API001"
    title = "repro.__all__ export missing from docs/api.md"
    rationale = (
        "docs/api.md is the public contract; every name exported from "
        "the top-level package must appear there (the inverse of "
        "undocumented API drift).  Enforced here and consumed by "
        "tests/test_public_api.py — one implementation of the gate."
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        ctx = program.file_by_rel_path(_PACKAGE_INIT)
        if ctx is None or ctx.tree is None:
            return []
        exports = module_all(ctx.tree)
        if not exports:
            return []
        doc = program.read_doc(_API_DOC)
        if doc is None:
            return []
        out: List[Finding] = []
        for name, line in exports:
            if re.search(rf"\b{re.escape(name)}\b", doc):
                continue
            out.append(
                Finding(
                    path=_PACKAGE_INIT,
                    line=line,
                    col=4,
                    rule=self.rule_id,
                    message=(
                        f"exported name '{name}' does not appear in "
                        "docs/api.md; document it or remove the export"
                    ),
                )
            )
        return out


class ExportsBoundRule(FileRule):
    rule_id = "API002"
    title = "__all__ entry not bound in its module"
    rationale = (
        "An __all__ entry without a matching definition or import makes "
        "`from module import *` raise AttributeError and misleads "
        "readers about the module's surface."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        exports = module_all(ctx.tree)
        if not exports:
            return []
        bound = _bound_names(ctx.tree)
        out: List[Finding] = []
        for name, line in exports:
            if name in bound or name == "__version__":
                continue
            out.append(
                Finding(
                    path=ctx.rel_path,
                    line=line,
                    col=4,
                    rule=self.rule_id,
                    message=(
                        f"__all__ lists '{name}' but the module never "
                        "defines, assigns, or imports it"
                    ),
                )
            )
        return out


def _bound_names(tree: ast.Module) -> Set[str]:
    """Every name the module could bind (deliberate overapproximation)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names
