"""TYP — the locally-enforceable half of the strict-typing ratchet.

``mypy.ini`` lists the modules under strict typing; mypy itself runs in
the CI ``static-analysis`` job (it is not vendored into every dev
environment).  These rules keep the *mechanical* strict requirements —
complete signatures and no bare generics — checkable offline, so a
ratcheted module cannot regress between CI runs.  The module list is
read from ``mypy.ini`` (single source of truth): sections that set
``disallow_untyped_defs = True`` are the ratchet.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..engine import FileContext, Program
from ..findings import Finding
from .base import ProgramRule, dotted_name, import_aliases, walk_annotation

__all__ = ["UntypedDefRule", "BareGenericRule", "module_matches_ratchet"]


def module_matches_ratchet(module: Optional[str], patterns: Sequence[str]) -> bool:
    """mypy-style module pattern match: ``a.b.*`` covers ``a.b`` and below."""
    if module is None:
        return False
    for pattern in patterns:
        if pattern.endswith(".*"):
            base = pattern[: -len(".*")]
            if module == base or module.startswith(base + "."):
                return True
        elif module == pattern:
            return True
    return False


def _ratcheted_files(program: Program) -> Iterator[FileContext]:
    patterns = program.ratchet_modules()
    if not patterns:
        return
    for ctx in program.files:
        if ctx.tree is not None and module_matches_ratchet(
            ctx.module_name, patterns
        ):
            yield ctx


def _defs(tree: ast.Module) -> Iterator[Tuple[ast.AST, bool]]:
    """All function defs with whether each is a direct class-body method."""
    class_bodies = {
        id(stmt)
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
        for stmt in node.body
    }
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, id(node) in class_bodies


def _is_static(node: ast.AST) -> bool:
    return any(
        isinstance(dec, ast.Name) and dec.id == "staticmethod"
        for dec in getattr(node, "decorator_list", [])
    )


class UntypedDefRule(ProgramRule):
    rule_id = "TYP001"
    title = "incomplete signature in a strict-ratchet module"
    rationale = (
        "Modules listed in mypy.ini's strict sections promise complete "
        "signatures; this is the offline check for the same promise "
        "(mypy verifies the full semantics in CI).  Every parameter and "
        "every return type must be annotated — including -> None."
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        out: List[Finding] = []
        for ctx in _ratcheted_files(program):
            assert ctx.tree is not None
            for node, is_method in _defs(ctx.tree):
                assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                missing: List[str] = []
                args = node.args
                positional = list(args.posonlyargs) + list(args.args)
                skip_first = is_method and not _is_static(node) and positional
                for index, arg in enumerate(positional):
                    if index == 0 and skip_first and arg.arg in ("self", "cls"):
                        continue
                    if arg.annotation is None:
                        missing.append(arg.arg)
                for arg in args.kwonlyargs:
                    if arg.annotation is None:
                        missing.append(arg.arg)
                if args.vararg is not None and args.vararg.annotation is None:
                    missing.append("*" + args.vararg.arg)
                if args.kwarg is not None and args.kwarg.annotation is None:
                    missing.append("**" + args.kwarg.arg)
                if missing:
                    out.append(
                        ctx.finding(
                            node,
                            self.rule_id,
                            f"def {node.name}: unannotated parameter(s) "
                            + ", ".join(missing),
                        )
                    )
                if node.returns is None:
                    out.append(
                        ctx.finding(
                            node,
                            self.rule_id,
                            f"def {node.name}: missing return annotation "
                            "(use -> None for procedures)",
                        )
                    )
        return out


#: generic types that must not appear unparameterized in annotations
_BARE_BUILTINS = {"list", "dict", "set", "tuple", "frozenset", "type"}
_BARE_DOTTED = {
    f"typing.{name}"
    for name in (
        "List",
        "Dict",
        "Set",
        "Tuple",
        "FrozenSet",
        "Type",
        "Deque",
        "DefaultDict",
        "OrderedDict",
        "Counter",
        "ChainMap",
        "Sequence",
        "MutableSequence",
        "Iterable",
        "Iterator",
        "Generator",
        "Mapping",
        "MutableMapping",
        "AbstractSet",
        "MutableSet",
        "Callable",
        "Awaitable",
        "Coroutine",
        "Optional",
        "Union",
    )
} | {
    f"collections.abc.{name}"
    for name in (
        "Sequence",
        "MutableSequence",
        "Iterable",
        "Iterator",
        "Generator",
        "Mapping",
        "MutableMapping",
        "Set",
        "MutableSet",
        "Callable",
        "Awaitable",
        "Coroutine",
    )
} | {
    "collections.Counter",
    "collections.deque",
    "collections.defaultdict",
    "collections.OrderedDict",
    "numpy.ndarray",
}


class BareGenericRule(ProgramRule):
    rule_id = "TYP002"
    title = "bare generic type in a strict-ratchet annotation"
    rationale = (
        "A bare generic (``-> Tuple``, ``x: dict``, ``np.ndarray``) "
        "types as Any inside, silently disabling checking for every "
        "element access; mypy --strict rejects it "
        "(disallow_any_generics).  Parameterize: ``Tuple[int, ...]``, "
        "``Dict[str, float]``, ``npt.NDArray[np.float64]``."
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        out: List[Finding] = []
        for ctx in _ratcheted_files(program):
            assert ctx.tree is not None
            aliases = import_aliases(ctx.tree)
            for annotation, owner in _annotations(ctx.tree):
                for node, bare in walk_annotation(annotation):
                    if not bare:
                        continue
                    flagged = self._bare_generic(node, aliases)
                    if flagged is not None:
                        out.append(
                            ctx.finding(
                                annotation,
                                self.rule_id,
                                f"bare generic '{flagged}' in {owner}; "
                                "parameterize it (or use npt.NDArray[...] "
                                "for arrays)",
                            )
                        )
        return out

    @staticmethod
    def _bare_generic(
        node: ast.expr, aliases: Dict[str, str]
    ) -> Optional[str]:
        if isinstance(node, ast.Name) and node.id in _BARE_BUILTINS:
            return node.id
        dotted = dotted_name(node, aliases)
        if dotted in _BARE_DOTTED:
            leaf = dotted.rsplit(".", 1)[-1]
            return leaf if isinstance(node, ast.Name) else dotted
        return None


def _annotations(tree: ast.Module) -> Iterator[Tuple[ast.expr, str]]:
    """Every annotation expression with a human-readable owner label."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            every = (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + [a for a in (args.vararg, args.kwarg) if a is not None]
            )
            for arg in every:
                if arg.annotation is not None:
                    yield arg.annotation, f"parameter '{arg.arg}' of {node.name}"
            if node.returns is not None:
                yield node.returns, f"return type of {node.name}"
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            label = (
                target.id
                if isinstance(target, ast.Name)
                else getattr(target, "attr", "<target>")
            )
            yield node.annotation, f"annotation of '{label}'"
