"""Suppression comments: ``# repro: allow[RULE] justification``.

A finding is silenced iff the offending line (or the line a multi-line
statement *starts* on) carries an allow-comment naming its rule **and**
the comment includes a non-empty justification after the bracket.  A
bare ``# repro: allow[RULE]`` with no justification is itself reported
as ``SUP001`` — unexplained suppressions are exactly the drift this
analyzer exists to prevent, so ``SUP001`` cannot be suppressed.

Several rules may share one comment: ``# repro: allow[DET003,SHARD002]
iteration order folded through a commutative sum``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .findings import Finding

__all__ = ["Suppression", "parse_suppressions", "SUP001"]

SUP001 = "SUP001"

#: matches the allow marker in a comment token; justification is the
#: remainder of the comment after the closing bracket
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]*)\](.*)$")

_RULE_ID_RE = re.compile(r"^[A-Z]{2,8}\d{3}$")


@dataclass(frozen=True)
class Suppression:
    """One allow-comment: the rules it silences and its justification."""

    line: int
    rules: Tuple[str, ...]
    justification: str


def parse_suppressions(
    source_lines: List[str], rel_path: str
) -> Tuple[Dict[int, Suppression], List[Finding]]:
    """Extract allow-comments from raw source lines.

    Returns ``(suppressions by line, problems)`` where problems are
    ``SUP001`` findings for malformed or unjustified comments.  Only
    real ``COMMENT`` tokens count (a marker quoted inside a docstring
    or string literal is prose, not a suppression), and the marker
    silences exactly the physical line it sits on, which keeps
    suppression scope reviewable in diffs.
    """
    by_line: Dict[int, Suppression] = {}
    problems: List[Finding] = []
    source = "\n".join(source_lines) + "\n"
    comments: List[Tuple[int, int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}, []  # unparseable file: ERR001 is reported elsewhere
    for lineno, col_base, text in comments:
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        raw_rules = [part.strip() for part in match.group(1).split(",")]
        rules = tuple(part for part in raw_rules if part)
        justification = match.group(2).strip().lstrip("-—:").strip()
        col = col_base + match.start()
        if not rules or any(not _RULE_ID_RE.match(rule) for rule in rules):
            problems.append(
                Finding(
                    path=rel_path,
                    line=lineno,
                    col=col,
                    rule=SUP001,
                    message=(
                        "malformed suppression: expected "
                        "'# repro: allow[RULEID] justification' with "
                        "comma-separated rule ids like DET001"
                    ),
                )
            )
            continue
        if not justification:
            problems.append(
                Finding(
                    path=rel_path,
                    line=lineno,
                    col=col,
                    rule=SUP001,
                    message=(
                        f"suppression of {', '.join(rules)} has no "
                        "justification; explain why the finding is a "
                        "false positive after the closing bracket"
                    ),
                )
            )
            continue
        by_line[lineno] = Suppression(
            line=lineno, rules=rules, justification=justification
        )
    return by_line, problems
