"""Findings: what a rule reports, and how reports serialize.

A :class:`Finding` pins one rule violation to a file location.  Findings
are value objects — hashable, ordered by location — so the engine can
deduplicate, sort, and diff them deterministically (the analyzer holds
itself to the determinism bar it enforces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["Finding", "AnalysisReport", "JSON_SCHEMA_VERSION"]

#: bumped whenever the ``--json`` payload shape changes incompatibly
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Project-root-relative POSIX path of the offending file.
    line / col:
        1-based line and 0-based column (``ast`` conventions).
    rule:
        Rule identifier, e.g. ``"DET001"``.
    message:
        Human-readable description of the specific violation.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class AnalysisReport:
    """Outcome of one analyzer run over a set of files."""

    findings: List[Finding] = field(default_factory=list)
    #: findings silenced by a justified allow-comment
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": JSON_SCHEMA_VERSION,
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "counts": self.counts_by_rule(),
            "findings": [f.to_dict() for f in sorted(self.findings)],
            "suppressed": [f.to_dict() for f in sorted(self.suppressed)],
        }

    def render(self) -> str:
        """Human-readable multi-line report (stable ordering)."""
        lines = [f.render() for f in sorted(self.findings)]
        counts = self.counts_by_rule()
        summary = ", ".join(f"{rule}: {n}" for rule, n in counts.items())
        lines.append(
            f"{len(self.findings)} finding(s)"
            + (f" [{summary}]" if summary else "")
            + f", {len(self.suppressed)} suppressed,"
            + f" {self.files_scanned} file(s) scanned"
        )
        return "\n".join(lines)
