"""The analyzer engine: file discovery, AST parsing, rule dispatch.

Two pass kinds mirror what the rules need:

* **per-file rules** see one :class:`FileContext` (source, AST,
  suppressions) at a time;
* **whole-program rules** see the :class:`Program` — every parsed file
  plus the project root, so they can correlate code with other code
  (metrics mutations outside ``engine/``) or with documentation
  (``docs/api.md`` vs ``__all__``).

Suppressions are applied uniformly after both passes: a finding is
dropped iff its physical line carries a justified
``# repro: allow[RULE]`` comment naming its rule (see
:mod:`repro.analysis.suppressions`).
"""

from __future__ import annotations

import ast
import configparser
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .findings import AnalysisReport, Finding
from .suppressions import Suppression, parse_suppressions

__all__ = ["FileContext", "Program", "analyze", "discover_files", "find_project_root"]


class FileContext:
    """One parsed source file, as every per-file rule sees it."""

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        self.root = root
        self.rel_path = path.relative_to(root).as_posix()
        self.source = path.read_text(encoding="utf-8")
        self.lines: List[str] = self.source.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(self.source, filename=str(path))
        except SyntaxError as exc:  # surfaced as a finding by analyze()
            self.parse_error = exc
        self.suppressions: Dict[int, Suppression] = {}
        self.suppression_problems: List[Finding] = []
        self.suppressions, self.suppression_problems = parse_suppressions(
            self.lines, self.rel_path
        )

    @property
    def module_name(self) -> Optional[str]:
        """Dotted module name for files under a ``src/`` layout, else None."""
        parts = self.rel_path.split("/")
        if parts and parts[0] == "src":
            parts = parts[1:]
        if not parts or not parts[-1].endswith(".py"):
            return None
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        return ".".join(parts) if parts else None

    def in_dir(self, *rel_prefixes: str) -> bool:
        """True if this file lives under any of the given root-relative dirs."""
        return any(
            self.rel_path == prefix or self.rel_path.startswith(prefix.rstrip("/") + "/")
            for prefix in rel_prefixes
        )

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


class Program:
    """Everything a whole-program rule may consult."""

    def __init__(self, root: Path, files: Sequence[FileContext]) -> None:
        self.root = root
        self.files: Tuple[FileContext, ...] = tuple(files)
        self._docs_cache: Dict[str, Optional[str]] = {}

    def file_by_rel_path(self, rel_path: str) -> Optional[FileContext]:
        for ctx in self.files:
            if ctx.rel_path == rel_path:
                return ctx
        return None

    def read_doc(self, rel_path: str) -> Optional[str]:
        """Project document text (e.g. ``docs/api.md``), cached; None if absent."""
        if rel_path not in self._docs_cache:
            path = self.root / rel_path
            self._docs_cache[rel_path] = (
                path.read_text(encoding="utf-8") if path.is_file() else None
            )
        return self._docs_cache[rel_path]

    def ratchet_modules(self) -> Tuple[str, ...]:
        """Module patterns under the strict-typing ratchet (from mypy.ini).

        Every ``[mypy-<pattern>]`` section that sets
        ``disallow_untyped_defs = True`` is part of the ratchet; the TYP
        rules enforce the mechanical half of those guarantees without
        needing mypy installed.  Missing mypy.ini disables the TYP rules.
        """
        text = self.read_doc("mypy.ini")
        if text is None:
            return ()
        parser = configparser.ConfigParser()
        try:
            parser.read_string(text)
        except configparser.Error:
            return ()
        patterns: List[str] = []
        for section in parser.sections():
            if not section.startswith("mypy-"):
                continue
            if parser.getboolean(section, "disallow_untyped_defs", fallback=False):
                patterns.extend(
                    part.strip()
                    for part in section[len("mypy-") :].split(",")
                    if part.strip()
                )
        return tuple(sorted(set(patterns)))


def find_project_root(start: Path) -> Path:
    """Nearest ancestor holding ``pyproject.toml`` or ``.git`` (else start)."""
    start = start.resolve()
    candidates = [start] if start.is_dir() else [start.parent]
    for candidate in candidates[0].parents:
        candidates.append(candidate)
    for candidate in candidates:
        if (candidate / "pyproject.toml").is_file() or (candidate / ".git").exists():
            return candidate
    return candidates[0]


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for path in paths:
        resolved = path.resolve()
        if resolved.is_dir():
            out.extend(p for p in resolved.rglob("*.py") if p.is_file())
        elif resolved.suffix == ".py" and resolved.is_file():
            out.append(resolved)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(set(out))


def analyze(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Run the rule catalog over ``paths`` and return the report.

    ``rule_ids`` restricts the run to a subset of rules (suppression
    checking always runs).  The report's findings are sorted by location
    and already have justified suppressions applied.
    """
    from .rules import all_rules  # late import: rules import this module

    file_rules, program_rules = all_rules()
    if rule_ids is not None:
        wanted = set(rule_ids)
        unknown = wanted - {
            r.rule_id for r in (*file_rules, *program_rules)
        }
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        file_rules = [r for r in file_rules if r.rule_id in wanted]
        program_rules = [r for r in program_rules if r.rule_id in wanted]

    files = discover_files(paths)
    if root is None:
        root = find_project_root(files[0] if files else Path.cwd())
    root = root.resolve()

    contexts = [FileContext(path, root) for path in files]
    program = Program(root, contexts)

    raw: List[Finding] = []
    for ctx in contexts:
        raw.extend(ctx.suppression_problems)
        if ctx.parse_error is not None:
            raw.append(
                Finding(
                    path=ctx.rel_path,
                    line=ctx.parse_error.lineno or 1,
                    col=(ctx.parse_error.offset or 1) - 1,
                    rule="ERR001",
                    message=f"syntax error: {ctx.parse_error.msg}",
                )
            )
            continue
        for rule in file_rules:
            raw.extend(rule.check(ctx))
    for prog_rule in program_rules:
        raw.extend(prog_rule.check_program(program))

    report = AnalysisReport(files_scanned=len(contexts))
    by_path = {ctx.rel_path: ctx for ctx in contexts}
    for finding in sorted(set(raw)):
        ctx_for = by_path.get(finding.path)
        suppression = (
            ctx_for.suppressions.get(finding.line) if ctx_for is not None else None
        )
        if (
            suppression is not None
            and finding.rule in suppression.rules
            and finding.rule != "SUP001"
        ):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report
