"""repro.analysis — the engine invariant analyzer.

An AST-walking lint engine with project-specific rule families, run in
CI next to tier-1 (``python -m repro.analysis src/``):

* **DET** — determinism in engine/sharded paths (wall clocks, unseeded
  RNGs, set-iteration order leaking into ordered outputs),
* **SHARD** — shard-boundary safety (unpicklable closures shipped to
  workers, per-process global mutation),
* **MET** — metrics discipline (engine-only counter mutation, every
  counter documented),
* **API** — public-surface drift (``__all__`` vs ``docs/api.md``),
* **TYP** — the offline half of the ``mypy.ini`` strict ratchet
  (complete signatures, no bare generics).

Findings are suppressed per line with ``# repro: allow[RULE]
justification`` — the justification is mandatory.  Rule catalog,
rationale, and the how-to for adding rules: ``docs/analysis.md``.

This package is deliberately self-contained: it imports nothing from
the rest of ``repro`` (it analyzes source text, not live objects), so
it can lint a tree that does not import.
"""

from .engine import FileContext, Program, analyze, discover_files, find_project_root
from .findings import JSON_SCHEMA_VERSION, AnalysisReport, Finding
from .rules import all_rules, rule_catalog
from .suppressions import Suppression, parse_suppressions

__all__ = [
    "AnalysisReport",
    "FileContext",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "Program",
    "Suppression",
    "all_rules",
    "analyze",
    "discover_files",
    "find_project_root",
    "parse_suppressions",
    "rule_catalog",
]
