"""CLI entry point: ``python -m repro.analysis src/``.

Exit codes: 0 — clean; 1 — findings (each printed with rule id and
location); 2 — usage error.  ``--json`` emits the machine-readable
report (schema in :mod:`repro.analysis.findings`) on stdout instead of
the human rendering.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .engine import analyze
from .rules import rule_catalog


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Engine invariant analyzer: determinism, shard "
        "safety, metrics discipline, API drift, typing ratchet.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON report instead of human-readable lines",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="project root (default: auto-detected from pyproject.toml/.git)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, (title, _rationale) in rule_catalog().items():
            print(f"{rule_id}  {title}")
        return 0

    rule_ids = (
        [part.strip() for part in args.rules.split(",") if part.strip()]
        if args.rules
        else None
    )
    try:
        report = analyze(
            [Path(p) for p in args.paths],
            root=Path(args.root) if args.root else None,
            rule_ids=rule_ids,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
