"""Synthetic data streams: generic generators, the TPC-H-shaped workload of
Section VII.A, the random ILP workloads of Section VII.C, and push adapters
feeding live :class:`repro.JoinSession` objects."""

from .adapters import generate_into, replay
from .generators import (
    StreamSpec,
    bounded_delay_feed,
    generate_streams,
    merge_streams,
    partnered_streams,
    shifting_domain,
    uniform_domain,
    zipf_domain,
)
from .tpch import (
    TPCH_RELATIONS,
    five_query_workload,
    ten_query_workload,
    tpch_catalog,
    tpch_specs,
)
from .workloads import IlpEnvironment, make_environment, random_queries

__all__ = [
    "IlpEnvironment",
    "StreamSpec",
    "TPCH_RELATIONS",
    "bounded_delay_feed",
    "five_query_workload",
    "generate_into",
    "generate_streams",
    "make_environment",
    "merge_streams",
    "partnered_streams",
    "random_queries",
    "replay",
    "shifting_domain",
    "ten_query_workload",
    "tpch_catalog",
    "tpch_specs",
    "uniform_domain",
    "zipf_domain",
]
