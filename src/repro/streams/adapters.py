"""Feed adapters: drive a :class:`repro.JoinSession` from stream sources.

With the session facade, the synthetic feed machinery of this package
becomes a set of *adapters over the push API* — instead of pre-generating a
list and handing it to ``TopologyRuntime.run``, the same generators pump
tuples into a live session one arrival at a time:

* :func:`replay` — push any arrival-ordered iterable of input tuples,
* :func:`replay_async` — the same, awaiting an async ``push_batch`` target
  (e.g. :class:`repro.service.JoinServer` or
  :class:`repro.service.ServiceClient`) one chunk at a time,
* :func:`generate_into` — generate :class:`StreamSpec` streams and push
  them, optionally through a bounded-delay shuffle matching the session's
  ``disorder_bound`` (watermark mode); returns the per-relation recorded
  streams so callers can run their own oracle checks.

The session validates every push (unknown relations, arrival-order
violations), so an adapter feeding a mid-mutation session surfaces exactly
the same typed errors as hand-written pushes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..engine.tuples import StreamTuple
from .generators import StreamSpec, bounded_delay_feed, generate_streams

__all__ = ["generate_into", "replay", "replay_async"]


def replay(
    session, feed: Iterable[StreamTuple], chunk: Optional[int] = None
) -> int:
    """Push an arrival-ordered feed of input tuples; returns the count.

    ``session`` is a :class:`repro.JoinSession` (typed loosely to keep this
    module import-light).  Tuples whose relation is not registered raise
    :class:`repro.session.UnknownRelationError` — filter the feed on
    ``session.relations`` when replaying across a ``remove_query``.
    ``chunk=N`` slices the feed into ``push_batch`` calls of at most N
    tuples each — same semantics, but a caller interleaving other work
    (checkpoints, rewires) between chunks gets bounded latency per call.
    """
    if chunk is not None and chunk < 1:
        raise ValueError("chunk must be at least 1")
    count = 0

    def counted():
        nonlocal count
        for tup in feed:
            count += 1
            yield tup

    if chunk is None:
        session.push_batch(counted())
        return count
    pending: List[StreamTuple] = []
    for tup in counted():
        pending.append(tup)
        if len(pending) >= chunk:
            session.push_batch(pending)
            pending = []
    if pending:
        session.push_batch(pending)
    return count


async def replay_async(target, feed: Iterable[StreamTuple], chunk: int = 256) -> int:
    """Replay a feed through an *async* ``push_batch`` target.

    ``target`` is duck-typed on ``await target.push_batch(items)`` — the
    in-process :class:`repro.service.JoinServer` face and the TCP
    :class:`repro.service.ServiceClient` both qualify (this module never
    imports the service package).  The feed is awaited one ``chunk`` at a
    time so the target's bounded ingress queue exerts backpressure on the
    producer between chunks.
    """
    if chunk < 1:
        raise ValueError("chunk must be at least 1")
    count = 0
    pending: List[StreamTuple] = []
    for tup in feed:
        pending.append(tup)
        if len(pending) >= chunk:
            await target.push_batch(pending)
            count += len(pending)
            pending = []
    if pending:
        await target.push_batch(pending)
        count += len(pending)
    return count


def generate_into(
    session,
    specs: Iterable[StreamSpec],
    duration: float,
    seed: int = 0,
    max_delay: Optional[float] = None,
    chunk: Optional[int] = None,
) -> Dict[str, List[StreamTuple]]:
    """Generate synthetic streams and push them into a live session.

    ``max_delay`` shuffles arrivals by bounded per-tuple delays
    (:func:`bounded_delay_feed`) — use it with a session constructed with
    ``disorder_bound >= max_delay``.  ``chunk`` is forwarded to
    :func:`replay` (bounded-size ``push_batch`` calls).  Returns the
    per-relation streams (event-time ordered) for external verification;
    ``session.verify()`` needs no external state at all.
    """
    streams, inputs = generate_streams(specs, duration, seed=seed)
    feed = (
        bounded_delay_feed(streams, max_delay, seed=seed)
        if max_delay is not None
        else inputs
    )
    replay(session, feed, chunk=chunk)
    return streams
