"""Random query workload generator for the ILP study (Section VII.C).

"We simulate an environment consisting of multiple relations that can be
joined together with given input rates and join selectivities. [...] The
input relations have all the same arrival rate and a join between any two
relations has a selectivity of arrival rate^-1."

Queries are drawn by "selecting a random relation and then randomly adding
joins until the desired query size is reached"; exact duplicates are
eliminated, mirroring the paper's setup for Figures 9a–9f.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..core.catalog import StatisticsCatalog
from ..core.query import Query
from ..core.schema import StreamRelation

__all__ = ["IlpEnvironment", "make_environment", "random_queries"]


@dataclass
class IlpEnvironment:
    """The simulated relation universe of Section VII.C."""

    relations: List[StreamRelation]
    catalog: StatisticsCatalog
    num_attributes: int
    rate: float

    @property
    def relation_names(self) -> List[str]:
        return [r.name for r in self.relations]


def make_environment(
    num_relations: int,
    num_attributes: int = 3,
    rate: float = 100.0,
    window: float = 10.0,
) -> IlpEnvironment:
    """Relations ``S0..Sn-1`` with equal rates; selectivity = 1/rate."""
    relations = [
        StreamRelation(
            f"S{i}",
            tuple(f"a{j}" for j in range(num_attributes)),
            window=window,
        )
        for i in range(num_relations)
    ]
    catalog = StatisticsCatalog(
        default_selectivity=1.0 / rate, default_window=window
    )
    for relation in relations:
        catalog.with_relation(relation, rate=rate, window=window)
    return IlpEnvironment(
        relations=relations,
        catalog=catalog,
        num_attributes=num_attributes,
        rate=rate,
    )


def random_queries(
    env: IlpEnvironment,
    num_queries: int,
    query_size: int = 3,
    seed: int = 0,
    attribute_matching: str = "same_index",
    duplicates: str = "redraw",
    shape: str = "tree",
) -> List[Query]:
    """Draw ``num_queries`` distinct random queries of ``query_size`` relations.

    Construction follows the paper: start from a random relation, repeatedly
    join a random new relation to a random relation already in the query.
    Structural duplicates are redrawn ("eliminate exact duplicates (as these
    would be anyway answered together)").

    ``attribute_matching`` controls predicate diversity: ``"same_index"``
    joins compatible attributes (``S_i.a_k = S_j.a_k``, the paper's
    type-compatible-columns style — 3 predicates per relation pair, heavy
    cross-query overlap), ``"random"`` pairs arbitrary attributes (9 per
    pair, little overlap).

    ``duplicates="drop"`` mirrors the paper exactly: ``num_queries`` draws
    are made and duplicates are discarded, so fewer distinct queries come
    back as the pool saturates (the reason Fig. 9b's problem sizes grow
    sublinearly).  ``"redraw"`` keeps drawing until ``num_queries``
    *distinct* queries exist.

    ``shape`` selects the join-graph topology: ``"tree"`` (the paper's
    construction — each new relation joins a *random* earlier one),
    ``"star"`` (every new relation joins the first — hub-and-spokes),
    ``"cycle"`` (new relations chain off the previous one and a closing
    predicate joins the last back to the first; needs ``query_size >= 3``).
    """
    if attribute_matching not in ("same_index", "random"):
        raise ValueError(f"unknown attribute_matching {attribute_matching!r}")
    if duplicates not in ("drop", "redraw"):
        raise ValueError(f"unknown duplicates mode {duplicates!r}")
    if shape not in ("tree", "star", "cycle"):
        raise ValueError(f"unknown query shape {shape!r}")
    if shape == "cycle" and query_size < 3:
        raise ValueError("cycle-shaped queries need query_size >= 3")
    rng = random.Random(seed)
    names = env.relation_names
    queries: List[Query] = []
    seen: Set[Tuple] = set()
    attempts = 0
    max_attempts = num_queries * 200
    draws = 0

    def draw_attrs() -> Tuple[int, int]:
        attr_new = rng.randrange(env.num_attributes)
        if attribute_matching == "same_index":
            return attr_new, attr_new
        return rng.randrange(env.num_attributes), attr_new

    while len(queries) < num_queries:
        attempts += 1
        if duplicates == "drop" and draws >= num_queries:
            break
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not draw {num_queries} distinct queries of size "
                f"{query_size} over {len(names)} relations"
            )
        chosen = [rng.choice(names)]
        equalities = []
        while len(chosen) < query_size:
            new = rng.choice(names)
            if new in chosen:
                continue
            if shape == "star":
                partner = chosen[0]
            elif shape == "cycle":
                partner = chosen[-1]
            else:
                partner = rng.choice(chosen)
            attr_old, attr_new = draw_attrs()
            equalities.append(f"{partner}.a{attr_old}={new}.a{attr_new}")
            chosen.append(new)
        if shape == "cycle":
            attr_old, attr_new = draw_attrs()
            equalities.append(
                f"{chosen[-1]}.a{attr_old}={chosen[0]}.a{attr_new}"
            )
        query = Query.of(f"q{len(queries)}", *equalities)
        draws += 1
        signature = (
            tuple(sorted(query.relations)),
            tuple(sorted(str(p) for p in query.predicates)),
        )
        if signature in seen:
            continue
        seen.add(signature)
        queries.append(query)
    return queries
