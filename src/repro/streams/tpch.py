"""TPC-H-shaped streaming workload (Section VII.A's data and queries).

The paper streams TPC-H SF-10 tables through Kafka and builds join queries
"based on present primary, foreign keys and, additionally, type compatible
data" — a mixture of PK/FK joins, high-selectivity tiny-domain joins
(``lineitem.linestatus = orders.orderstatus``) and low-selectivity
partial-overlap joins (``customer.custkey = nation.nationkey``).

Here the tables become synthetic streams that keep the *ratios*: arrival
rates proportional to table cardinalities (dimension streams floored so a
window actually contains joinable dimension tuples at laptop scale) and key
domains giving the same selectivity structure.  Only relative sizes and
selectivities enter the cost model and the engine, so the experiment shapes
are preserved (see DESIGN.md, substitution #3).

Relation short names follow Figure 7a: R(egion), N(ation), S(upplier),
PS (partsupp), P(art), L(ineitem), O(rders), C(ustomer).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.catalog import StatisticsCatalog
from ..core.predicates import JoinPredicate
from ..core.query import Query
from ..core.schema import StreamRelation
from .generators import StreamSpec, uniform_domain

__all__ = [
    "TPCH_RELATIONS",
    "tpch_catalog",
    "tpch_specs",
    "five_query_workload",
    "ten_query_workload",
]

#: key-domain sizes (micro-scale surrogate for TPC-H cardinalities; large
#: enough that PK/FK intermediates stay small next to the input state, as
#: with real TPC-H key domains)
KEY_DOMAINS: Dict[str, int] = {
    "regionkey": 5,
    "nationkey": 25,
    "suppkey": 400,
    "custkey": 600,
    "partkey": 800,
    "orderkey": 1600,
}

#: tiny status domains driving the paper's high-selectivity joins
STATUS_DOMAIN = 3  # F / O / P

#: relative arrival rates (TPC-H size ratios, dimensions floored)
RATE_WEIGHTS: Dict[str, float] = {
    "R": 1.0,
    "N": 2.0,
    "S": 10.0,
    "C": 20.0,
    "P": 25.0,
    "PS": 50.0,
    "O": 80.0,
    "L": 150.0,
}

#: relation -> (attribute, key domain name or "status")
_SCHEMA: Dict[str, List[Tuple[str, str]]] = {
    "R": [("regionkey", "regionkey")],
    "N": [("nationkey", "nationkey"), ("regionkey", "regionkey")],
    "S": [("suppkey", "suppkey"), ("nationkey", "nationkey")],
    "C": [("custkey", "custkey"), ("nationkey", "nationkey")],
    "P": [("partkey", "partkey")],
    "PS": [("partkey", "partkey"), ("suppkey", "suppkey")],
    "O": [
        ("orderkey", "orderkey"),
        ("custkey", "custkey"),
        ("orderstatus", "status"),
    ],
    "L": [
        ("orderkey", "orderkey"),
        ("partkey", "partkey"),
        ("suppkey", "suppkey"),
        ("linestatus", "status"),
    ],
}

TPCH_RELATIONS: Dict[str, StreamRelation] = {
    name: StreamRelation(name, tuple(attr for attr, _ in attrs))
    for name, attrs in _SCHEMA.items()
}


def _domain(kind: str) -> int:
    return STATUS_DOMAIN if kind == "status" else KEY_DOMAINS[kind]


def tpch_specs(total_rate: float = 100.0) -> List[StreamSpec]:
    """Stream specs with rates proportional to table-size weights."""
    weight_sum = sum(RATE_WEIGHTS.values())
    specs = []
    for name, attrs in _SCHEMA.items():
        rate = total_rate * RATE_WEIGHTS[name] / weight_sum
        specs.append(
            StreamSpec(
                relation=name,
                rate=rate,
                attributes={
                    attr: uniform_domain(_domain(kind)) for attr, kind in attrs
                },
            )
        )
    return specs


def tpch_catalog(
    total_rate: float = 100.0, window: float = 10.0
) -> StatisticsCatalog:
    """Catalog with the workload's rates, windows, and selectivities.

    Selectivity of an equi join between two uniform attributes over domains
    ``d1``/``d2`` drawn from the same value universe is ``1/max(d1, d2)``
    (the partial-overlap effect: ``custkey = nationkey`` matches only the 25
    lowest customer keys).
    """
    catalog = StatisticsCatalog(default_selectivity=0.01, default_window=window)
    weight_sum = sum(RATE_WEIGHTS.values())
    for name, relation in TPCH_RELATIONS.items():
        catalog.with_relation(
            relation,
            rate=total_rate * RATE_WEIGHTS[name] / weight_sum,
            window=window,
        )
    domains = {
        f"{name}.{attr}": _domain(kind)
        for name, attrs in _SCHEMA.items()
        for attr, kind in attrs
    }
    for query in ten_query_workload():
        for pred in query.predicates:
            d1 = domains[str(pred.left)]
            d2 = domains[str(pred.right)]
            catalog.with_selectivity(pred, 1.0 / max(d1, d2))
    return catalog


def five_query_workload() -> List[Query]:
    """The five 4-way query graphs of Figure 7a."""
    return [
        Query.of(
            "q1", "R.regionkey=N.regionkey", "N.nationkey=S.nationkey",
            "S.suppkey=PS.suppkey",
        ),
        Query.of(
            "q2", "N.nationkey=S.nationkey", "S.suppkey=PS.suppkey",
            "PS.partkey=P.partkey",
        ),
        Query.of(
            "q3", "S.suppkey=PS.suppkey", "PS.partkey=P.partkey",
            "P.partkey=L.partkey",
        ),
        Query.of(
            "q4", "S.suppkey=PS.suppkey", "PS.partkey=L.partkey",
            "L.orderkey=O.orderkey",
        ),
        Query.of(
            "q5", "P.partkey=PS.partkey", "PS.suppkey=L.suppkey",
            "L.orderkey=O.orderkey",
        ),
    ]


def ten_query_workload() -> List[Query]:
    """Five more queries "with additionally more partly overlapping joins".

    q6–q10 add the paper's selectivity mixture: PK/FK chains through
    customer/orders/lineitem, the tiny-domain status join (q8), and the
    partial-overlap ``custkey = nationkey`` join (q9).
    """
    return five_query_workload() + [
        Query.of("q6", "C.custkey=O.custkey", "O.orderkey=L.orderkey"),
        Query.of("q7", "N.nationkey=C.nationkey", "C.custkey=O.custkey"),
        Query.of("q8", "L.linestatus=O.orderstatus", "O.custkey=C.custkey"),
        Query.of("q9", "C.custkey=N.nationkey", "N.regionkey=R.regionkey"),
        Query.of(
            "q10", "P.partkey=PS.partkey", "PS.suppkey=S.suppkey",
            "S.nationkey=N.nationkey",
        ),
    ]
