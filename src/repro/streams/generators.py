"""Synthetic stream generators.

Provides the building blocks for the paper's experiments:

* :class:`StreamSpec` + :func:`generate_streams` — Poisson-ish arrivals with
  configurable per-attribute value domains,
* :func:`partnered_streams` — the Figure 8 workload: "join attributes set
  such that each tuple will be part of one join result", with a mid-run
  characteristics shift injected by a time-dependent domain function,
* :func:`zipf_domain` — skewed value draws (heavy hitters collapse naive
  plans; Hu & Qiu 2024, Joglekar & Ré 2015),
* :func:`bounded_delay_feed` — an out-of-order arrival feed with bounded
  per-tuple delay, the watermark-mode workload (event timestamps are left
  untouched, only the consumption order is perturbed).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..engine.tuples import StreamTuple, input_tuple

__all__ = [
    "StreamSpec",
    "bounded_delay_feed",
    "generate_streams",
    "merge_streams",
    "partnered_streams",
    "zipf_domain",
]

#: value generator: (rng, time) -> value
ValueGen = Callable[[random.Random, float], object]


@dataclass
class StreamSpec:
    """Specification of one synthetic input stream."""

    relation: str
    rate: float  # tuples per time unit
    attributes: Dict[str, ValueGen]


def uniform_domain(size: int) -> ValueGen:
    """Values drawn uniformly from ``0..size-1`` (join selectivity 1/size)."""

    def gen(rng: random.Random, _now: float) -> int:
        return rng.randrange(size)

    return gen


def shifting_domain(size_fn: Callable[[float], int]) -> ValueGen:
    """Uniform domain whose size changes over time (Fig. 8 style shifts)."""

    def gen(rng: random.Random, now: float) -> int:
        return rng.randrange(max(1, size_fn(now)))

    return gen


def zipf_domain(size: int, alpha: float = 1.2) -> ValueGen:
    """Zipf-skewed values from ``0..size-1``: value k has weight 1/(k+1)^α.

    Skew concentrates probability mass on a few heavy hitters, so some
    index buckets hold most of the stored tuples — the regime where probe
    cost diverges from the uniform-selectivity estimate and naive plans
    collapse.  ``alpha=0`` degenerates to the uniform domain; sampling is
    inverse-CDF over the finite domain, deterministic given the rng.
    """
    if size < 1:
        raise ValueError("zipf_domain needs size >= 1")
    if alpha < 0:
        raise ValueError("zipf_domain needs alpha >= 0")
    weights = [1.0 / (k + 1) ** alpha for k in range(size)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)

    def gen(rng: random.Random, _now: float) -> int:
        return bisect_left(cdf, rng.random())

    return gen


def bounded_delay_feed(
    streams: Mapping[str, List[StreamTuple]],
    max_delay: float,
    seed: int = 0,
) -> List[StreamTuple]:
    """Arrival-ordered feed with bounded per-tuple network/queueing delay.

    Each tuple arrives ``event_ts + U(0, max_delay)`` (deterministic given
    the seed); the returned list is sorted by that arrival instant, so a
    tuple can overtake neighbours whose event timestamps are up to
    ``max_delay`` newer.  Event timestamps are *not* modified — within
    every stream the disorder is bounded by ``max_delay``, which is the
    contract of ``RuntimeConfig.disorder_bound`` (watermark mode).  With
    ``max_delay=0`` this degenerates to :func:`merge_streams`.
    """
    if max_delay < 0:
        raise ValueError("max_delay must be >= 0")
    rng = random.Random(seed)
    arrivals = []
    # deterministic stream visitation order regardless of dict construction
    for relation in sorted(streams):
        for tup in streams[relation]:
            arrivals.append((tup.trigger_ts + rng.random() * max_delay, tup))
    arrivals.sort(key=lambda pair: pair[0])
    return [tup for _, tup in arrivals]


def generate_streams(
    specs: Iterable[StreamSpec],
    duration: float,
    seed: int = 0,
) -> Tuple[Dict[str, List[StreamTuple]], List[StreamTuple]]:
    """Generate per-relation streams and their merged, time-ordered feed.

    Arrivals are evenly spaced with ±25% jitter around each stream's period
    (deterministic given the seed), which keeps rates exact while avoiding
    timestamp collisions across streams.
    """
    rng = random.Random(seed)
    streams: Dict[str, List[StreamTuple]] = {}
    for spec in specs:
        period = 1.0 / spec.rate
        tuples: List[StreamTuple] = []
        t = rng.random() * period
        while t < duration:
            values = {
                name: gen(rng, t) for name, gen in spec.attributes.items()
            }
            tuples.append(input_tuple(spec.relation, t, values))
            t += period * (0.75 + 0.5 * rng.random())
        streams[spec.relation] = tuples
    return streams, merge_streams(streams)


def merge_streams(
    streams: Mapping[str, List[StreamTuple]]
) -> List[StreamTuple]:
    """Merge per-relation streams into one timestamp-ordered feed."""
    merged = [t for tuples in streams.values() for t in tuples]
    merged.sort(key=lambda t: t.trigger_ts)
    return merged


def partnered_streams(
    relations: List[Tuple[str, List[str]]],
    rates: Mapping[str, float],
    duration: float,
    partner_window: float,
    seed: int = 0,
    domain_scale: float = 2.0,
    shift_at: Optional[float] = None,
    shifted_domain_scale: float = 0.05,
    shifted_attrs: Optional[Iterable[str]] = None,
) -> Tuple[Dict[str, List[StreamTuple]], List[StreamTuple]]:
    """Streams tuned so roughly half the tuples find join partners.

    Each join attribute draws from a domain proportional to
    ``rate × partner_window × domain_scale``; with ``domain_scale=2`` an
    arriving tuple expects ~0.5 partners in the window ("half of the tuples
    find join partners during probing", Section VII.B).  After ``shift_at``
    the attributes named in ``shifted_attrs`` (qualified, e.g. ``"S.b"``)
    switch to a domain scaled by ``shifted_domain_scale`` — drastically
    increasing the join selectivity, which is the Figure 8a event.
    """
    shifted = set(shifted_attrs or ())
    specs = []
    for relation, attrs in relations:
        attr_gens: Dict[str, ValueGen] = {}
        for attr in attrs:
            qualified = f"{relation}.{attr}"
            base = max(2, int(rates[relation] * partner_window * domain_scale))
            small = max(1, int(base * shifted_domain_scale))

            def gen(rng, now, base=base, small=small, q=qualified):
                if shift_at is not None and now >= shift_at and q in shifted:
                    return rng.randrange(small)
                return rng.randrange(base)

            attr_gens[attr] = gen
        specs.append(
            StreamSpec(relation=relation, rate=rates[relation], attributes=attr_gens)
        )
    return generate_streams(specs, duration, seed=seed)
