"""ILP backend wrapping ``scipy.optimize.milp`` (HiGHS).

Used (a) to cross-validate the in-house branch-and-bound solver in the test
suite, and (b) as the default backend for large instances (the paper uses
Gurobi, an equally external solver, for all instances).
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np
from scipy import optimize, sparse

from .model import Model, Solution, SolveStatus, VarType, Variable

__all__ = ["ScipyMilpSolver"]


class ScipyMilpSolver:
    """Solve a :class:`repro.ilp.model.Model` with HiGHS via scipy."""

    def __init__(self, time_limit: Optional[float] = None, mip_rel_gap: float = 0.0) -> None:
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap

    def solve(
        self,
        model: Model,
        warm_start: Optional[Mapping[Variable, float]] = None,  # unused; API parity
    ) -> Solution:
        c, a_ub, b_ub, a_eq, b_eq, lb, ub = model.to_matrices()

        constraints = []
        if a_ub.shape[0]:
            constraints.append(
                optimize.LinearConstraint(
                    sparse.csr_matrix(a_ub), -np.inf * np.ones(a_ub.shape[0]), b_ub
                )
            )
        if a_eq.shape[0]:
            constraints.append(
                optimize.LinearConstraint(sparse.csr_matrix(a_eq), b_eq, b_eq)
            )

        integrality = np.array(
            [0 if v.vtype is VarType.CONTINUOUS else 1 for v in model.variables]
        )
        options = {"mip_rel_gap": self.mip_rel_gap}
        if self.time_limit is not None:
            options["time_limit"] = self.time_limit

        result = optimize.milp(
            c=c,
            constraints=constraints,
            integrality=integrality,
            bounds=optimize.Bounds(lb, ub),
            options=options,
        )

        if result.status == 0 and result.x is not None:
            x = np.asarray(result.x, dtype=float)
            # HiGHS can return values a hair off integrality; snap them.
            int_mask = integrality.astype(bool)
            x[int_mask] = np.round(x[int_mask])
            return model.solution_from_vector(x, SolveStatus.OPTIMAL)
        if result.status == 2:
            return Solution(status=SolveStatus.INFEASIBLE)
        if result.status == 3:
            return Solution(status=SolveStatus.UNBOUNDED)
        if result.x is not None:
            x = np.asarray(result.x, dtype=float)
            return model.solution_from_vector(x, SolveStatus.FEASIBLE)
        return Solution(status=SolveStatus.ERROR)
