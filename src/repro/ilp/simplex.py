"""Dense two-phase primal simplex for linear programs.

This is the LP engine underneath :mod:`repro.ilp.bnb`.  It solves

    minimize    c^T x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                lb <= x <= ub

by shifting ``x`` so lower bounds become zero, materializing finite upper
bounds as additional ``<=`` rows, and running a textbook two-phase tableau
simplex (Dantzig pricing with a Bland's-rule fallback for anti-cycling).

The implementation is intentionally dense and simple: the MQO instances the
paper optimizes have at most a few thousand variables, and correctness is
cross-validated against ``scipy.optimize.linprog`` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["LpResult", "solve_lp", "SimplexError"]

_EPS = 1e-9


class SimplexError(Exception):
    """Raised when the simplex cannot make progress (numerical trouble)."""


@dataclass
class LpResult:
    """Outcome of an LP solve."""

    status: str  # "optimal" | "infeasible" | "unbounded"
    x: Optional[np.ndarray] = None
    objective: float = float("nan")
    iterations: int = 0


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    max_iterations: int = 50_000,
) -> LpResult:
    """Solve the LP; see module docstring for the canonical form."""
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    lb = np.asarray(lb, dtype=float)
    ub = np.asarray(ub, dtype=float)

    if np.any(lb > ub + _EPS):
        return LpResult(status="infeasible")

    # Shift x = y + lb so that y >= 0.
    shift = lb.copy()
    shift[~np.isfinite(shift)] = 0.0

    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n) if a_ub is not None else np.zeros((0, n))
    b_ub = np.asarray(b_ub, dtype=float).reshape(-1) if b_ub is not None else np.zeros(0)
    a_eq = np.asarray(a_eq, dtype=float).reshape(-1, n) if a_eq is not None else np.zeros((0, n))
    b_eq = np.asarray(b_eq, dtype=float).reshape(-1) if b_eq is not None else np.zeros(0)

    b_ub_shifted = b_ub - a_ub @ shift
    b_eq_shifted = b_eq - a_eq @ shift

    # Materialize finite upper bounds (on the shifted variable) as <= rows.
    finite = np.isfinite(ub)
    if np.any(finite):
        idx = np.where(finite)[0]
        bound_rows = np.zeros((idx.size, n))
        bound_rows[np.arange(idx.size), idx] = 1.0
        bound_rhs = ub[idx] - shift[idx]
        if np.any(bound_rhs < -_EPS):
            return LpResult(status="infeasible")
        a_ub_full = np.vstack([a_ub, bound_rows])
        b_ub_full = np.concatenate([b_ub_shifted, bound_rhs])
    else:
        a_ub_full, b_ub_full = a_ub, b_ub_shifted

    result = _two_phase(c, a_ub_full, b_ub_full, a_eq, b_eq_shifted, max_iterations)
    if result.status == "optimal":
        assert result.x is not None
        x = result.x + shift
        result = LpResult(
            status="optimal",
            x=x,
            objective=float(c @ x),
            iterations=result.iterations,
        )
    return result


def _two_phase(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    max_iterations: int,
) -> LpResult:
    """Two-phase simplex on ``min c x, A_ub x <= b_ub, A_eq x = b_eq, x >= 0``."""
    n = c.shape[0]
    m_ub, m_eq = a_ub.shape[0], a_eq.shape[0]
    m = m_ub + m_eq

    # Rows: [A_ub | I_slack | artificials][x, s, a] = b ; [A_eq | 0 | artificials].
    a = np.zeros((m, n + m_ub))
    b = np.zeros(m)
    if m_ub:
        a[:m_ub, :n] = a_ub
        a[:m_ub, n : n + m_ub] = np.eye(m_ub)
        b[:m_ub] = b_ub
    if m_eq:
        a[m_ub:, :n] = a_eq
        b[m_ub:] = b_eq

    # Normalize to b >= 0 (flips slack signs where needed).
    neg = b < 0
    a[neg] *= -1.0
    b[neg] *= -1.0

    total_cols = n + m_ub

    # Basis: slack column where it survived normalization with +1, else artificial.
    basis = np.empty(m, dtype=int)
    need_artificial = []
    for i in range(m):
        if i < m_ub and not neg[i]:
            basis[i] = n + i
        else:
            need_artificial.append(i)

    n_art = len(need_artificial)
    tableau = np.zeros((m, total_cols + n_art + 1))
    tableau[:, :total_cols] = a
    tableau[:, -1] = b
    for j, row in enumerate(need_artificial):
        tableau[row, total_cols + j] = 1.0
        basis[row] = total_cols + j

    iterations = 0

    if n_art:
        # Phase 1: minimize the sum of artificial variables.
        cost1 = np.zeros(total_cols + n_art)
        cost1[total_cols:] = 1.0
        status, iters = _run_simplex(tableau, basis, cost1, max_iterations)
        iterations += iters
        if status != "optimal":
            raise SimplexError(f"phase-1 simplex returned {status}")
        phase1_obj = _basic_objective(tableau, basis, cost1)
        if phase1_obj > 1e-7:
            return LpResult(status="infeasible", iterations=iterations)
        _drive_out_artificials(tableau, basis, total_cols)
        # Freeze artificial columns at zero for phase 2.
        tableau[:, total_cols : total_cols + n_art] = 0.0

    # Phase 2: original objective over structural + slack columns.
    cost2 = np.zeros(total_cols + n_art)
    cost2[:n] = c
    status, iters = _run_simplex(
        tableau, basis, cost2, max_iterations, forbidden_from=total_cols
    )
    iterations += iters
    if status == "unbounded":
        return LpResult(status="unbounded", iterations=iterations)
    if status != "optimal":
        raise SimplexError(f"phase-2 simplex returned {status}")

    x = np.zeros(n)
    for i, col in enumerate(basis):
        if col < n:
            x[col] = tableau[i, -1]
    return LpResult(status="optimal", x=x, objective=float(c @ x), iterations=iterations)


def _basic_objective(tableau: np.ndarray, basis: np.ndarray, cost: np.ndarray) -> float:
    return float(cost[basis] @ tableau[:, -1])


def _reduced_costs(tableau: np.ndarray, basis: np.ndarray, cost: np.ndarray) -> np.ndarray:
    """cost_j - cost_B @ column_j for all columns (excluding rhs)."""
    cb = cost[basis]
    return cost - cb @ tableau[:, :-1]


def _run_simplex(
    tableau: np.ndarray,
    basis: np.ndarray,
    cost: np.ndarray,
    max_iterations: int,
    forbidden_from: Optional[int] = None,
) -> tuple:
    """Pivot until optimal/unbounded; mutates tableau and basis in place.

    ``forbidden_from``: columns at or beyond this index may not *enter* the
    basis (used to keep phase-1 artificials out during phase 2).
    """
    m = tableau.shape[0]
    bland_after = max(1000, 20 * m)  # switch to Bland's rule if we churn
    for iteration in range(max_iterations):
        reduced = _reduced_costs(tableau, basis, cost)
        if forbidden_from is not None:
            reduced = reduced.copy()
            reduced[forbidden_from:] = np.inf  # never attractive to enter

        if iteration < bland_after:
            entering = int(np.argmin(reduced))
            if reduced[entering] >= -1e-9:
                return "optimal", iteration
        else:  # Bland's rule: first negative reduced cost
            negatives = np.where(reduced < -1e-9)[0]
            if negatives.size == 0:
                return "optimal", iteration
            entering = int(negatives[0])

        column = tableau[:, entering]
        rhs = tableau[:, -1]
        positive = column > _EPS
        if not np.any(positive):
            return "unbounded", iteration

        ratios = np.full(m, np.inf)
        ratios[positive] = rhs[positive] / column[positive]
        min_ratio = ratios.min()
        # Tie-break on the smallest basis index (anti-cycling).
        candidates = np.where(ratios <= min_ratio + _EPS)[0]
        leaving = int(candidates[np.argmin(basis[candidates])])

        _pivot(tableau, leaving, entering)
        basis[leaving] = entering

    raise SimplexError("simplex iteration limit exceeded")


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    pivot = tableau[row, col]
    tableau[row] /= pivot
    factors = tableau[:, col].copy()
    factors[row] = 0.0
    tableau -= np.outer(factors, tableau[row])


def _drive_out_artificials(tableau: np.ndarray, basis: np.ndarray, total_cols: int) -> None:
    """Replace basic artificial columns with structural ones where possible.

    After phase 1 an artificial can remain basic at value zero; pivot it out
    on any structural column with a nonzero coefficient, or drop the row as
    redundant (all-zero row).
    """
    for i in range(tableau.shape[0]):
        if basis[i] >= total_cols:
            row = tableau[i, :total_cols]
            nonzero = np.where(np.abs(row) > 1e-7)[0]
            if nonzero.size:
                _pivot(tableau, i, int(nonzero[0]))
                basis[i] = int(nonzero[0])
            # else: redundant row; leaving the zero-valued artificial basic
            # is harmless because its column is frozen in phase 2.
