"""Solver facade: choose between the in-house and scipy backends.

``method="auto"`` uses the in-house branch-and-bound for instances small
enough for the dense simplex and falls back to HiGHS (scipy) beyond that —
mirroring the paper's use of an industrial solver (Gurobi) for its largest
instances while keeping everything verifiable in-house at test scale.
"""

from __future__ import annotations

import enum
from typing import Mapping, Optional

from .bnb import BranchAndBoundSolver
from .model import Model, Solution, Variable
from .scipy_backend import ScipyMilpSolver

__all__ = ["SolverMethod", "solve_model", "AUTO_OWN_MAX_VARS", "AUTO_OWN_MAX_CONSTRAINTS"]

#: instance-size thresholds above which ``auto`` delegates to scipy/HiGHS
AUTO_OWN_MAX_VARS = 250
AUTO_OWN_MAX_CONSTRAINTS = 400


class SolverMethod(enum.Enum):
    OWN = "own"
    SCIPY = "scipy"
    AUTO = "auto"
    #: feasible-not-optimal: the grouped greedy heuristic promoted to a full
    #: solution (resolved by MultiQueryOptimizer — it needs the grouped
    #: problem, which a bare Model does not carry)
    GREEDY = "greedy"


def solve_model(
    model: Model,
    method: SolverMethod | str = SolverMethod.AUTO,
    warm_start: Optional[Mapping[Variable, float]] = None,
    time_limit: Optional[float] = None,
) -> Solution:
    """Solve ``model`` to optimality with the selected backend."""
    if isinstance(method, str):
        method = SolverMethod(method)

    if method is SolverMethod.GREEDY:
        raise ValueError(
            "the greedy heuristic operates on the grouped selection problem, "
            "not a bare Model; use MultiQueryOptimizer(..., solver='greedy')"
        )

    if method is SolverMethod.AUTO:
        small = (
            model.num_vars <= AUTO_OWN_MAX_VARS
            and model.num_constraints <= AUTO_OWN_MAX_CONSTRAINTS
        )
        method = SolverMethod.OWN if small else SolverMethod.SCIPY

    if method is SolverMethod.OWN:
        solver = BranchAndBoundSolver(time_limit=time_limit)
        return solver.solve(model, warm_start=warm_start)
    return ScipyMilpSolver(time_limit=time_limit).solve(model, warm_start=warm_start)
